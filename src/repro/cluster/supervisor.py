"""The cluster supervisor: spawn, monitor, restart, drain.

The supervisor owns the worker processes.  It forks one per shard
(``fork``, not ``spawn`` — the config's runtime objects (model, pool,
featurizer, estimator instances) have no pickle form, and fork hands the
child the parent's memory image for free), waits for each ready handshake,
then watches liveness on a poll loop.  A worker that dies is re-forked with
a bumped incarnation counter — and because :func:`~repro.cluster.worker
.boot_worker_client` consults the artifact store *at boot time*, the
restarted worker serves whatever generation is **promoted then**, not a
stale memory image.  Per-shard restarts are bounded by
``ClusterConfig.max_restarts``; past that the shard is marked failed and the
router's retries surface :class:`repro.serving.WorkerUnavailableError`.

Graceful drain sends the wire protocol's ``drain`` frame: the worker stops
accepting, finishes in-flight requests, acks, flushes its recorder, and
exits; the supervisor joins the process and marks the shard drained (a
drained shard is intentionally *not* restarted).

For operators, the supervisor also runs a tiny control server speaking the
same framed protocol (``control`` messages: ``status`` / ``drain`` /
``restart``) and writes a runtime file (``cluster.json``) with the control
address and worker map — which is how ``scripts/cluster_tool.py`` finds a
running cluster without sharing any Python state with it.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import socket
import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any

from repro.cluster import protocol
from repro.cluster.worker import WorkerSpec, assign_shards, run_worker
from repro.serving.config import ServingConfig
from repro.serving.errors import ClusterError, WorkerUnavailableError

__all__ = ["ClusterSupervisor", "RUNTIME_FILENAME"]

#: The runtime file the supervisor maintains under ``cluster.runtime_dir``.
RUNTIME_FILENAME = "cluster.json"

#: Shard lifecycle states, as reported by :meth:`ClusterSupervisor.status`.
STATE_BOOTING = "booting"
STATE_READY = "ready"
STATE_RESTARTING = "restarting"
STATE_DRAINING = "draining"
STATE_DRAINED = "drained"
STATE_FAILED = "failed"


@dataclass
class _WorkerHandle:
    spec: WorkerSpec
    process: Any = None
    address: tuple[str, int] | None = None
    generation: int | None = None
    state: str = STATE_BOOTING
    restarts: int = 0
    last_error: str = ""


class ClusterSupervisor:
    """Spawns and keeps alive one worker process per shard."""

    def __init__(self, config: ServingConfig) -> None:
        if not config.cluster.enabled:
            raise ClusterError("supervisor needs a config with cluster.mode='cluster'")
        self.config = config
        self.cluster = config.cluster
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError as error:  # pragma: no cover — non-POSIX platforms
            raise ClusterError(
                "cluster mode needs the 'fork' start method: the config's "
                "runtime objects (model, pool, estimators) have no pickle "
                "form, so spawn/forkserver cannot carry them"
            ) from error
        #: FROM-signature → shard, shared with the router.
        self.assignment = assign_shards(
            config.pool.from_signatures(), self.cluster.num_workers
        )
        shard_signatures: dict[int, list] = {
            shard: [] for shard in range(self.cluster.num_workers)
        }
        for signature in sorted(self.assignment):
            shard_signatures[self.assignment[signature]].append(signature)
        self._handles = {
            shard: _WorkerHandle(
                WorkerSpec(shard, tuple(signatures), config)
            )
            for shard, signatures in shard_signatures.items()
        }
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._monitor: threading.Thread | None = None
        self._control: socket.socket | None = None
        self._control_thread: threading.Thread | None = None
        self._runtime_path: Path | None = None
        if self.cluster.runtime_dir is not None:
            self._runtime_path = Path(self.cluster.runtime_dir) / RUNTIME_FILENAME

    # ------------------------------------------------------------------ #
    # lifecycle

    def start(self) -> None:
        """Fork every worker, wait for all ready handshakes, start watching."""
        spawned = []
        for shard, handle in self._handles.items():
            spawned.append((shard, handle, *self._spawn(handle.spec)))
        failures = []
        for shard, handle, process, pipe in spawned:
            try:
                self._await_ready(handle, process, pipe)
            except ClusterError as error:
                failures.append(f"shard {shard}: {error}")
        if failures:
            self.stop()
            raise ClusterError(
                "cluster boot failed — " + "; ".join(failures)
            )
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="cluster-monitor", daemon=True
        )
        self._monitor.start()
        self._start_control_server()
        self._write_runtime()

    def stop(self) -> None:
        """Drain what answers, terminate what does not.  Idempotent."""
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=self.cluster.poll_interval_seconds * 8)
            self._monitor = None
        with self._lock:
            handles = list(self._handles.values())
        for handle in handles:
            self._shutdown_worker(handle)
        if self._control is not None:
            try:
                self._control.close()
            except OSError:
                pass
            self._control = None
        self._write_runtime()

    def _shutdown_worker(self, handle: _WorkerHandle) -> None:
        with self._lock:
            process, address, state = handle.process, handle.address, handle.state
        if process is None or not process.is_alive():
            return
        if state == STATE_READY and address is not None:
            try:
                protocol.roundtrip(
                    address,
                    protocol.drain_request(0),
                    timeout=self.cluster.drain_timeout_seconds,
                )
            except (OSError, ClusterError):
                pass
        process.join(timeout=self.cluster.drain_timeout_seconds)
        if process.is_alive():
            process.terminate()
            process.join(timeout=self.cluster.drain_timeout_seconds)
        with self._lock:
            handle.state = STATE_DRAINED
            handle.address = None

    # ------------------------------------------------------------------ #
    # spawn / handshake

    def _spawn(self, spec: WorkerSpec):
        parent_pipe, child_pipe = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=run_worker,
            args=(spec, child_pipe),
            name=f"repro-worker-{spec.shard}",
            daemon=True,
        )
        process.start()
        child_pipe.close()
        return process, parent_pipe

    def _await_ready(self, handle: _WorkerHandle, process, pipe) -> None:
        deadline = time.monotonic() + self.cluster.boot_timeout_seconds
        try:
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not pipe.poll(min(remaining, 0.1)):
                    if remaining <= 0:
                        self._abort_boot(handle, process, "ready handshake timed out")
                        return
                    if not process.is_alive():
                        self._abort_boot(
                            handle, process,
                            f"worker exited during boot (code {process.exitcode})",
                        )
                        return
                    continue
                message = pipe.recv()
                break
        except (EOFError, OSError):
            self._abort_boot(handle, process, "ready pipe closed during boot")
            return
        finally:
            pipe.close()
        if message[0] == "ready":
            _, port, generation = message
            with self._lock:
                handle.process = process
                handle.address = (self.cluster.host, port)
                handle.generation = generation
                handle.state = STATE_READY
                handle.last_error = ""
            return
        self._abort_boot(handle, process, str(message[1]))

    def _abort_boot(self, handle: _WorkerHandle, process, reason: str) -> None:
        if process.is_alive():
            process.terminate()
            process.join(timeout=self.cluster.drain_timeout_seconds)
        with self._lock:
            handle.process = process
            handle.address = None
            handle.state = STATE_FAILED
            handle.last_error = reason
        raise ClusterError(f"worker boot failed: {reason}")

    # ------------------------------------------------------------------ #
    # monitoring / restart

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.cluster.poll_interval_seconds):
            for shard, handle in self._handles.items():
                with self._lock:
                    dead = (
                        handle.state == STATE_READY
                        and handle.process is not None
                        and not handle.process.is_alive()
                    )
                if dead:
                    self._restart_dead(shard, handle)

    def _restart_dead(self, shard: int, handle: _WorkerHandle) -> None:
        with self._lock:
            handle.address = None
            if handle.restarts >= self.cluster.max_restarts:
                handle.state = STATE_FAILED
                handle.last_error = (
                    f"gave up after {handle.restarts} restarts"
                )
                self._write_runtime()
                return
            handle.state = STATE_RESTARTING
            handle.restarts += 1
            # A fresh incarnation gets a fresh event source — the restarted
            # recorder's sequences restart at zero, and reusing the old
            # source would have the store dedup the new lifetime away.
            handle.spec = replace(handle.spec, incarnation=handle.restarts)
        try:
            process, pipe = self._spawn(handle.spec)
            self._await_ready(handle, process, pipe)
        except ClusterError:
            pass  # state/last_error already recorded by _abort_boot
        self._write_runtime()

    # ------------------------------------------------------------------ #
    # the router's view

    def address(self, shard: int) -> tuple[str, int] | None:
        """Where the shard's worker listens; ``None`` while it restarts.

        Raises:
            WorkerUnavailableError: the shard is drained or failed — no
                amount of retrying will bring it back without an operator.
        """
        with self._lock:
            handle = self._handles.get(shard)
            if handle is None:
                raise WorkerUnavailableError(f"no such shard {shard}")
            if handle.state == STATE_READY:
                return handle.address
            if handle.state in (STATE_BOOTING, STATE_RESTARTING):
                return None
            raise WorkerUnavailableError(
                f"shard {shard} is {handle.state}"
                + (f" ({handle.last_error})" if handle.last_error else "")
            )

    def num_shards(self) -> int:
        return self.cluster.num_workers

    # ------------------------------------------------------------------ #
    # operator surface

    def status(self, probe: bool = False) -> dict[str, Any]:
        """Per-shard state map; ``probe=True`` adds live health roundtrips."""
        workers = []
        with self._lock:
            snapshot = [
                (shard, handle.spec, handle.process, handle.address,
                 handle.generation, handle.state, handle.restarts,
                 handle.last_error)
                for shard, handle in sorted(self._handles.items())
            ]
        for shard, spec, process, address, generation, state, restarts, last_error in snapshot:
            entry: dict[str, Any] = {
                "shard": shard,
                "state": state,
                "pid": process.pid if process is not None else None,
                "alive": bool(process is not None and process.is_alive()),
                "address": list(address) if address is not None else None,
                "generation": generation,
                "restarts": restarts,
                "signatures": len(spec.signatures),
            }
            if last_error:
                entry["last_error"] = last_error
            if probe and state == STATE_READY and address is not None:
                try:
                    reply = protocol.roundtrip(
                        address,
                        protocol.health_request(0),
                        timeout=self.cluster.connect_timeout_seconds,
                    )
                    entry["healthy"] = reply.get("type") == "health_result"
                    entry.update(
                        {
                            f"health_{key}": value
                            for key, value in reply.get("health", {}).items()
                            if key not in ("shard",)
                        }
                    )
                except (OSError, ClusterError):
                    entry["healthy"] = False
            workers.append(entry)
        return {
            "num_workers": self.cluster.num_workers,
            "signatures": len(self.assignment),
            "workers": workers,
        }

    def drain(self, shard: int) -> dict[str, Any]:
        """Gracefully stop one shard's worker (it is not restarted)."""
        with self._lock:
            handle = self._handles.get(shard)
            if handle is None:
                raise ClusterError(f"no such shard {shard}")
            if handle.state != STATE_READY or handle.address is None:
                raise ClusterError(
                    f"shard {shard} is {handle.state}; only a ready shard drains"
                )
            handle.state = STATE_DRAINING
            address, process = handle.address, handle.process
        try:
            reply = protocol.roundtrip(
                address,
                protocol.drain_request(0),
                timeout=self.cluster.drain_timeout_seconds,
            )
            if reply.get("type") != "drain_ack":
                raise ClusterError(f"unexpected drain reply {reply.get('type')!r}")
        except (OSError, ClusterError) as error:
            with self._lock:
                handle.state = STATE_FAILED
                handle.last_error = f"drain failed: {error}"
                handle.address = None
            self._write_runtime()
            raise ClusterError(f"drain of shard {shard} failed: {error}") from error
        process.join(timeout=self.cluster.drain_timeout_seconds)
        if process.is_alive():
            process.terminate()
            process.join(timeout=self.cluster.drain_timeout_seconds)
        with self._lock:
            handle.state = STATE_DRAINED
            handle.address = None
        self._write_runtime()
        return self.status()

    def restart(self, shard: int) -> dict[str, Any]:
        """Operator restart: drain (when ready), then boot a fresh process.

        Unlike crash recovery this does not count against ``max_restarts`` —
        it is deliberate, not a crash loop — but it *does* bump the
        incarnation so the fresh lifetime gets a fresh event source.
        """
        with self._lock:
            handle = self._handles.get(shard)
            if handle is None:
                raise ClusterError(f"no such shard {shard}")
            state = handle.state
        if state == STATE_READY:
            self.drain(shard)
        with self._lock:
            if handle.state not in (STATE_DRAINED, STATE_FAILED):
                raise ClusterError(
                    f"shard {shard} is {handle.state}; cannot restart mid-transition"
                )
            handle.state = STATE_RESTARTING
            handle.last_error = ""
            handle.spec = replace(
                handle.spec, incarnation=handle.spec.incarnation + 1
            )
        process, pipe = self._spawn(handle.spec)
        self._await_ready(handle, process, pipe)
        self._write_runtime()
        return self.status()

    def stats_snapshot(self) -> dict[str, float]:
        """Float gauges for the cluster client's merged ``stats()``."""
        with self._lock:
            states = [handle.state for handle in self._handles.values()]
            restarts = sum(handle.restarts for handle in self._handles.values())
        return {
            "cluster_workers": float(len(states)),
            "cluster_workers_ready": float(states.count(STATE_READY)),
            "cluster_workers_failed": float(states.count(STATE_FAILED)),
            "cluster_worker_restarts": float(restarts),
            "cluster_signatures": float(len(self.assignment)),
        }

    # ------------------------------------------------------------------ #
    # control server + runtime file

    def _start_control_server(self) -> None:
        self._control = socket.create_server((self.cluster.host, 0))
        self._control_thread = threading.Thread(
            target=self._control_loop, name="cluster-control", daemon=True
        )
        self._control_thread.start()

    @property
    def control_address(self) -> tuple[str, int] | None:
        if self._control is None:
            return None
        return (self.cluster.host, self._control.getsockname()[1])

    def _control_loop(self) -> None:
        while not self._stop.is_set():
            try:
                connection, _ = self._control.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve_control_connection,
                args=(connection,),
                name="cluster-control-conn",
                daemon=True,
            ).start()

    def _serve_control_connection(self, connection: socket.socket) -> None:
        try:
            with connection, connection.makefile("rb") as stream:
                while True:
                    message = protocol.read_frame(stream)
                    if message is None:
                        return
                    request_id = message.get("id", -1)
                    try:
                        payload = self._run_control_op(message)
                        response = protocol.control_response(request_id, payload)
                    except BaseException as error:  # noqa: BLE001 — answer typed
                        response = protocol.error_response(request_id, error)
                    connection.sendall(protocol.encode_frame(response))
        except (OSError, ClusterError):
            return

    def _run_control_op(self, message: dict[str, Any]) -> dict[str, Any]:
        if message.get("type") != "control":
            raise ClusterError(
                f"control server only speaks 'control' messages, "
                f"got {message.get('type')!r}"
            )
        op = message.get("op")
        if op == "status":
            return self.status(probe=True)
        shard = message.get("shard")
        if not isinstance(shard, int):
            raise ClusterError(f"control op {op!r} needs an integer shard")
        if op == "drain":
            return self.drain(shard)
        if op == "restart":
            return self.restart(shard)
        raise ClusterError(f"unknown control op {op!r}")

    def _write_runtime(self) -> None:
        if self._runtime_path is None:
            return
        control = self.control_address
        payload = {
            "schema_version": 1,
            "supervisor_pid": os.getpid(),
            "control": list(control) if control is not None else None,
            "status": self.status(),
        }
        self._runtime_path.parent.mkdir(parents=True, exist_ok=True)
        staging = self._runtime_path.with_suffix(".tmp")
        staging.write_text(json.dumps(payload, indent=2) + "\n")
        os.replace(staging, self._runtime_path)
