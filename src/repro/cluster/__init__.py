"""Sharded multi-process serving: workers, wire protocol, router, supervisor.

The in-process stack — coalescing dispatcher, compiled inference plans,
generation-versioned artifacts — still serializes CPU-bound slab math on one
GIL.  This package scales it out across processes, sharded by the key the
pool already buckets on: the **FROM-signature**.  Cnt2Crd only compares a
request against pool queries with the identical FROM clause (Section 2), so
a worker holding a signature's complete bucket computes exactly the bits the
full-pool stack would — which is what makes cluster-mode estimates
bit-identical to local mode in reference (float64) inference.

* :mod:`repro.cluster.protocol` — length-prefixed JSON frames, versioned
  message schema, and :class:`repro.serving.ServingError`-taxonomy
  round-tripping (a worker-side ``DeadlineExceededError`` arrives as the
  same class, message preserved).
* :mod:`repro.cluster.worker` — the long-lived worker process: cold-boots
  its shard from the promoted artifact generation
  (:meth:`repro.serving.ServingClient.from_artifact`) or from the forked
  config, owns the pool slice of its assigned signatures, serves the wire
  protocol with its own dispatcher/caches/recorder
  (``worker-<shard>@gen<N>`` event source).
* :mod:`repro.cluster.router` — the asyncio front-end: routes each request
  to the shard owning its FROM-signature, fans ``estimate_many`` out across
  shards and reassembles in order, enforces per-request deadlines, and
  turns worker death into bounded retries +
  :class:`repro.serving.WorkerUnavailableError`.
* :mod:`repro.cluster.supervisor` — spawns/monitors/restarts workers
  (restarts re-boot from the *promoted* artifact generation), graceful
  drain, a control server for ``scripts/cluster_tool.py``, and the
  ``cluster.json`` runtime file.

Callers never import this package directly: setting
``ServingConfig.cluster.mode = "cluster"`` makes
:class:`repro.serving.ServingClient` drive it transparently — same
``estimate`` / ``estimate_many`` / ``estimate_future`` surface, same error
taxonomy, same config object.  See the "Cluster serving" section of
``docs/architecture.md`` and ``examples/cluster_serving.py``.
"""

from repro.cluster.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
    error_from_payload,
    error_to_payload,
    options_from_payload,
    options_to_payload,
    read_frame,
    result_from_payload,
    result_to_payload,
)
from repro.cluster.router import ClusterRouter
from repro.cluster.supervisor import ClusterSupervisor
from repro.cluster.worker import (
    WorkerServer,
    WorkerSpec,
    assign_shards,
    boot_worker_client,
    slice_pool,
    stable_shard,
    worker_source,
)

__all__ = [
    "ClusterRouter",
    "ClusterSupervisor",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "WorkerServer",
    "WorkerSpec",
    "assign_shards",
    "boot_worker_client",
    "decode_frame",
    "encode_frame",
    "error_from_payload",
    "error_to_payload",
    "options_from_payload",
    "options_to_payload",
    "read_frame",
    "result_from_payload",
    "result_to_payload",
    "slice_pool",
    "stable_shard",
    "worker_source",
]
