"""The long-lived shard worker process.

A worker owns one shard: the pool slice holding every entry whose
FROM-signature was assigned to it.  Sharding by FROM-signature is safe by
construction — Cnt2Crd only ever scores a request against pool queries with
the *same* FROM-signature (Section 2's containment precondition), so a
worker holding a signature's complete bucket computes exactly the bits the
full-pool stack would: same entries, same insertion order, same slabs.

Boot order (:func:`boot_worker_client`): when the deployment has an artifact
store with a promoted generation, the worker cold-boots via
:meth:`repro.serving.ServingClient.from_artifact` — checksum-verified
weights and pool, with the pool sliced to the assigned signatures — so a
restarted worker always serves the *promoted* generation, whatever the
parent process had in memory.  Without a store (or before the first
promote), it builds from the forked config's in-memory objects, pool sliced
the same way.  Either way the worker is a complete local-mode
:class:`~repro.serving.ServingClient`: its own dispatcher (concurrent
connections coalesce), its own caches and compiled plan, and its own event
recorder flushing under a per-lifetime source
(``worker-<shard>@gen<N>``, see :func:`worker_source`) so the shared
EventStore's ``(source, sequence)`` dedup merges every worker lifetime into
one queryable history instead of silently dropping the restart's events.

The serving loop (:class:`WorkerServer`) accepts connections on an ephemeral
loopback port, reads length-prefixed frames, and executes requests on a
small thread pool — responses are written under a per-connection lock and
matched by request id, so one connection multiplexes many in-flight
requests.  ``drain`` stops the listener, waits for in-flight work, acks,
and exits the loop.  The process entry (:func:`run_worker`) announces
``("ready", port, generation)`` over the spawn pipe and finishes with
``os._exit`` — a forked child must not run teardown of inherited state
(parent sockets, SQLite handles) it does not own.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Sequence

from repro.cluster import protocol
from repro.core.queries_pool import QueriesPool
from repro.serving.client import ServingClient
from repro.serving.config import ArtifactConfig, ServingConfig
from repro.serving.errors import ClusterError, ClusterProtocolError

__all__ = [
    "WorkerServer",
    "WorkerSpec",
    "assign_shards",
    "boot_worker_client",
    "run_worker",
    "signature_key",
    "slice_pool",
    "stable_shard",
    "worker_source",
]

#: One FROM-clause signature: sorted ``(table name, alias)`` pairs, exactly
#: :meth:`repro.sql.query.Query.from_signature`.
Signature = tuple[tuple[str, str], ...]

#: How often a worker's background thread flushes its event recorder, so a
#: crash loses at most this window of provenance (plus whatever the final
#: drain-time flush would have added).
FLUSH_INTERVAL_SECONDS = 0.5


def signature_key(signature: Signature) -> str:
    """A canonical string form of a signature (stable across processes)."""
    return json.dumps([list(pair) for pair in signature])


def stable_shard(signature: Signature, num_workers: int) -> int:
    """Deterministic shard for a signature *not* in the assignment map.

    Queries whose FROM-signature has no pool bucket still need a worker (to
    run the fallback estimator, or to raise ``NoMatchingPoolQueryError``
    with local-path fidelity).  Built on a content hash, not ``hash()`` —
    ``PYTHONHASHSEED`` must not re-route requests across processes.
    """
    digest = hashlib.md5(signature_key(signature).encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % num_workers


def assign_shards(
    signatures: Sequence[Signature], num_workers: int
) -> dict[Signature, int]:
    """Round-robin signatures over workers in sorted order.

    Sorted-order round-robin is deterministic (router and supervisor derive
    the same map from the same pool) and balanced to within one signature
    per worker — the paper keeps the pool "equally distributed among all the
    possible FROM clauses" (Section 6.2), so balancing bucket *count*
    balances work.
    """
    return {
        signature: position % num_workers
        for position, signature in enumerate(sorted(signatures))
    }


def slice_pool(pool: QueriesPool, signatures: Sequence[Signature]) -> QueriesPool:
    """A new pool holding only the given signatures' buckets.

    Entries are replayed in bucket insertion order, so the slice's buckets
    are entry-for-entry identical to the full pool's — the slab rows a
    worker scores are the same rows, in the same order, as the local path's.
    """
    entries = []
    for signature in signatures:
        bucket, _ = pool.bucket_snapshot(signature)
        entries.extend(bucket)
    return QueriesPool(entries)


def worker_source(shard: int, incarnation: int, generation: int) -> str:
    """The event-source identity of one worker lifetime.

    ``worker-<shard>@gen<N>`` for the first boot; a crash-restart of the
    *same* generation appends ``r<restarts>`` (``worker-0r1@gen2``) —
    without it the restarted recorder's sequences would restart at zero
    under an already-used source and the EventStore's ``(source, sequence)``
    dedup would silently swallow the second lifetime's events.
    """
    base = f"worker-{shard}" if incarnation == 0 else f"worker-{shard}r{incarnation}"
    return f"{base}@gen{generation}"


@dataclass(frozen=True)
class WorkerSpec:
    """Everything one worker process needs, carried across the fork.

    The full :class:`~repro.serving.ServingConfig` rides along — fork shares
    the runtime objects (model, pool, featurizer, database, fallback
    estimators) by memory image, which is exactly why the cluster uses the
    ``fork`` start method: those objects have no pickle form.
    """

    shard: int
    signatures: tuple[Signature, ...]
    config: ServingConfig
    incarnation: int = 0


def _built_worker_config(spec: WorkerSpec) -> ServingConfig:
    """The local-mode config a worker builds from when no artifact exists."""
    config = spec.config
    observability = config.observability
    if observability.enabled:
        observability = replace(
            observability,
            source=worker_source(spec.shard, spec.incarnation, generation=1),
        )
    return replace(
        config,
        pool=slice_pool(config.pool, spec.signatures),
        cluster=replace(config.cluster, mode="local"),
        observability=observability,
        artifacts=ArtifactConfig(),
    )


def boot_worker_client(spec: WorkerSpec) -> tuple[ServingClient, int]:
    """Cold-boot this shard's serving stack; returns ``(client, generation)``.

    Prefers the artifact store's promoted generation (a restart serves what
    was promoted, not what the parent held in memory); falls back to
    building from the forked config when no bundle is promoted yet.
    """
    config = spec.config
    if config.artifacts.enabled:
        from repro.artifacts.store import ArtifactStore

        generation = ArtifactStore(config.artifacts.root).latest()
        if generation is not None:
            base = (
                f"worker-{spec.shard}"
                if spec.incarnation == 0
                else f"worker-{spec.shard}r{spec.incarnation}"
            )
            client = ServingClient.from_artifact(
                config.artifacts.root,
                database=config.database,
                generation=generation,
                signatures=spec.signatures,
                observability_source=base,
                fallback_estimator=config.fallback_estimator,
                extra_estimators=config.extra_estimators,
                oracle=config.oracle,
            )
            return client, generation
    client = ServingClient(_built_worker_config(spec))
    return client, client.service.generation(config.estimator.name)


class WorkerServer:
    """The worker-side serving loop over one listener socket."""

    def __init__(
        self,
        client: ServingClient,
        *,
        shard: int,
        generation: int,
        host: str,
        max_handlers: int,
        drain_timeout_seconds: float,
    ) -> None:
        self._client = client
        self._shard = shard
        self._generation = generation
        self._drain_timeout = drain_timeout_seconds
        self._listener = socket.create_server((host, 0))
        self._executor = ThreadPoolExecutor(
            max_workers=max_handlers, thread_name_prefix=f"shard{shard}-handler"
        )
        self._active_lock = threading.Lock()
        self._idle = threading.Condition(self._active_lock)
        self._active = 0
        self._draining = threading.Event()

    @property
    def port(self) -> int:
        return self._listener.getsockname()[1]

    # ------------------------------------------------------------------ #
    # serving loop

    def serve_forever(self) -> None:
        """Accept and serve until a ``drain`` message lands."""
        flusher = threading.Thread(
            target=self._flush_loop, name=f"shard{self._shard}-flush", daemon=True
        )
        flusher.start()
        try:
            while not self._draining.is_set():
                try:
                    connection, _ = self._listener.accept()
                except OSError:
                    break  # listener closed by _begin_drain
                threading.Thread(
                    target=self._serve_connection,
                    args=(connection,),
                    name=f"shard{self._shard}-conn",
                    daemon=True,
                ).start()
        finally:
            self._draining.set()
            self._executor.shutdown(wait=True)
            flusher.join(timeout=FLUSH_INTERVAL_SECONDS * 4)

    def _flush_loop(self) -> None:
        # A crashed worker can only lose events emitted since the last
        # flush; this bounds that window without putting a flush on the
        # request path.
        recorder = self._client.recorder
        if recorder is None:
            return
        while not self._draining.wait(FLUSH_INTERVAL_SECONDS):
            recorder.flush()
        recorder.flush()

    def _serve_connection(self, connection: socket.socket) -> None:
        connection.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        write_lock = threading.Lock()
        try:
            with connection, connection.makefile("rb") as stream:
                while True:
                    try:
                        message = protocol.read_frame(stream)
                    except ClusterProtocolError as error:
                        # The stream may be desynced; answer and hang up.
                        self._send(connection, write_lock,
                                   protocol.error_response(-1, error))
                        return
                    if message is None:
                        return
                    if not self._dispatch(connection, write_lock, message):
                        return
        except OSError:
            return

    def _dispatch(self, connection, write_lock, message: dict[str, Any]) -> bool:
        """Handle one frame; returns False when the connection should close."""
        request_id = message.get("id", -1)
        message_type = message.get("type")
        if message_type == "health":
            self._send(
                connection,
                write_lock,
                protocol.health_response(request_id, self._health_payload()),
            )
            return True
        if message_type == "drain":
            self._begin_drain()
            self._send(
                connection, write_lock, protocol.drain_response(request_id, self._shard)
            )
            return False
        if message_type in ("estimate", "estimate_batch"):
            if self._draining.is_set():
                self._send(
                    connection,
                    write_lock,
                    protocol.error_response(
                        request_id,
                        ClusterError(f"shard {self._shard} is draining"),
                    ),
                )
                return True
            with self._active_lock:
                self._active += 1
            self._executor.submit(
                self._handle_request, connection, write_lock, message
            )
            return True
        self._send(
            connection,
            write_lock,
            protocol.error_response(
                request_id,
                ClusterProtocolError(f"unknown message type {message_type!r}"),
            ),
        )
        return True

    def _handle_request(self, connection, write_lock, message: dict[str, Any]) -> None:
        request_id = message.get("id", -1)
        try:
            options = protocol.options_from_payload(message.get("options"))
            if message["type"] == "estimate":
                query = protocol.decode_query(message["query"])
                result = self._client.estimate(query, options=options)
                response = protocol.result_response(request_id, result)
            else:
                queries = [protocol.decode_query(item) for item in message["queries"]]
                results = self._client.estimate_many(queries, options=options)
                response = protocol.batch_response(request_id, results)
        except BaseException as error:  # noqa: BLE001 — everything must answer typed
            response = protocol.error_response(request_id, error)
        try:
            self._send(connection, write_lock, response)
        except OSError:
            pass  # caller hung up; the retry on its side re-asks elsewhere
        finally:
            with self._idle:
                self._active -= 1
                self._idle.notify_all()

    @staticmethod
    def _send(connection, write_lock, message: dict[str, Any]) -> None:
        frame = protocol.encode_frame(message)
        with write_lock:
            connection.sendall(frame)

    # ------------------------------------------------------------------ #
    # health / drain

    def _health_payload(self) -> dict[str, Any]:
        # stats() flushes the recorder, so a health probe doubles as a
        # provenance checkpoint — events emitted so far are durable after it.
        stats = self._client.stats()
        recorder = self._client.recorder
        return {
            "shard": self._shard,
            "pid": os.getpid(),
            "generation": self._generation,
            "source": recorder.source if recorder is not None else None,
            "requests": stats.get("requests", 0.0),
            "queue_depth": stats.get("dispatcher_queue_depth", 0.0),
        }

    def _begin_drain(self) -> None:
        """Stop accepting, wait for in-flight requests (bounded)."""
        self._draining.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._idle:
            self._idle.wait_for(
                lambda: self._active == 0, timeout=self._drain_timeout
            )


def run_worker(spec: WorkerSpec, ready_pipe) -> None:
    """Forked-child entry: boot, announce, serve, ``os._exit``.

    The ready handshake is ``("ready", port, generation)`` on success or
    ``("error", message)`` on a boot failure; either way the pipe closes
    afterwards.  The child never returns — ``os._exit`` skips interpreter
    teardown of state inherited from the parent (its sockets, its SQLite
    connections), which the child must not touch.
    """
    exit_code = 0
    try:
        client, generation = boot_worker_client(spec)
        try:
            server = WorkerServer(
                client.__enter__(),
                shard=spec.shard,
                generation=generation,
                host=spec.config.cluster.host,
                max_handlers=spec.config.cluster.worker_threads,
                drain_timeout_seconds=spec.config.cluster.drain_timeout_seconds,
            )
            ready_pipe.send(("ready", server.port, generation))
            ready_pipe.close()
            server.serve_forever()
        finally:
            client.shutdown()
    except BaseException as error:  # noqa: BLE001 — the parent needs the reason
        exit_code = 1
        try:
            ready_pipe.send(("error", f"{type(error).__name__}: {error}"))
            ready_pipe.close()
        except (OSError, ValueError):
            pass
    finally:
        os._exit(exit_code)
