"""The cluster wire protocol: length-prefixed JSON frames, versioned messages.

One frame is a 4-byte big-endian payload length followed by that many bytes
of UTF-8 JSON — the smallest framing that survives TCP's stream semantics.
Every message is a JSON object carrying the protocol version (``"v"``), a
caller-chosen request id (``"id"``, echoed on the response so one connection
can multiplex concurrent requests), and a ``"type"`` from the table below:

==================  =============================================  =========
type                meaning                                        direction
==================  =============================================  =========
``estimate``        one query + :class:`RequestOptions`            → worker
``estimate_batch``  an ordered query list (``estimate_many``)      → worker
``health``          liveness / provenance probe                    → worker
``drain``           finish in-flight work, ack, exit               → worker
``control``         supervisor operation (status/drain/restart)    → control
``result``          one :class:`EstimateResult` (sans query)       ← worker
``batch_result``    ordered result list                            ← worker
``error``           a serialized taxonomy error                    ← worker
``health_result``   shard / generation / source / counters         ← worker
``drain_ack``       drain completed                                ← worker
``control_result``  control operation payload                      ← control
==================  =============================================  =========

Queries cross the wire as the artifact layer's structural JSON
(:func:`repro.artifacts.bundle.query_to_mapping`) — exact by construction,
no SQL re-parsing.  Results cross *without* their query: the router owns the
original :class:`~repro.sql.query.Query` object and re-attaches it, so the
response carries only the provenance fields (including ``model_generation``,
which is how generation provenance propagates across the process boundary).

**Error fidelity** is the protocol's main contract: a worker-side exception
is encoded as its taxonomy class name plus message, and
:func:`error_from_payload` rebuilds the *same class* on the router side — a
``DeadlineExceededError`` raised in a worker is a ``DeadlineExceededError``
(still a ``TimeoutError``) from :meth:`repro.serving.ServingClient.estimate`
in cluster mode, message preserved.  An exception type the registry does not
know is folded to its nearest registered base (ultimately
:class:`repro.serving.ClusterError`) with the original type name kept in the
message.

A version mismatch, an oversized frame, or a malformed message raises
:class:`repro.serving.ClusterProtocolError` at the receiving end — never a
silent misparse.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, BinaryIO, Mapping, Sequence

from repro.artifacts.bundle import query_from_mapping, query_to_mapping
from repro.serving.errors import (
    ArtifactChecksumError,
    ArtifactError,
    ArtifactNotFoundError,
    ArtifactSchemaError,
    ClusterError,
    ClusterProtocolError,
    DeadlineExceededError,
    DispatcherShutdownError,
    NoMatchingPoolQueryError,
    ServingError,
    UnknownEstimatorError,
    WorkerUnavailableError,
)
from repro.serving.service import EstimateResult, RequestOptions
from repro.sql.query import Query

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "decode_frame",
    "encode_frame",
    "error_from_payload",
    "error_to_payload",
    "options_from_payload",
    "options_to_payload",
    "read_frame",
    "read_frame_async",
    "result_from_payload",
    "result_to_payload",
    "roundtrip",
]

#: Bumped on any incompatible change to framing or message schema; both ends
#: reject frames from a version they do not speak.
PROTOCOL_VERSION = 1

#: Refuse absurd frame lengths before allocating: a desynced stream (or a
#: stray client speaking another protocol) yields garbage lengths, and 64 MiB
#: comfortably covers any real batch of structural query JSON.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")

#: The taxonomy classes that round-trip by name.  Every member keeps its
#: stdlib bases (``TimeoutError``, ``KeyError``, ...), so rebuilt errors
#: satisfy the same ``except`` clauses as the originals.
ERROR_KINDS: dict[str, type[BaseException]] = {
    cls.__name__: cls
    for cls in (
        ServingError,
        UnknownEstimatorError,
        DeadlineExceededError,
        DispatcherShutdownError,
        ArtifactError,
        ArtifactSchemaError,
        ArtifactChecksumError,
        ArtifactNotFoundError,
        ClusterError,
        WorkerUnavailableError,
        ClusterProtocolError,
        NoMatchingPoolQueryError,
    )
}


# ---------------------------------------------------------------------- #
# framing


def encode_frame(message: Mapping[str, Any]) -> bytes:
    """One message as a length-prefixed UTF-8 JSON frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ClusterProtocolError(
            f"frame of {len(payload)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return _LENGTH.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> dict[str, Any]:
    """Parse and version-check one frame's payload bytes."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ClusterProtocolError(f"frame payload is not valid JSON: {error}") from error
    if not isinstance(message, dict):
        raise ClusterProtocolError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    version = message.get("v")
    if version != PROTOCOL_VERSION:
        raise ClusterProtocolError(
            f"protocol version mismatch: peer speaks {version!r}, "
            f"this end speaks {PROTOCOL_VERSION}"
        )
    return message


def read_frame(stream: BinaryIO) -> dict[str, Any] | None:
    """Read one frame from a blocking binary stream; ``None`` on clean EOF.

    EOF *inside* a frame (a torn length prefix or a truncated payload) is a
    protocol error, not a clean close.
    """
    prefix = stream.read(_LENGTH.size)
    if not prefix:
        return None
    if len(prefix) < _LENGTH.size:
        raise ClusterProtocolError("stream ended inside a frame length prefix")
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ClusterProtocolError(
            f"incoming frame claims {length} bytes, over the "
            f"{MAX_FRAME_BYTES}-byte cap — desynced or foreign stream"
        )
    payload = stream.read(length)
    if payload is None or len(payload) < length:
        raise ClusterProtocolError(
            f"stream ended inside a frame: wanted {length} bytes, "
            f"got {0 if payload is None else len(payload)}"
        )
    return decode_frame(payload)


async def read_frame_async(reader) -> dict[str, Any] | None:
    """Asyncio twin of :func:`read_frame` over a ``StreamReader``."""
    import asyncio

    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ClusterProtocolError(
            "stream ended inside a frame length prefix"
        ) from error
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ClusterProtocolError(
            f"incoming frame claims {length} bytes, over the "
            f"{MAX_FRAME_BYTES}-byte cap — desynced or foreign stream"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ClusterProtocolError(
            f"stream ended inside a frame: wanted {length} bytes, "
            f"got {len(error.partial)}"
        ) from error
    return decode_frame(payload)


def roundtrip(
    address: tuple[str, int], message: Mapping[str, Any], timeout: float
) -> dict[str, Any]:
    """One synchronous connect → send → receive exchange (tooling path).

    The supervisor's drain path and ``scripts/cluster_tool.py`` use this;
    request traffic goes through the router's persistent async channels.
    """
    with socket.create_connection(address, timeout=timeout) as sock:
        sock.settimeout(timeout)
        sock.sendall(encode_frame(message))
        with sock.makefile("rb") as stream:
            reply = read_frame(stream)
    if reply is None:
        raise WorkerUnavailableError(
            f"peer at {address[0]}:{address[1]} closed the connection "
            f"without answering"
        )
    return reply


# ---------------------------------------------------------------------- #
# message constructors


def _message(message_type: str, request_id: int, **fields: Any) -> dict[str, Any]:
    return {"v": PROTOCOL_VERSION, "id": request_id, "type": message_type, **fields}


def estimate_request(
    request_id: int,
    query: Query | Mapping[str, Any],
    options: RequestOptions | None,
) -> dict[str, Any]:
    """One single-query request (``query`` may be pre-serialized)."""
    payload = query if isinstance(query, Mapping) else query_to_mapping(query)
    return _message(
        "estimate", request_id, query=payload, options=options_to_payload(options)
    )


def batch_request(
    request_id: int,
    queries: Sequence[Mapping[str, Any]],
    options: RequestOptions | None,
) -> dict[str, Any]:
    """One ``estimate_many`` sub-batch of pre-serialized queries."""
    return _message(
        "estimate_batch",
        request_id,
        queries=list(queries),
        options=options_to_payload(options),
    )


def health_request(request_id: int) -> dict[str, Any]:
    return _message("health", request_id)


def drain_request(request_id: int) -> dict[str, Any]:
    return _message("drain", request_id)


def control_request(
    request_id: int, op: str, shard: int | None = None
) -> dict[str, Any]:
    """A supervisor control operation (``status`` / ``drain`` / ``restart``)."""
    return _message("control", request_id, op=op, shard=shard)


def result_response(request_id: int, result: EstimateResult) -> dict[str, Any]:
    return _message("result", request_id, result=result_to_payload(result))


def batch_response(
    request_id: int, results: Sequence[EstimateResult]
) -> dict[str, Any]:
    return _message(
        "batch_result",
        request_id,
        results=[result_to_payload(result) for result in results],
    )


def error_response(request_id: int, error: BaseException) -> dict[str, Any]:
    return _message("error", request_id, error=error_to_payload(error))


def health_response(request_id: int, payload: Mapping[str, Any]) -> dict[str, Any]:
    return _message("health_result", request_id, health=dict(payload))


def drain_response(request_id: int, shard: int) -> dict[str, Any]:
    return _message("drain_ack", request_id, shard=shard)


def control_response(request_id: int, payload: Mapping[str, Any]) -> dict[str, Any]:
    return _message("control_result", request_id, payload=dict(payload))


# ---------------------------------------------------------------------- #
# typed payload encode/decode


def options_to_payload(options: RequestOptions | None) -> dict[str, Any] | None:
    """A :class:`RequestOptions` as plain JSON (``None`` stays ``None``)."""
    if options is None:
        return None
    return {
        "estimator": options.estimator,
        "timeout_seconds": options.timeout_seconds,
        "fallback_policy": options.fallback_policy,
        "tags": [list(pair) for pair in options.tags],
    }


def options_from_payload(payload: Mapping[str, Any] | None) -> RequestOptions | None:
    """Rebuild :class:`RequestOptions`; its own validation re-runs here."""
    if payload is None:
        return None
    try:
        return RequestOptions(
            estimator=payload.get("estimator"),
            timeout_seconds=payload.get("timeout_seconds"),
            fallback_policy=payload.get("fallback_policy", "registry"),
            tags=tuple(
                (str(key), str(value)) for key, value in payload.get("tags", ())
            ),
        )
    except (TypeError, ValueError) as error:
        raise ClusterProtocolError(f"invalid request options: {error}") from error


#: EstimateResult fields that cross the wire verbatim (everything except the
#: query, re-attached router-side, and ``tags``, which need list↔tuple help).
_RESULT_SCALARS = (
    "estimate",
    "estimator_name",
    "latency_seconds",
    "pool_matches",
    "pairs_scored",
    "used_fallback",
    "resolution",
    "model_generation",
    "featurization_cache_hits",
    "encoding_cache_hits",
    "queue_wait_seconds",
)


def result_to_payload(result: EstimateResult) -> dict[str, Any]:
    """An :class:`EstimateResult` sans query as plain JSON.

    The float fields ride as JSON numbers, which ``repr``-round-trip
    bit-exactly — the cluster's bit-identity contract holds across the wire.
    """
    payload = {name: getattr(result, name) for name in _RESULT_SCALARS}
    payload["tags"] = [list(pair) for pair in result.tags]
    return payload


def result_from_payload(
    payload: Mapping[str, Any], query: Query
) -> EstimateResult:
    """Re-attach the router's original ``query`` to a wire result."""
    try:
        return EstimateResult(
            query=query,
            tags=tuple(
                (str(key), str(value)) for key, value in payload.get("tags", ())
            ),
            **{name: payload[name] for name in _RESULT_SCALARS},
        )
    except (KeyError, TypeError) as error:
        raise ClusterProtocolError(f"invalid result payload: {error}") from error


def error_to_payload(error: BaseException) -> dict[str, Any]:
    """Serialize an exception as its taxonomy kind plus message.

    An unregistered type is folded to its nearest registered ancestor
    (ultimately :class:`ClusterError`), keeping the original type name in
    the message so nothing is silently lost.
    """
    kind = type(error).__name__
    if kind in ERROR_KINDS:
        return {"kind": kind, "message": str(error)}
    for base in type(error).__mro__:
        if base.__name__ in ERROR_KINDS:
            return {
                "kind": base.__name__,
                "message": f"{type(error).__name__}: {error}",
            }
    return {
        "kind": ClusterError.__name__,
        "message": f"worker raised {type(error).__name__}: {error}",
    }


def error_from_payload(payload: Mapping[str, Any]) -> BaseException:
    """Rebuild the taxonomy exception a worker serialized — same class."""
    kind = payload.get("kind")
    message = str(payload.get("message", ""))
    cls = ERROR_KINDS.get(str(kind))
    if cls is None:
        return ClusterError(f"worker raised unknown error kind {kind!r}: {message}")
    return cls(message)


def decode_query(payload: Mapping[str, Any]) -> Query:
    """Rebuild a query, mapping schema failures into the protocol taxonomy."""
    try:
        return query_from_mapping(payload)
    except ArtifactSchemaError as error:
        raise ClusterProtocolError(f"invalid wire query: {error}") from error
