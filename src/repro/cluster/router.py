"""The asyncio front-end: route by FROM-signature, fan out, retry, deadline.

The router is the cluster-mode request path of
:class:`repro.serving.ServingClient`.  One event loop on a dedicated thread
holds a persistent connection per shard (:class:`_ShardChannel`); callers on
any thread submit through ``asyncio.run_coroutine_threadsafe``, and each
channel multiplexes concurrent requests over its one connection by request
id — the worker answers out of order, the channel's read loop resolves the
matching future.

Routing is the same FROM-signature key the pool buckets on: a query whose
signature is in the assignment map goes to the worker that owns that
bucket; an unknown signature routes by a content hash
(:func:`repro.cluster.worker.stable_shard`) so fallback behaviour is still
deterministic.  ``estimate_many`` splits the batch by shard, fans the
sub-batches out concurrently, and reassembles results in caller order (a
failure in any sub-batch fails the whole call, matching local-mode
``estimate_many`` semantics).

Failure semantics: a lost connection fails every pending request on that
channel, and the router retries each — estimates are pure reads, so a
retry can never double-apply anything — with linear backoff, re-resolving
the worker's address from the supervisor each time (a restarted worker
listens on a new port).  When the bounded budget is spent, the caller gets
:class:`repro.serving.WorkerUnavailableError`.  Every roundtrip runs under
a deadline — the caller's ``timeout_seconds`` plus a grace (so the worker's
own :class:`repro.serving.DeadlineExceededError` usually wins the race and
carries its message), or ``ClusterConfig.request_timeout_seconds`` when the
caller set none — so a dead cluster fails typed instead of hanging.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from concurrent.futures import Future
from typing import Any, Callable, Sequence

from repro.artifacts.bundle import query_to_mapping
from repro.cluster import protocol
from repro.cluster.worker import stable_shard
from repro.serving.config import ServingConfig
from repro.serving.errors import (
    DeadlineExceededError,
    ServingError,
    WorkerUnavailableError,
)
from repro.serving.service import EstimateResult, RequestOptions
from repro.sql.query import Query

__all__ = ["ClusterRouter"]


class _ChannelLost(ConnectionError):
    """Internal: a roundtrip died with the connection; retry may help."""


class ClusterRouter:
    """Routes requests to shard workers over persistent async channels."""

    def __init__(self, supervisor, config: ServingConfig) -> None:
        self._supervisor = supervisor
        self._cluster = config.cluster
        self._assignment = dict(supervisor.assignment)
        self._num_workers = config.cluster.num_workers
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._channels: dict[int, _ShardChannel] = {}
        self._ids = itertools.count(1)
        self._stats_lock = threading.Lock()
        self._routed = 0
        self._retries = 0
        self._unavailable = 0

    # ------------------------------------------------------------------ #
    # lifecycle

    def start(self) -> None:
        if self._loop is not None:
            return
        loop = asyncio.new_event_loop()
        self._loop = loop
        self._thread = threading.Thread(
            target=loop.run_forever, name="cluster-router", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        loop, self._loop = self._loop, None
        if loop is None:
            return
        asyncio.run_coroutine_threadsafe(self._close_channels(), loop).result(
            timeout=self._cluster.drain_timeout_seconds
        )
        loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=self._cluster.drain_timeout_seconds)
            self._thread = None
        loop.close()

    async def _close_channels(self) -> None:
        for channel in self._channels.values():
            channel.teardown(ConnectionError("router shut down"))
        self._channels.clear()

    # ------------------------------------------------------------------ #
    # routing

    def shard_for(self, query: Query) -> int:
        signature = query.from_signature()
        shard = self._assignment.get(signature)
        if shard is not None:
            return shard
        return stable_shard(signature, self._num_workers)

    # ------------------------------------------------------------------ #
    # sync surface (called from any thread)

    def estimate(
        self, query: Query, options: RequestOptions | None = None
    ) -> EstimateResult:
        return self._submit(self._estimate_async(query, options)).result()

    def estimate_many(
        self, queries: Sequence[Query], options: RequestOptions | None = None
    ) -> list[EstimateResult]:
        return self._submit(self._estimate_many_async(list(queries), options)).result()

    def estimate_future(
        self, query: Query, options: RequestOptions | None = None
    ) -> Future:
        return self._submit(self._estimate_async(query, options))

    def _submit(self, coroutine) -> Future:
        loop = self._loop
        if loop is None:
            raise ServingError(
                "cluster router is not running; start the client first "
                "(use the context manager or ServingClient.start)"
            )
        return asyncio.run_coroutine_threadsafe(coroutine, loop)

    def stats_snapshot(self) -> dict[str, float]:
        with self._stats_lock:
            return {
                "cluster_requests_routed": float(self._routed),
                "cluster_retries": float(self._retries),
                "cluster_unavailable": float(self._unavailable),
            }

    # ------------------------------------------------------------------ #
    # async internals (all on the router loop)

    def _budget(self, options: RequestOptions | None) -> float:
        if options is not None and options.timeout_seconds is not None:
            return options.timeout_seconds + self._cluster.deadline_grace_seconds
        return self._cluster.request_timeout_seconds

    async def _estimate_async(
        self, query: Query, options: RequestOptions | None
    ) -> EstimateResult:
        shard = self.shard_for(query)
        payload = query_to_mapping(query)
        budget = self._budget(options)
        try:
            reply = await asyncio.wait_for(
                self._roundtrip_with_retry(
                    shard,
                    lambda rid: protocol.estimate_request(rid, payload, options),
                ),
                timeout=budget,
            )
        except asyncio.TimeoutError:
            raise DeadlineExceededError(
                f"cluster request to shard {shard} was not answered within "
                f"{budget:.3f}s"
            ) from None
        with self._stats_lock:
            self._routed += 1
        if reply["type"] == "error":
            raise protocol.error_from_payload(reply["error"])
        return protocol.result_from_payload(reply["result"], query)

    async def _estimate_many_async(
        self, queries: list[Query], options: RequestOptions | None
    ) -> list[EstimateResult]:
        if not queries:
            return []
        by_shard: dict[int, list[int]] = {}
        for index, query in enumerate(queries):
            by_shard.setdefault(self.shard_for(query), []).append(index)

        async def run_shard(shard: int, indices: list[int]) -> list[EstimateResult]:
            payload = [query_to_mapping(queries[index]) for index in indices]
            budget = self._cluster.request_timeout_seconds
            try:
                reply = await asyncio.wait_for(
                    self._roundtrip_with_retry(
                        shard,
                        lambda rid: protocol.batch_request(rid, payload, options),
                    ),
                    timeout=budget,
                )
            except asyncio.TimeoutError:
                raise DeadlineExceededError(
                    f"cluster batch to shard {shard} was not answered within "
                    f"{budget:.3f}s"
                ) from None
            if reply["type"] == "error":
                raise protocol.error_from_payload(reply["error"])
            return [
                protocol.result_from_payload(item, queries[index])
                for item, index in zip(reply["results"], indices, strict=True)
            ]

        shards = sorted(by_shard)
        outcomes = await asyncio.gather(
            *(run_shard(shard, by_shard[shard]) for shard in shards),
            return_exceptions=True,
        )
        # Local-mode estimate_many fails the whole batch on any request
        # failure; raise deterministically (lowest failing shard).
        results: list[EstimateResult | None] = [None] * len(queries)
        for shard, outcome in zip(shards, outcomes, strict=True):
            if isinstance(outcome, BaseException):
                raise outcome
            for index, result in zip(by_shard[shard], outcome, strict=True):
                results[index] = result
        with self._stats_lock:
            self._routed += len(queries)
        return results  # type: ignore[return-value]

    async def _roundtrip_with_retry(
        self, shard: int, build: Callable[[int], dict[str, Any]]
    ) -> dict[str, Any]:
        attempts = self._cluster.retry_attempts + 1
        last: BaseException | None = None
        for attempt in range(attempts):
            if attempt:
                with self._stats_lock:
                    self._retries += 1
                await asyncio.sleep(self._cluster.retry_backoff_seconds * attempt)
            channel = self._channels.get(shard)
            if channel is None:
                channel = _ShardChannel(self, shard)
                self._channels[shard] = channel
            try:
                return await channel.roundtrip(build(next(self._ids)))
            except (_ChannelLost, WorkerUnavailableError) as error:
                last = error
                continue
        with self._stats_lock:
            self._unavailable += 1
        if isinstance(last, WorkerUnavailableError):
            raise last
        raise WorkerUnavailableError(
            f"shard {shard} unavailable after {attempts} attempt(s): {last}"
        )


class _ShardChannel:
    """One persistent connection to one shard, multiplexed by request id."""

    def __init__(self, router: ClusterRouter, shard: int) -> None:
        self._router = router
        self._shard = shard
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._read_task: asyncio.Task | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._connect_lock = asyncio.Lock()

    async def roundtrip(self, message: dict[str, Any]) -> dict[str, Any]:
        await self._ensure_connected()
        request_id = message["id"]
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            assert self._writer is not None
            self._writer.write(protocol.encode_frame(message))
            await self._writer.drain()
            return await future
        except (ConnectionError, OSError) as error:
            if not isinstance(error, _ChannelLost):
                self.teardown(error)
                raise _ChannelLost(str(error)) from error
            raise
        finally:
            self._pending.pop(request_id, None)

    async def _ensure_connected(self) -> None:
        async with self._connect_lock:
            if self._writer is not None:
                return
            # Re-resolve every time: a restarted worker has a new port, and
            # a drained/failed shard raises WorkerUnavailableError here.
            address = self._router._supervisor.address(self._shard)
            if address is None:
                raise _ChannelLost(
                    f"shard {self._shard} is restarting; no address yet"
                )
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(*address),
                    timeout=self._router._cluster.connect_timeout_seconds,
                )
            except (OSError, asyncio.TimeoutError) as error:
                raise _ChannelLost(
                    f"cannot connect to shard {self._shard} at "
                    f"{address[0]}:{address[1]}: {error}"
                ) from error
            self._reader = reader
            self._writer = writer
            self._read_task = asyncio.get_running_loop().create_task(
                self._read_loop(reader)
            )

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                message = await protocol.read_frame_async(reader)
                if message is None:
                    break
                future = self._pending.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except Exception:  # noqa: BLE001 — any read failure means channel loss
            pass
        self.teardown(ConnectionError(f"connection to shard {self._shard} lost"))

    def teardown(self, error: BaseException) -> None:
        """Fail every pending request and drop the connection."""
        writer, self._writer = self._writer, None
        self._reader = None
        if writer is not None:
            try:
                writer.close()
            except Exception:  # noqa: BLE001 — closing a broken transport
                pass
        if self._read_task is not None and not self._read_task.done():
            self._read_task.cancel()
        self._read_task = None
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(_ChannelLost(str(error)))
