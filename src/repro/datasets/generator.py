"""The paper's three-step query generator (Section 3.1.2).

The generator produces the training and evaluation workloads directly from the
database schema and the actual column values:

1. **Initial queries** -- repeatedly pick a connected set of tables (up to a
   configurable number of joins), add the corresponding join edges, and for
   each base table uniformly draw ``0..|non-key columns|`` predicates, each
   with a uniformly drawn non-key column, operator (``<``, ``=``, ``>``) and a
   value from the column's actual value range.
2. **Similar queries** -- for each initial query, create several "similar but
   different" variants by randomly mutating predicate operators or values and
   by adding extra predicates; this yields pairs that look alike but have very
   different containment rates (the paper's "hard" dataset).
3. **Pairs** -- combine queries from both steps into pairs with identical FROM
   clauses.

Cardinality workloads (Section 6.1) run only the first two steps; containment
workloads run all three.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.db.database import Database
from repro.sql.query import ComparisonOperator, JoinClause, Predicate, Query, TableRef

#: Operators the generator draws from (Section 3.1.2).
_GENERATOR_OPERATORS = (
    ComparisonOperator.LT,
    ComparisonOperator.EQ,
    ComparisonOperator.GT,
)


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the query generator.

    Attributes:
        max_joins: largest number of join clauses in a generated query.  The
            paper trains with up to two joins and evaluates generalization to
            five, so training generators use 2 and test generators up to 5.
        min_joins: smallest number of join clauses (0 = single-table queries).
        max_predicates_per_table: cap on predicates drawn per base table; the
            paper draws up to the number of non-key columns, which this cap
            further bounds to keep queries readable.
        max_predicates_per_query: cap on the total number of predicates in one
            query.  On the laptop-scale synthetic database, queries with many
            conjunctive predicates are almost always empty, which would make
            every workload degenerate; the cap keeps the empty-result fraction
            comparable to the paper's full-size IMDb setting.
        similar_queries_per_initial: how many mutated variants step 2 derives
            from each initial query.
        mutation_add_predicate_probability: probability that a mutation adds a
            fresh predicate rather than perturbing an existing one.
        value_perturbation_fraction: relative size of value perturbations,
            as a fraction of the column's value range.
        seed: RNG seed; two generators with the same seed produce identical
            workloads.
    """

    max_joins: int = 2
    min_joins: int = 0
    max_predicates_per_table: int = 2
    max_predicates_per_query: int = 4
    similar_queries_per_initial: int = 3
    mutation_add_predicate_probability: float = 0.35
    value_perturbation_fraction: float = 0.15
    seed: int = 0

    def __post_init__(self) -> None:
        if self.min_joins < 0 or self.max_joins < self.min_joins:
            raise ValueError("need 0 <= min_joins <= max_joins")
        if self.max_predicates_per_table < 0:
            raise ValueError("max_predicates_per_table must be non-negative")
        if self.max_predicates_per_query < 0:
            raise ValueError("max_predicates_per_query must be non-negative")
        if self.similar_queries_per_initial < 0:
            raise ValueError("similar_queries_per_initial must be non-negative")


class QueryGenerator:
    """Random query / query-pair generator over a specific database.

    Args:
        database: the database whose schema and value ranges drive generation.
        config: generator configuration.
    """

    def __init__(self, database: Database, config: GeneratorConfig | None = None) -> None:
        self.database = database
        self.config = config or GeneratorConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self._join_subsets = _enumerate_join_subsets(database, self.config.max_joins)
        if not self._join_subsets:
            raise ValueError("the database schema exposes no joinable table subsets")

    def join_subsets(self, num_joins: int) -> list[tuple[tuple[str, ...], tuple[JoinClause, ...]]]:
        """All connected ``(aliases, joins)`` combinations with exactly ``num_joins`` joins."""
        return list(self._join_subsets.get(num_joins, []))

    # ------------------------------------------------------------------ #
    # step 1: initial queries

    def generate_query(self, num_joins: int | None = None) -> Query:
        """Generate one random query (step 1 of the generator).

        Args:
            num_joins: force a specific number of joins; drawn uniformly from
                ``[min_joins, max_joins]`` when omitted.
        """
        if num_joins is None:
            num_joins = int(self._rng.integers(self.config.min_joins, self.config.max_joins + 1))
        tables, joins = self._choose_tables_and_joins(num_joins)
        predicates = self._draw_predicates(tables)
        return Query.create(tables, joins, predicates)

    def generate_queries(self, count: int, num_joins: int | None = None) -> list[Query]:
        """Generate ``count`` distinct random queries."""
        queries: list[Query] = []
        seen: set[Query] = set()
        attempts = 0
        max_attempts = max(count * 50, 1000)
        while len(queries) < count and attempts < max_attempts:
            attempts += 1
            query = self.generate_query(num_joins)
            if query in seen:
                continue
            seen.add(query)
            queries.append(query)
        if len(queries) < count:
            raise RuntimeError(
                f"could only generate {len(queries)} distinct queries out of {count} requested"
            )
        return queries

    # ------------------------------------------------------------------ #
    # step 2: similar queries

    def generate_similar_query(self, query: Query) -> Query:
        """Derive a "similar but different" query from ``query`` (step 2).

        The variant keeps the FROM clause and join set and either perturbs an
        existing predicate (operator or value), adds a new predicate, or drops
        a predicate.  The mix is chosen so the resulting pairs span the whole
        containment spectrum: dropping/adding predicates yields one-sided
        full containment, perturbations yield partial overlap, and operator
        flips yield (near-)disjoint results.
        """
        predicates = list(query.predicates)
        draw = self._rng.random()
        add_probability = self.config.mutation_add_predicate_probability
        if not predicates or draw < add_probability:
            new_predicate = self._draw_single_predicate(self._rng.choice(query.aliases))
            if new_predicate is not None:
                predicates.append(new_predicate)
        elif draw < add_probability + 0.2 and len(predicates) > 1:
            # Drop a predicate: the original query is then fully contained in
            # the variant, while the reverse rate varies.
            predicates.pop(int(self._rng.integers(len(predicates))))
        else:
            index = int(self._rng.integers(len(predicates)))
            predicates[index] = self._mutate_predicate(predicates[index])
        mutated = Query(query.tables, query.joins, tuple(dict.fromkeys(predicates)))
        if mutated == query:
            # Mutation was a no-op (e.g. duplicate predicate); force a value change.
            if predicates:
                index = int(self._rng.integers(len(predicates)))
                predicates[index] = self._mutate_predicate(predicates[index], force_value=True)
                mutated = Query(query.tables, query.joins, tuple(dict.fromkeys(predicates)))
        return mutated

    def generate_similar_queries(self, query: Query, count: int | None = None) -> list[Query]:
        """Derive ``count`` similar variants of ``query`` (may contain fewer if
        mutations collide)."""
        count = self.config.similar_queries_per_initial if count is None else count
        variants: list[Query] = []
        seen: set[Query] = {query}
        attempts = 0
        while len(variants) < count and attempts < count * 20 + 10:
            attempts += 1
            variant = self.generate_similar_query(query)
            if variant in seen:
                continue
            seen.add(variant)
            variants.append(variant)
        return variants

    # ------------------------------------------------------------------ #
    # step 3: pairs

    def generate_pairs(self, count: int, num_joins: int | None = None) -> list[tuple[Query, Query]]:
        """Generate ``count`` unique query pairs with identical FROM clauses.

        Following the paper's third generator step, pairs are formed from all
        the queries produced by the first two steps that share a FROM clause.
        Concretely the mix contains:

        * "hard" pairs of an initial query with one of its similar variants
          (small syntactic difference, widely varying containment rate);
        * pairs of two *independent* queries over the same FROM clause,
          including queries with few or no predicates -- exactly the kind of
          pair the Cnt2Crd technique later evaluates against the queries pool.
        """
        pairs: list[tuple[Query, Query]] = []
        seen: set[tuple[Query, Query]] = set()
        by_from: dict[tuple, list[Query]] = {}
        attempts = 0
        max_attempts = max(count * 60, 2000)

        def emit(first: Query, second: Query) -> None:
            if first == second or len(pairs) >= count:
                return
            pair = (first, second)
            if pair in seen:
                return
            seen.add(pair)
            pairs.append(pair)

        while len(pairs) < count and attempts < max_attempts:
            attempts += 1
            base = self.generate_query(num_joins)
            variants = self.generate_similar_queries(base)
            # Hard pairs: base vs its variants (both directions on occasion).
            for variant in variants:
                emit(base, variant)
                if self._rng.random() < 0.3:
                    emit(variant, base)
            if len(variants) >= 2:
                emit(variants[0], variants[1])
            # Frame pairs: base vs its predicate-free frame.  The queries pool
            # is seeded with exactly such frame queries (Section 5.2), so the
            # corpus must cover this pair type for Cnt2Crd to work well.
            if base.predicates and self._rng.random() < 0.5:
                frame = base.without_predicates()
                emit(base, frame)
                emit(frame, base)
            # Independent pairs: base vs previously generated queries with the
            # same FROM clause (step 3 of the paper's generator).
            signature = base.from_signature()
            siblings = by_from.setdefault(signature, [])
            if siblings:
                partner = siblings[int(self._rng.integers(len(siblings)))]
                emit(base, partner)
                emit(partner, base)
            siblings.append(base)
            if variants:
                siblings.append(variants[0])
        if len(pairs) < count:
            raise RuntimeError(
                f"could only generate {len(pairs)} distinct pairs out of {count} requested"
            )
        return pairs

    # ------------------------------------------------------------------ #
    # internals

    def _choose_tables_and_joins(self, num_joins: int) -> tuple[list[TableRef], list[JoinClause]]:
        subsets = self._join_subsets.get(num_joins)
        if not subsets:
            available = sorted(self._join_subsets)
            fallback = max(joins for joins in available if joins <= num_joins)
            subsets = self._join_subsets[fallback]
        index = int(self._rng.integers(len(subsets)))
        aliases, joins = subsets[index]
        tables = [
            TableRef(self.database.schema.table_by_alias(alias).name, alias) for alias in aliases
        ]
        return tables, list(joins)

    def _draw_predicates(self, tables: list[TableRef]) -> list[Predicate]:
        predicates: list[Predicate] = []
        # Visit tables in random order so the per-query cap does not always
        # starve the same tables.
        order = self._rng.permutation(len(tables))
        for table_index in order:
            table_ref = tables[int(table_index)]
            table_schema = self.database.schema.table(table_ref.name)
            non_key = table_schema.non_key_columns
            if not non_key:
                continue
            remaining = self.config.max_predicates_per_query - len(predicates)
            if remaining <= 0:
                break
            cap = min(len(non_key), self.config.max_predicates_per_table, remaining)
            num_predicates = int(self._rng.integers(0, cap + 1))
            if num_predicates == 0:
                continue
            column_indices = self._rng.choice(len(non_key), size=num_predicates, replace=False)
            for column_index in np.atleast_1d(column_indices):
                column = non_key[int(column_index)]
                predicate = self._draw_predicate_for_column(table_ref.alias, column.name)
                if predicate is not None:
                    predicates.append(predicate)
        return predicates

    def _draw_single_predicate(self, alias: str) -> Predicate | None:
        table_schema = self.database.schema.table_by_alias(alias)
        non_key = table_schema.non_key_columns
        if not non_key:
            return None
        column = non_key[int(self._rng.integers(len(non_key)))]
        return self._draw_predicate_for_column(alias, column.name)

    def _draw_predicate_for_column(self, alias: str, column: str) -> Predicate | None:
        low, high = self.database.column_range(alias, column)
        if low == high:
            operator = ComparisonOperator.EQ
            value = low
        else:
            operator = _GENERATOR_OPERATORS[int(self._rng.integers(len(_GENERATOR_OPERATORS)))]
            if operator is ComparisonOperator.EQ:
                # Draw an actual value so equality predicates are satisfiable.
                values = self.database.table_by_alias(alias).column(column)
                value = float(values[int(self._rng.integers(len(values)))])
            else:
                value = float(np.round(self._rng.uniform(low, high)))
        return Predicate(alias, column, operator, value)

    def _mutate_predicate(self, predicate: Predicate, force_value: bool = False) -> Predicate:
        """Perturb one predicate's value or operator.

        Range predicates get their value shifted by a bounded fraction of the
        column range (partial overlap with the original).  Equality predicates
        are widened into range predicates more often than re-pointed at a
        different value, because two different equality constants are disjoint
        and an all-disjoint pair set would teach the model nothing.
        """
        is_equality = predicate.operator is ComparisonOperator.EQ
        mutate_value = force_value or self._rng.random() < (0.35 if is_equality else 0.6)
        if mutate_value:
            low, high = self.database.column_range(predicate.alias, predicate.column)
            span = max(high - low, 1.0)
            shift = self._rng.uniform(
                -self.config.value_perturbation_fraction, self.config.value_perturbation_fraction
            )
            new_value = float(np.clip(np.round(predicate.value + shift * span), low, high))
            if new_value == predicate.value:
                new_value = float(np.clip(predicate.value + 1, low, high))
            return Predicate(predicate.alias, predicate.column, predicate.operator, new_value)
        choices = [op for op in _GENERATOR_OPERATORS if op is not predicate.operator]
        new_operator = choices[int(self._rng.integers(len(choices)))]
        return Predicate(predicate.alias, predicate.column, new_operator, predicate.value)


def _enumerate_join_subsets(
    database: Database, max_joins: int
) -> dict[int, list[tuple[tuple[str, ...], tuple[JoinClause, ...]]]]:
    """Enumerate connected alias subsets reachable with ``0..max_joins`` join edges.

    Returns a mapping from join count to the list of ``(aliases, joins)``
    combinations with exactly that many joins.  For the JOB-style star schema
    this enumerates single tables (0 joins), title-fact pairs (1 join), and
    fact-title-fact stars (>= 2 joins).
    """
    edges = database.schema.join_edges()
    subsets: dict[int, list[tuple[tuple[str, ...], tuple[JoinClause, ...]]]] = {0: []}

    for table_schema in database.schema.tables:
        subsets[0].append(((table_schema.alias,), ()))

    # Build adjacency between aliases from the foreign-key edges.
    for num_joins in range(1, max_joins + 1):
        combos: list[tuple[tuple[str, ...], tuple[JoinClause, ...]]] = []
        for edge_combo in itertools.combinations(edges, num_joins):
            aliases: set[str] = set()
            joins: list[JoinClause] = []
            for left_alias, left_column, right_alias, right_column in edge_combo:
                aliases.update((left_alias, right_alias))
                joins.append(JoinClause(left_alias, left_column, right_alias, right_column))
            if not _is_connected(aliases, joins):
                continue
            combos.append((tuple(sorted(aliases)), tuple(sorted(joins))))
        if combos:
            subsets[num_joins] = combos
    return subsets


def _is_connected(aliases: set[str], joins: list[JoinClause]) -> bool:
    """Whether the join graph over ``aliases`` with ``joins`` edges is connected."""
    if len(aliases) <= 1:
        return True
    adjacency: dict[str, set[str]] = {alias: set() for alias in aliases}
    for join in joins:
        adjacency[join.left_alias].add(join.right_alias)
        adjacency[join.right_alias].add(join.left_alias)
    start = next(iter(aliases))
    visited = {start}
    frontier = [start]
    while frontier:
        current = frontier.pop()
        for neighbor in adjacency[current]:
            if neighbor not in visited:
                visited.add(neighbor)
                frontier.append(neighbor)
    return visited == aliases
