"""The "scale" workload generator (Section 6.1).

The paper's ``scale`` workload is derived from the MSCN test set of Kipf et
al., i.e. it comes from a *different* query generator than the one used to
train CRN.  Its purpose is to test generalization to queries that were not
produced by the training generator.

This module implements that different generator: it draws join patterns,
predicate counts, operators and values with different distributions than
:class:`repro.datasets.generator.QueryGenerator` (value-anchored predicates,
range-heavy operators, per-table predicate budgets independent of the column
count), mimicking how the MSCN workload generator differs from the paper's.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.db.database import Database
from repro.sql.query import ComparisonOperator, JoinClause, Predicate, Query, TableRef


@dataclass(frozen=True)
class ScaleGeneratorConfig:
    """Configuration of the scale-workload generator.

    Attributes:
        max_joins: largest number of join clauses (the paper's scale workload
            has queries with zero to four joins).
        max_predicates_per_query: total predicate budget per query (drawn
            uniformly in ``[1, max]`` and spread over the query's tables).
        range_operator_probability: probability of drawing ``<`` / ``>``
            instead of ``=`` (the MSCN generator is range-heavy).
        seed: RNG seed.
    """

    max_joins: int = 4
    max_predicates_per_query: int = 4
    range_operator_probability: float = 0.7
    seed: int = 101


class ScaleWorkloadGenerator:
    """Generates queries with different statistics than the training generator."""

    def __init__(self, database: Database, config: ScaleGeneratorConfig | None = None) -> None:
        self.database = database
        self.config = config or ScaleGeneratorConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self._join_subsets = _join_subsets_by_count(database, self.config.max_joins)

    def generate_query(self, num_joins: int | None = None) -> Query:
        """Generate a single query, optionally with a fixed number of joins."""
        available = sorted(self._join_subsets)
        if num_joins is None:
            num_joins = int(self._rng.choice(available))
        elif num_joins not in self._join_subsets:
            num_joins = max(count for count in available if count <= num_joins)
        subsets = self._join_subsets[num_joins]
        aliases, joins = subsets[int(self._rng.integers(len(subsets)))]
        tables = [
            TableRef(self.database.schema.table_by_alias(alias).name, alias) for alias in aliases
        ]
        predicates = self._draw_predicates(aliases)
        return Query.create(tables, joins, predicates)

    def generate_queries(self, count: int, num_joins: int | None = None) -> list[Query]:
        """Generate ``count`` distinct queries."""
        queries: list[Query] = []
        seen: set[Query] = set()
        attempts = 0
        while len(queries) < count and attempts < count * 60 + 100:
            attempts += 1
            query = self.generate_query(num_joins)
            if query in seen:
                continue
            seen.add(query)
            queries.append(query)
        if len(queries) < count:
            raise RuntimeError(
                f"scale generator produced only {len(queries)} of {count} requested queries"
            )
        return queries

    # ------------------------------------------------------------------ #
    # internals

    def _draw_predicates(self, aliases: tuple[str, ...]) -> list[Predicate]:
        budget = int(self._rng.integers(1, self.config.max_predicates_per_query + 1))
        predicates: list[Predicate] = []
        for _ in range(budget):
            alias = str(self._rng.choice(aliases))
            table_schema = self.database.schema.table_by_alias(alias)
            non_key = table_schema.non_key_columns
            if not non_key:
                continue
            column = non_key[int(self._rng.integers(len(non_key)))]
            predicates.append(self._draw_predicate(alias, column.name))
        return list(dict.fromkeys(predicates))

    def _draw_predicate(self, alias: str, column: str) -> Predicate:
        # Anchor the value on an actual row so predicates are rarely empty,
        # unlike the training generator which draws uniformly from the range.
        values = self.database.table_by_alias(alias).column(column)
        anchor = float(values[int(self._rng.integers(len(values)))])
        if self._rng.random() < self.config.range_operator_probability:
            operator = (
                ComparisonOperator.LT if self._rng.random() < 0.5 else ComparisonOperator.GT
            )
        else:
            operator = ComparisonOperator.EQ
        return Predicate(alias, column, operator, anchor)


def _join_subsets_by_count(
    database: Database, max_joins: int
) -> dict[int, list[tuple[tuple[str, ...], tuple[JoinClause, ...]]]]:
    """Connected alias subsets grouped by join count (same shape as the training generator's)."""
    edges = database.schema.join_edges()
    subsets: dict[int, list[tuple[tuple[str, ...], tuple[JoinClause, ...]]]] = {
        0: [((schema.alias,), ()) for schema in database.schema.tables]
    }
    for num_joins in range(1, max_joins + 1):
        combos: list[tuple[tuple[str, ...], tuple[JoinClause, ...]]] = []
        for edge_combo in itertools.combinations(edges, num_joins):
            aliases: set[str] = set()
            joins: list[JoinClause] = []
            for left_alias, left_column, right_alias, right_column in edge_combo:
                aliases.update((left_alias, right_alias))
                joins.append(JoinClause(left_alias, left_column, right_alias, right_column))
            if _connected(aliases, joins):
                combos.append((tuple(sorted(aliases)), tuple(sorted(joins))))
        if combos:
            subsets[num_joins] = combos
    return subsets


def _connected(aliases: set[str], joins: list[JoinClause]) -> bool:
    if len(aliases) <= 1:
        return True
    adjacency: dict[str, set[str]] = {alias: set() for alias in aliases}
    for join in joins:
        adjacency[join.left_alias].add(join.right_alias)
        adjacency[join.right_alias].add(join.left_alias)
    start = next(iter(aliases))
    seen = {start}
    frontier = [start]
    while frontier:
        current = frontier.pop()
        for neighbor in adjacency[current]:
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return seen == aliases
