"""Builders for the paper's training and evaluation workloads.

The paper evaluates on five workloads (Sections 4.2 and 6.1):

* ``cnt_test1`` -- 1200 query *pairs* with 0-2 joins (in-distribution
  containment test, Table 2).
* ``cnt_test2`` -- 1200 query *pairs* with 0-5 joins (containment
  generalization test, Table 2).
* ``crd_test1`` -- 450 *queries* with 0-2 joins (in-distribution cardinality
  test, Table 5).
* ``crd_test2`` -- 450 *queries* with 0-5 joins (cardinality generalization
  test, Table 5).
* ``scale`` -- 500 *queries* with 0-4 joins from a *different* generator
  (cross-generator generalization, Table 5).

All builders accept a ``scale`` factor so tests and CI can run proportionally
smaller workloads with the same join distribution (e.g. ``scale=0.1`` builds a
120-pair cnt_test1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.datasets.generator import GeneratorConfig, QueryGenerator
from repro.datasets.pairs import LabeledQuery, QueryPair, label_pairs, label_queries
from repro.datasets.scale import ScaleGeneratorConfig, ScaleWorkloadGenerator
from repro.db.database import Database
from repro.db.intersection import TrueCardinalityOracle
from repro.sql.query import Query

#: Paper join distributions (Table 2 and Table 5), as {num_joins: count}.
CNT_TEST1_DISTRIBUTION: dict[int, int] = {0: 400, 1: 400, 2: 400}
CNT_TEST2_DISTRIBUTION: dict[int, int] = {0: 200, 1: 200, 2: 200, 3: 200, 4: 200, 5: 200}
CRD_TEST1_DISTRIBUTION: dict[int, int] = {0: 150, 1: 150, 2: 150}
CRD_TEST2_DISTRIBUTION: dict[int, int] = {0: 75, 1: 75, 2: 75, 3: 75, 4: 75, 5: 75}
SCALE_DISTRIBUTION: dict[int, int] = {0: 115, 1: 115, 2: 107, 3: 88, 4: 75}

#: The JOB-style star schema exposes five joinable fact tables around ``title``,
#: so the largest supported join count is 5.
MAX_SUPPORTED_JOINS = 5


@dataclass(frozen=True)
class WorkloadSpec:
    """Specification of a workload: name, per-join-count sizes, and seed."""

    name: str
    distribution: Mapping[int, int]
    seed: int = 0

    def scaled(self, scale: float) -> "WorkloadSpec":
        """Return a spec with every per-join count multiplied by ``scale`` (>= 1 query)."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        scaled = {
            joins: max(1, int(round(count * scale)))
            for joins, count in self.distribution.items()
            if count > 0
        }
        return WorkloadSpec(name=self.name, distribution=scaled, seed=self.seed)

    @property
    def total(self) -> int:
        """Total number of queries/pairs in the workload."""
        return sum(self.distribution.values())


@dataclass(frozen=True)
class PairWorkload:
    """A named containment workload: query pairs with true containment rates."""

    name: str
    pairs: tuple[QueryPair, ...]

    def __len__(self) -> int:
        return len(self.pairs)

    def by_num_joins(self) -> dict[int, list[QueryPair]]:
        """Group the pairs by join count."""
        groups: dict[int, list[QueryPair]] = {}
        for pair in self.pairs:
            groups.setdefault(pair.num_joins, []).append(pair)
        return groups


@dataclass(frozen=True)
class Workload:
    """A named cardinality workload: queries with true cardinalities."""

    name: str
    queries: tuple[LabeledQuery, ...]

    def __len__(self) -> int:
        return len(self.queries)

    def by_num_joins(self) -> dict[int, list[LabeledQuery]]:
        """Group the queries by join count."""
        groups: dict[int, list[LabeledQuery]] = {}
        for labeled in self.queries:
            groups.setdefault(labeled.num_joins, []).append(labeled)
        return groups

    def restrict_joins(self, min_joins: int, max_joins: int) -> "Workload":
        """Return the sub-workload whose queries have ``min_joins <= joins <= max_joins``."""
        queries = tuple(
            labeled for labeled in self.queries if min_joins <= labeled.num_joins <= max_joins
        )
        return Workload(name=f"{self.name}[{min_joins}-{max_joins} joins]", queries=queries)


def join_distribution(workload: "Workload | PairWorkload") -> dict[int, int]:
    """Return the ``{num_joins: count}`` distribution of a workload (Tables 2 and 5)."""
    if isinstance(workload, PairWorkload):
        return {joins: len(items) for joins, items in sorted(workload.by_num_joins().items())}
    return {joins: len(items) for joins, items in sorted(workload.by_num_joins().items())}


# --------------------------------------------------------------------------- #
# pair (containment) workloads


def build_training_pairs(
    database: Database,
    count: int = 1000,
    max_joins: int = 2,
    seed: int = 1,
    oracle: TrueCardinalityOracle | None = None,
    max_zero_rate_fraction: float = 0.3,
) -> list[QueryPair]:
    """Build the CRN training corpus: labelled pairs with 0..``max_joins`` joins.

    The paper generates 100,000 pairs with zero to two joins (Section 3.1.2);
    ``count`` scales that down for laptop-scale runs.

    Args:
        database: the database pairs are labelled against.
        count: number of labelled pairs to produce.
        max_joins: largest join count in the training pairs (2 in the paper).
        seed: generator seed.
        oracle: shared true-cardinality oracle.
        max_zero_rate_fraction: cap on the fraction of pairs whose true
            containment rate is exactly zero.  On the laptop-scale synthetic
            database, disjoint-result pairs are far more common than on the
            full IMDb; letting them dominate the corpus teaches the model
            little beyond "predict zero", so the excess is resampled.
    """
    oracle = oracle or TrueCardinalityOracle(database)
    generator = QueryGenerator(database, GeneratorConfig(max_joins=max_joins, seed=seed))
    zero_budget = int(np.ceil(count * max_zero_rate_fraction)) if max_zero_rate_fraction < 1 else count
    labelled: list[QueryPair] = []
    attempts = 0
    while len(labelled) < count and attempts < 40:
        attempts += 1
        remaining = count - len(labelled)
        for first, second in generator.generate_pairs(remaining):
            rate = oracle.containment_rate(first, second)
            if rate == 0.0:
                if zero_budget <= 0:
                    continue
                zero_budget -= 1
            labelled.append(QueryPair(first=first, second=second, containment_rate=rate))
            if len(labelled) >= count:
                break
    return labelled


def build_pair_workload(
    database: Database,
    spec: WorkloadSpec,
    oracle: TrueCardinalityOracle | None = None,
) -> PairWorkload:
    """Build a pair workload following ``spec``'s per-join-count distribution."""
    oracle = oracle or TrueCardinalityOracle(database)
    all_pairs: list[QueryPair] = []
    for offset, (num_joins, count) in enumerate(sorted(spec.distribution.items())):
        if count <= 0:
            continue
        generator = QueryGenerator(
            database,
            GeneratorConfig(
                max_joins=max(num_joins, 1), min_joins=num_joins, seed=spec.seed + 1000 * offset
            ),
        )
        raw_pairs = generator.generate_pairs(count, num_joins=num_joins)
        all_pairs.extend(label_pairs(database, raw_pairs, oracle=oracle))
    return PairWorkload(name=spec.name, pairs=tuple(all_pairs))


def build_cnt_test1(
    database: Database,
    scale: float = 1.0,
    seed: int = 11,
    oracle: TrueCardinalityOracle | None = None,
) -> PairWorkload:
    """The ``cnt_test1`` workload: pairs with 0-2 joins (Section 4.2)."""
    spec = WorkloadSpec("cnt_test1", CNT_TEST1_DISTRIBUTION, seed=seed).scaled(scale)
    return build_pair_workload(database, spec, oracle=oracle)


def build_cnt_test2(
    database: Database,
    scale: float = 1.0,
    seed: int = 13,
    oracle: TrueCardinalityOracle | None = None,
) -> PairWorkload:
    """The ``cnt_test2`` workload: pairs with 0-5 joins (Section 4.2)."""
    spec = WorkloadSpec("cnt_test2", CNT_TEST2_DISTRIBUTION, seed=seed).scaled(scale)
    return build_pair_workload(database, spec, oracle=oracle)


# --------------------------------------------------------------------------- #
# query (cardinality) workloads


def build_query_workload(
    database: Database,
    spec: WorkloadSpec,
    oracle: TrueCardinalityOracle | None = None,
    max_empty_fraction: float = 0.2,
) -> Workload:
    """Build a cardinality workload following ``spec``'s distribution.

    Cardinality workloads run only the first two steps of the generator
    (Section 6): initial queries plus similar variants, no pairing step.

    Args:
        database: the database queries are labelled against.
        spec: per-join-count sizes and seed.
        oracle: shared true-cardinality oracle (a fresh one is built if omitted).
        max_empty_fraction: cap on the fraction of empty-result queries per
            join count.  At laptop scale, conjunctive queries over the small
            synthetic database are empty far more often than over the full
            IMDb, which would make every estimator look alike; excess empty
            queries are resampled.
    """
    oracle = oracle or TrueCardinalityOracle(database)
    labelled: list[LabeledQuery] = []
    seen: set[Query] = set()
    for offset, (num_joins, count) in enumerate(sorted(spec.distribution.items())):
        if count <= 0:
            continue
        generator = QueryGenerator(
            database,
            GeneratorConfig(
                max_joins=max(num_joins, 1), min_joins=num_joins, seed=spec.seed + 1000 * offset
            ),
        )
        empty_budget = int(np.ceil(count * max_empty_fraction)) if max_empty_fraction < 1 else count
        collected = 0
        attempts = 0
        while collected < count and attempts < count * 80 + 200:
            attempts += 1
            base = generator.generate_query(num_joins=num_joins)
            candidates = [base] + generator.generate_similar_queries(base, count=1)
            for query in candidates:
                if collected >= count:
                    break
                if query in seen:
                    continue
                cardinality = oracle.cardinality(query)
                if cardinality == 0:
                    if empty_budget <= 0:
                        continue
                    empty_budget -= 1
                seen.add(query)
                labelled.append(LabeledQuery(query=query, cardinality=cardinality))
                collected += 1
    return Workload(name=spec.name, queries=tuple(labelled))


def build_crd_test1(
    database: Database,
    scale: float = 1.0,
    seed: int = 17,
    oracle: TrueCardinalityOracle | None = None,
) -> Workload:
    """The ``crd_test1`` workload: queries with 0-2 joins (Section 6.1)."""
    spec = WorkloadSpec("crd_test1", CRD_TEST1_DISTRIBUTION, seed=seed).scaled(scale)
    return build_query_workload(database, spec, oracle=oracle)


def build_crd_test2(
    database: Database,
    scale: float = 1.0,
    seed: int = 19,
    oracle: TrueCardinalityOracle | None = None,
) -> Workload:
    """The ``crd_test2`` workload: queries with 0-5 joins (Section 6.1)."""
    spec = WorkloadSpec("crd_test2", CRD_TEST2_DISTRIBUTION, seed=seed).scaled(scale)
    return build_query_workload(database, spec, oracle=oracle)


def build_scale_workload(
    database: Database,
    scale: float = 1.0,
    seed: int = 23,
    oracle: TrueCardinalityOracle | None = None,
    max_empty_fraction: float = 0.2,
) -> Workload:
    """The ``scale`` workload: queries from a different generator (Section 6.1)."""
    oracle = oracle or TrueCardinalityOracle(database)
    spec = WorkloadSpec("scale", SCALE_DISTRIBUTION, seed=seed).scaled(scale)
    labelled: list[LabeledQuery] = []
    seen: set[Query] = set()
    for offset, (num_joins, count) in enumerate(sorted(spec.distribution.items())):
        generator = ScaleWorkloadGenerator(
            database,
            ScaleGeneratorConfig(max_joins=max(num_joins, 1), seed=spec.seed + 1000 * offset),
        )
        empty_budget = int(np.ceil(count * max_empty_fraction)) if max_empty_fraction < 1 else count
        collected = 0
        attempts = 0
        while collected < count and attempts < count * 80 + 200:
            attempts += 1
            query = generator.generate_query(num_joins=num_joins)
            if query in seen:
                continue
            cardinality = oracle.cardinality(query)
            if cardinality == 0:
                if empty_budget <= 0:
                    continue
                empty_budget -= 1
            seen.add(query)
            labelled.append(LabeledQuery(query=query, cardinality=cardinality))
            collected += 1
    return Workload(name=spec.name, queries=tuple(labelled))


def build_queries_pool_queries(
    database: Database,
    count: int = 300,
    seed: int = 29,
    max_joins: int = MAX_SUPPORTED_JOINS,
    oracle: TrueCardinalityOracle | None = None,
    include_frames: bool = True,
    max_empty_fraction: float = 0.1,
) -> list[LabeledQuery]:
    """Build the synthetic queries-pool contents (Section 6.2).

    The pool is generated by the same generator as the training data (with a
    different seed), spread over all possible FROM clauses, and optionally
    seeded with the predicate-free "frame" query of every FROM clause so each
    incoming query has at least one match (Section 5.2).  Queries with empty
    results are mostly excluded (``max_empty_fraction``): they cannot
    contribute to any Cnt2Crd estimate, so a DBMS would not keep them.
    """
    oracle = oracle or TrueCardinalityOracle(database)
    generator = QueryGenerator(database, GeneratorConfig(max_joins=max_joins, seed=seed))
    queries: dict[Query, None] = {}
    if include_frames:
        # One predicate-free "SELECT * FROM <tables> WHERE <joins>" per FROM
        # clause guarantees every incoming query finds at least one pool match.
        for num_joins in range(0, max_joins + 1):
            for aliases, joins in generator.join_subsets(num_joins):
                tables = [_table_ref(database, alias) for alias in aliases]
                queries.setdefault(Query.create(tables, joins, ()), None)
    # Spread the remaining budget uniformly over join counts.
    per_join = max(1, (count - len(queries)) // (max_joins + 1) + 1)
    empty_budget = int(np.ceil(count * max_empty_fraction)) if max_empty_fraction < 1 else count
    for num_joins in range(0, max_joins + 1):
        produced = 0
        attempts = 0
        while produced < per_join and attempts < per_join * 60 + 60:
            attempts += 1
            query = generator.generate_query(num_joins=num_joins)
            if query in queries:
                continue
            if oracle.cardinality(query) == 0:
                if empty_budget <= 0:
                    continue
                empty_budget -= 1
            queries.setdefault(query, None)
            produced += 1
    return label_queries(database, list(queries.keys()), oracle=oracle)


def _table_ref(database: Database, alias: str):
    """Build a :class:`~repro.sql.query.TableRef` for a schema alias."""
    from repro.sql.query import TableRef

    return TableRef(database.schema.table_by_alias(alias).name, alias)
