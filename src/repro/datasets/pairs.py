"""Labelled query pairs and labelled queries.

The CRN model trains on ``(Q1, Q2, Q1 ⊂% Q2)`` triples; the MSCN baseline and
the cardinality evaluation train/evaluate on ``(Q, |Q|)`` pairs.  Both labels
come from exact execution on the (synthetic) database via the
:class:`~repro.db.intersection.TrueCardinalityOracle`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.db.database import Database
from repro.db.intersection import TrueCardinalityOracle
from repro.sql.intersection import intersect_queries
from repro.sql.query import Query


@dataclass(frozen=True)
class QueryPair:
    """A pair of queries with its true containment rate.

    Attributes:
        first: the contained-side query (``Q1``).
        second: the containing-side query (``Q2``).
        containment_rate: the true rate ``Q1 ⊂% Q2`` as a fraction in [0, 1].
    """

    first: Query
    second: Query
    containment_rate: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.containment_rate <= 1.0 + 1e-9:
            raise ValueError(f"containment rate must lie in [0, 1], got {self.containment_rate}")

    @property
    def num_joins(self) -> int:
        """Number of joins of the pair (both queries share a FROM clause)."""
        return max(self.first.num_joins, self.second.num_joins)


@dataclass(frozen=True)
class LabeledQuery:
    """A query with its true result cardinality."""

    query: Query
    cardinality: int

    def __post_init__(self) -> None:
        if self.cardinality < 0:
            raise ValueError("cardinality must be non-negative")

    @property
    def num_joins(self) -> int:
        """Number of join clauses in the query."""
        return self.query.num_joins


def label_pairs(
    database: Database,
    pairs: Sequence[tuple[Query, Query]],
    oracle: TrueCardinalityOracle | None = None,
) -> list[QueryPair]:
    """Label ``pairs`` with their true containment rates on ``database``."""
    oracle = oracle or TrueCardinalityOracle(database)
    labelled: list[QueryPair] = []
    for first, second in pairs:
        rate = oracle.containment_rate(first, second)
        labelled.append(QueryPair(first=first, second=second, containment_rate=rate))
    return labelled


def label_queries(
    database: Database,
    queries: Iterable[Query],
    oracle: TrueCardinalityOracle | None = None,
) -> list[LabeledQuery]:
    """Label ``queries`` with their true cardinalities on ``database``."""
    oracle = oracle or TrueCardinalityOracle(database)
    return [LabeledQuery(query=query, cardinality=oracle.cardinality(query)) for query in queries]


def mscn_training_set(
    database: Database,
    pairs: Sequence[QueryPair],
    oracle: TrueCardinalityOracle | None = None,
) -> list[LabeledQuery]:
    """Derive the MSCN training set from the CRN pair training set (Section 4.1.2).

    For every pair ``(Q1, Q2)`` in the CRN training data, the MSCN model is
    trained on ``Q1 ∩ Q2`` and ``Q1``, each with its actual cardinality, so
    both models see the same information.  Duplicates are removed.
    """
    oracle = oracle or TrueCardinalityOracle(database)
    queries: dict[Query, None] = {}
    for pair in pairs:
        queries.setdefault(intersect_queries(pair.first, pair.second), None)
        queries.setdefault(pair.first, None)
    return label_queries(database, queries.keys(), oracle=oracle)
