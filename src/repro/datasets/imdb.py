"""Synthetic IMDb-like database on the JOB join schema.

The paper evaluates on the real IMDb database, chosen because it "contains
many correlations" and exhibits join-crossing correlations that defeat
independence-based estimators (Section 3.1.1, citing Leis et al.).  We cannot
ship IMDb, so this module generates a synthetic database with the same join
structure (the JOB star around ``title``) and the statistical properties that
make IMDb hard:

* **skewed value distributions** -- production years, company ids, keyword ids
  and role ids follow Zipf-like distributions;
* **join-crossing correlations** -- the *number* of related rows per movie and
  the *attribute values* of those rows depend on the movie's own attributes
  (e.g. recent movies have more cast entries and different company types), so
  predicates on different tables of a join are correlated;
* **foreign-key fan-out** -- every fact table references ``title.id`` with a
  per-movie fan-out drawn from a long-tailed distribution.

The generator is fully deterministic given its seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.database import Database
from repro.db.schema import (
    Column,
    ColumnRole,
    ColumnType,
    DatabaseSchema,
    ForeignKey,
    TableSchema,
)
from repro.db.table import Table

#: The JOB-style schema: a star around ``title`` with five fact tables.
IMDB_SCHEMA = DatabaseSchema(
    tables=(
        TableSchema(
            name="title",
            alias="t",
            columns=(
                Column("id", ColumnType.INTEGER, ColumnRole.PRIMARY_KEY),
                Column("kind_id", ColumnType.INTEGER),
                Column("production_year", ColumnType.INTEGER),
                Column("episode_nr", ColumnType.INTEGER),
                Column("season_nr", ColumnType.INTEGER),
            ),
        ),
        TableSchema(
            name="movie_companies",
            alias="mc",
            columns=(
                Column("id", ColumnType.INTEGER, ColumnRole.PRIMARY_KEY),
                Column("movie_id", ColumnType.INTEGER, ColumnRole.FOREIGN_KEY),
                Column("company_id", ColumnType.INTEGER),
                Column("company_type_id", ColumnType.INTEGER),
            ),
        ),
        TableSchema(
            name="cast_info",
            alias="ci",
            columns=(
                Column("id", ColumnType.INTEGER, ColumnRole.PRIMARY_KEY),
                Column("movie_id", ColumnType.INTEGER, ColumnRole.FOREIGN_KEY),
                Column("person_id", ColumnType.INTEGER),
                Column("role_id", ColumnType.INTEGER),
                Column("nr_order", ColumnType.INTEGER),
            ),
        ),
        TableSchema(
            name="movie_info",
            alias="mi",
            columns=(
                Column("id", ColumnType.INTEGER, ColumnRole.PRIMARY_KEY),
                Column("movie_id", ColumnType.INTEGER, ColumnRole.FOREIGN_KEY),
                Column("info_type_id", ColumnType.INTEGER),
                Column("info_value", ColumnType.INTEGER),
            ),
        ),
        TableSchema(
            name="movie_info_idx",
            alias="mi_idx",
            columns=(
                Column("id", ColumnType.INTEGER, ColumnRole.PRIMARY_KEY),
                Column("movie_id", ColumnType.INTEGER, ColumnRole.FOREIGN_KEY),
                Column("info_type_id", ColumnType.INTEGER),
                Column("rating", ColumnType.INTEGER),
            ),
        ),
        TableSchema(
            name="movie_keyword",
            alias="mk",
            columns=(
                Column("id", ColumnType.INTEGER, ColumnRole.PRIMARY_KEY),
                Column("movie_id", ColumnType.INTEGER, ColumnRole.FOREIGN_KEY),
                Column("keyword_id", ColumnType.INTEGER),
            ),
        ),
    ),
    foreign_keys=(
        ForeignKey("movie_companies", "movie_id", "title", "id"),
        ForeignKey("cast_info", "movie_id", "title", "id"),
        ForeignKey("movie_info", "movie_id", "title", "id"),
        ForeignKey("movie_info_idx", "movie_id", "title", "id"),
        ForeignKey("movie_keyword", "movie_id", "title", "id"),
    ),
)


@dataclass(frozen=True)
class SyntheticIMDbConfig:
    """Size and shape knobs for the synthetic database.

    The defaults produce a laptop-scale database (a few tens of thousands of
    rows in total) that still exhibits the correlations and skew that make the
    paper's experiments meaningful.
    """

    num_titles: int = 2000
    mean_companies_per_title: float = 2.0
    mean_cast_per_title: float = 4.0
    mean_info_per_title: float = 3.0
    mean_info_idx_per_title: float = 1.5
    mean_keywords_per_title: float = 2.5
    num_companies: int = 200
    num_persons: int = 1500
    num_keywords: int = 150
    num_info_types: int = 40
    min_year: int = 1880
    max_year: int = 2019
    seed: int = 7


def build_synthetic_imdb(config: SyntheticIMDbConfig | None = None) -> Database:
    """Generate the synthetic IMDb-like :class:`Database`.

    Args:
        config: size/shape configuration; defaults to
            :class:`SyntheticIMDbConfig`'s defaults.
    """
    config = config or SyntheticIMDbConfig()
    rng = np.random.default_rng(config.seed)

    title = _generate_title(config, rng)
    popularity = _generate_popularity(config, rng, title)
    tables = {
        "title": Table(IMDB_SCHEMA.table("title"), title),
        "movie_companies": Table(
            IMDB_SCHEMA.table("movie_companies"),
            _generate_movie_companies(config, rng, title, popularity),
        ),
        "cast_info": Table(
            IMDB_SCHEMA.table("cast_info"), _generate_cast_info(config, rng, title, popularity)
        ),
        "movie_info": Table(
            IMDB_SCHEMA.table("movie_info"), _generate_movie_info(config, rng, title, popularity)
        ),
        "movie_info_idx": Table(
            IMDB_SCHEMA.table("movie_info_idx"),
            _generate_movie_info_idx(config, rng, title, popularity),
        ),
        "movie_keyword": Table(
            IMDB_SCHEMA.table("movie_keyword"),
            _generate_movie_keyword(config, rng, title, popularity),
        ),
    }
    return Database(IMDB_SCHEMA, tables)


# --------------------------------------------------------------------------- #
# helpers


def _zipf_choice(rng: np.random.Generator, size: int, num_values: int, exponent: float = 1.3) -> np.ndarray:
    """Draw ``size`` values in ``[1, num_values]`` with a Zipf-like (power-law) skew."""
    ranks = np.arange(1, num_values + 1, dtype=np.float64)
    probabilities = ranks**-exponent
    probabilities /= probabilities.sum()
    return rng.choice(np.arange(1, num_values + 1), size=size, p=probabilities)


def _recentness(years: np.ndarray, config: SyntheticIMDbConfig) -> np.ndarray:
    """A [0, 1] score of how recent each movie is (drives the correlations)."""
    span = max(config.max_year - config.min_year, 1)
    return (years - config.min_year) / span


def _generate_title(config: SyntheticIMDbConfig, rng: np.random.Generator) -> dict[str, np.ndarray]:
    n = config.num_titles
    ids = np.arange(n, dtype=np.int64)

    # Production years are heavily skewed toward recent decades (as in IMDb).
    year_span = config.max_year - config.min_year
    skew = rng.beta(5.0, 1.5, size=n)
    years = (config.min_year + np.round(skew * year_span)).astype(np.int64)

    # kind_id: 1=movie, 2=tv series, 3=episode, ... with episodes concentrated
    # in recent years (a correlation between kind_id and production_year).
    recent = _recentness(years, config)
    kind_probabilities = np.stack(
        [
            0.55 - 0.25 * recent,  # movie
            0.15 * np.ones(n),  # tv series
            0.10 + 0.25 * recent,  # tv episode
            0.10 * np.ones(n),  # video
            0.10 * np.ones(n),  # other
        ],
        axis=1,
    )
    kind_probabilities = np.clip(kind_probabilities, 0.01, None)
    kind_probabilities /= kind_probabilities.sum(axis=1, keepdims=True)
    cumulative = np.cumsum(kind_probabilities, axis=1)
    draws = rng.random(n)[:, None]
    kind_ids = (draws > cumulative).sum(axis=1).astype(np.int64) + 1

    # Episode / season numbers are only meaningful for tv content.
    episode_nr = np.where(kind_ids == 3, rng.integers(1, 60, size=n), 0).astype(np.int64)
    season_nr = np.where(kind_ids == 3, rng.integers(1, 12, size=n), 0).astype(np.int64)

    return {
        "id": ids,
        "kind_id": kind_ids,
        "production_year": years,
        "episode_nr": episode_nr,
        "season_nr": season_nr,
    }


def _generate_popularity(
    config: SyntheticIMDbConfig, rng: np.random.Generator, title: dict[str, np.ndarray]
) -> np.ndarray:
    """A heavy-tailed per-title popularity factor shared by every fact table.

    In IMDb, a handful of blockbuster titles account for a large share of the
    company, cast, info and keyword rows *simultaneously*, and recent titles
    are covered far more densely than old ones.  Because the same factor
    multiplies every fact table's fan-out, the per-title fan-outs of different
    fact tables are strongly positively correlated -- the join-crossing
    correlation that makes independence-based join estimates degrade
    exponentially with the number of joins (Leis et al., the motivation for
    the paper's Section 6.5 experiment).
    """
    recent = _recentness(title["production_year"], config)
    log_popularity = rng.normal(loc=1.2 * recent, scale=0.7)
    popularity = np.exp(log_popularity)
    # Cap the tail so the product of fan-outs across all five fact tables stays
    # executable when labelling multi-join workloads exactly.
    popularity = np.minimum(popularity, 8.0 * popularity.mean())
    return popularity / popularity.mean()


def _fanout(
    rng: np.random.Generator,
    mean: float,
    recent: np.ndarray,
    popularity: np.ndarray,
    correlation_strength: float = 1.0,
) -> np.ndarray:
    """Per-movie fan-out counts driven by the shared popularity factor."""
    adjusted_mean = mean * popularity * (0.3 + correlation_strength * 1.4 * recent)
    return np.minimum(rng.poisson(adjusted_mean), 60)


def _generate_movie_companies(
    config: SyntheticIMDbConfig,
    rng: np.random.Generator,
    title: dict[str, np.ndarray],
    popularity: np.ndarray,
) -> dict[str, np.ndarray]:
    recent = _recentness(title["production_year"], config)
    counts = _fanout(rng, config.mean_companies_per_title, recent, popularity)
    movie_ids = np.repeat(title["id"], counts)
    total = len(movie_ids)
    movie_recent = np.repeat(recent, counts)

    # company_id is Zipf distributed, and the *active* slice of the company id
    # space drifts with the movie's era: old movies use the low ids, recent
    # movies the high ids.  A pair of predicates such as
    # ``t.production_year > 2000 AND mc.company_id < 20`` is therefore far more
    # selective than independence predicts.
    company_ids = _zipf_choice(rng, total, max(config.num_companies // 2, 2))
    shift = (movie_recent * 0.45 * config.num_companies).astype(np.int64)
    company_ids = np.minimum(company_ids + shift, config.num_companies)

    # company_type_id: 1 = production (almost all old movies), 2 = distribution
    # (almost all recent movies) -- a sharp join-crossing correlation.
    type_probability = np.clip(0.10 + 0.85 * movie_recent, 0.05, 0.95)
    company_type_ids = (rng.random(total) < type_probability).astype(np.int64) + 1

    return {
        "id": np.arange(total, dtype=np.int64),
        "movie_id": movie_ids.astype(np.int64),
        "company_id": company_ids.astype(np.int64),
        "company_type_id": company_type_ids,
    }


def _generate_cast_info(
    config: SyntheticIMDbConfig,
    rng: np.random.Generator,
    title: dict[str, np.ndarray],
    popularity: np.ndarray,
) -> dict[str, np.ndarray]:
    recent = _recentness(title["production_year"], config)
    counts = _fanout(rng, config.mean_cast_per_title, recent, popularity, correlation_strength=1.4)
    movie_ids = np.repeat(title["id"], counts)
    total = len(movie_ids)
    movie_recent = np.repeat(recent, counts)
    movie_kind = np.repeat(title["kind_id"], counts)

    # Person ids drift with the movie's era (actors are active for a bounded
    # window), so person-id ranges and production-year predicates correlate.
    person_ids = _zipf_choice(rng, total, max(config.num_persons // 3, 2), exponent=1.1)
    person_shift = (movie_recent * 0.5 * config.num_persons).astype(np.int64)
    person_ids = np.minimum(person_ids + person_shift, config.num_persons)

    # role_id 1..11; acting roles dominate, tv episodes skew strongly toward
    # roles 1/2, older movies toward directors/producers (roles 8/9).
    base_roles = _zipf_choice(rng, total, 11, exponent=1.2)
    older_mask = (movie_recent < 0.35) & (rng.random(total) < 0.6)
    base_roles = np.where(older_mask, rng.integers(8, 12, size=total), base_roles)
    episode_mask = (movie_kind == 3) & (rng.random(total) < 0.7)
    base_roles = np.where(episode_mask, rng.integers(1, 3, size=total), base_roles)

    # Cast lists grew over time: recent movies credit far more people, so
    # nr_order correlates with production year.
    nr_order = 1 + np.floor(
        rng.random(total) * (3 + 47 * movie_recent)
    ).astype(np.int64)

    return {
        "id": np.arange(total, dtype=np.int64),
        "movie_id": movie_ids.astype(np.int64),
        "person_id": person_ids.astype(np.int64),
        "role_id": base_roles.astype(np.int64),
        "nr_order": nr_order.astype(np.int64),
    }


def _generate_movie_info(
    config: SyntheticIMDbConfig,
    rng: np.random.Generator,
    title: dict[str, np.ndarray],
    popularity: np.ndarray,
) -> dict[str, np.ndarray]:
    recent = _recentness(title["production_year"], config)
    counts = _fanout(rng, config.mean_info_per_title, recent, popularity)
    movie_ids = np.repeat(title["id"], counts)
    total = len(movie_ids)
    movie_recent = np.repeat(recent, counts)

    # Info types are partitioned by era: recent movies carry the "high" info
    # types (streaming/online metadata), old movies the low ones.
    info_type_ids = _zipf_choice(rng, total, max(config.num_info_types // 2, 2), exponent=1.15)
    type_shift = (movie_recent * 0.45 * config.num_info_types).astype(np.int64)
    info_type_ids = np.minimum(info_type_ids + type_shift, config.num_info_types)
    # Info values scale with recency as well (e.g. vote-count buckets); the
    # domain is kept small enough that equality predicates remain satisfiable
    # at laptop scale.
    info_values = np.clip(
        np.round(rng.lognormal(mean=2.0 + 3.0 * movie_recent, sigma=0.7)), 1, 500
    ).astype(np.int64)

    return {
        "id": np.arange(total, dtype=np.int64),
        "movie_id": movie_ids.astype(np.int64),
        "info_type_id": info_type_ids.astype(np.int64),
        "info_value": info_values.astype(np.int64),
    }


def _generate_movie_info_idx(
    config: SyntheticIMDbConfig,
    rng: np.random.Generator,
    title: dict[str, np.ndarray],
    popularity: np.ndarray,
) -> dict[str, np.ndarray]:
    recent = _recentness(title["production_year"], config)
    counts = _fanout(rng, config.mean_info_idx_per_title, recent, popularity, correlation_strength=0.8)
    movie_ids = np.repeat(title["id"], counts)
    total = len(movie_ids)
    movie_recent = np.repeat(recent, counts)

    info_type_ids = rng.integers(99, 114, size=total)
    # Ratings correlate strongly with recency: recent movies have lower average
    # ratings (many low-rated episodes), old surviving classics score high.
    ratings = np.clip(
        np.round(rng.normal(88 - 45 * movie_recent, 7)),
        10,
        100,
    )

    return {
        "id": np.arange(total, dtype=np.int64),
        "movie_id": movie_ids.astype(np.int64),
        "info_type_id": info_type_ids.astype(np.int64),
        "rating": ratings.astype(np.int64),
    }


def _generate_movie_keyword(
    config: SyntheticIMDbConfig,
    rng: np.random.Generator,
    title: dict[str, np.ndarray],
    popularity: np.ndarray,
) -> dict[str, np.ndarray]:
    recent = _recentness(title["production_year"], config)
    counts = _fanout(rng, config.mean_keywords_per_title, recent, popularity, correlation_strength=1.2)
    movie_ids = np.repeat(title["id"], counts)
    total = len(movie_ids)
    movie_kind = np.repeat(title["kind_id"], counts)

    movie_recent = np.repeat(recent, counts)
    # Keyword vocabulary drifts with the era, and tv episodes reuse a small
    # pool of keywords almost exclusively.
    keyword_ids = _zipf_choice(rng, total, max(config.num_keywords // 2, 2), exponent=1.25)
    keyword_shift = (movie_recent * 0.4 * config.num_keywords).astype(np.int64)
    keyword_ids = np.minimum(keyword_ids + keyword_shift, config.num_keywords)
    episode_mask = (movie_kind == 3) & (rng.random(total) < 0.75)
    keyword_ids = np.where(episode_mask, rng.integers(1, 20, size=total), keyword_ids)

    return {
        "id": np.arange(total, dtype=np.int64),
        "movie_id": movie_ids.astype(np.int64),
        "keyword_id": keyword_ids.astype(np.int64),
    }
