"""Synthetic IMDb-like data and the paper's workload generators.

The paper trains and evaluates on the real IMDb database (Section 3.1.1),
which is not redistributable here; :mod:`repro.datasets.imdb` builds a
synthetic substitute on the JOB join schema with deliberately injected
join-crossing correlations and skew (see DESIGN.md for the substitution
rationale).  The remaining modules implement the paper's query generator
(Section 3.1.2), pair labelling, and the evaluation workloads (Sections 4.2
and 6.1).
"""

from repro.datasets.generator import GeneratorConfig, QueryGenerator
from repro.datasets.imdb import IMDB_SCHEMA, SyntheticIMDbConfig, build_synthetic_imdb
from repro.datasets.pairs import (
    LabeledQuery,
    QueryPair,
    label_pairs,
    label_queries,
    mscn_training_set,
)
from repro.datasets.scale import ScaleGeneratorConfig, ScaleWorkloadGenerator
from repro.datasets.workloads import (
    CNT_TEST1_DISTRIBUTION,
    CNT_TEST2_DISTRIBUTION,
    CRD_TEST1_DISTRIBUTION,
    CRD_TEST2_DISTRIBUTION,
    SCALE_DISTRIBUTION,
    PairWorkload,
    Workload,
    WorkloadSpec,
    build_cnt_test1,
    build_cnt_test2,
    build_crd_test1,
    build_crd_test2,
    build_pair_workload,
    build_queries_pool_queries,
    build_query_workload,
    build_scale_workload,
    build_training_pairs,
    join_distribution,
)

__all__ = [
    "CNT_TEST1_DISTRIBUTION",
    "CNT_TEST2_DISTRIBUTION",
    "CRD_TEST1_DISTRIBUTION",
    "CRD_TEST2_DISTRIBUTION",
    "GeneratorConfig",
    "IMDB_SCHEMA",
    "LabeledQuery",
    "PairWorkload",
    "QueryGenerator",
    "QueryPair",
    "SCALE_DISTRIBUTION",
    "ScaleGeneratorConfig",
    "ScaleWorkloadGenerator",
    "SyntheticIMDbConfig",
    "Workload",
    "WorkloadSpec",
    "build_cnt_test1",
    "build_cnt_test2",
    "build_crd_test1",
    "build_crd_test2",
    "build_pair_workload",
    "build_queries_pool_queries",
    "build_query_workload",
    "build_scale_workload",
    "build_synthetic_imdb",
    "build_training_pairs",
    "join_distribution",
    "label_pairs",
    "label_queries",
    "mscn_training_set",
]
