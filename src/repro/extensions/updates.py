"""Handling database updates (Section 9, "Database updates").

The paper sketches two approaches for keeping CRN usable when the database
changes: (1) fully re-train on a freshly generated training set, and (2)
incrementally train the existing model on new samples.  Both are implemented
here on top of the standard training loop; the incremental path reuses the
trained weights and continues optimisation on pairs labelled against the
updated snapshot.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Callable, Sequence

import numpy as np

from repro.core.crn import CRNConfig, CRNModel
from repro.core.featurization import QueryFeaturizer
from repro.core.queries_pool import QueriesPool
from repro.core.training import (
    EpochStats,
    TrainingConfig,
    TrainingResult,
    _FeaturizedPairs,
    evaluate_mean_q_error,
    train_crn,
)
from repro.datasets.pairs import QueryPair, label_pairs
from repro.datasets.workloads import build_training_pairs
from repro.db.database import Database
from repro.db.intersection import TrueCardinalityOracle
from repro.nn.data import BatchIterator
from repro.nn.loss import get_loss
from repro.nn.optim import Adam


def retrain_from_scratch(
    database: Database,
    training_pairs: int = 2000,
    crn_config: CRNConfig | None = None,
    training_config: TrainingConfig | None = None,
    seed: int = 1,
) -> TrainingResult:
    """Approach (1): regenerate the training set on the new snapshot and re-train.

    This is the safe path after schema changes, because the featurizer layout
    is rebuilt from the updated schema.
    """
    featurizer = QueryFeaturizer(database)
    pairs = build_training_pairs(database, count=training_pairs, seed=seed)
    return train_crn(featurizer, pairs, crn_config=crn_config, training_config=training_config)


def incremental_update(
    result: TrainingResult,
    updated_database: Database,
    new_pairs: Sequence[QueryPair] | Sequence[tuple],
    training_config: TrainingConfig | None = None,
    epochs: int = 5,
    on_epoch=None,
    should_stop=None,
) -> TrainingResult:
    """Approach (2): continue training the existing model on new labelled pairs.

    Args:
        result: the previous training result (its model weights are reused).
        updated_database: the updated snapshot; it must keep the same schema
            (same featurizer layout) -- schema changes require
            :func:`retrain_from_scratch`.
        new_pairs: either :class:`QueryPair` objects already labelled against
            the updated snapshot, or raw ``(Q1, Q2)`` tuples to be labelled
            here.
        training_config: optimisation settings; defaults are used when omitted.
        epochs: number of incremental epochs.
        on_epoch: optional callback receiving each completed epoch's
            :class:`~repro.core.training.EpochStats` (progress reporting for
            long retrains; see :class:`RetrainSession`).
        should_stop: optional zero-argument callable polled between epochs;
            returning True stops the loop cleanly after the current epoch
            (the returned result holds the completed epochs' weights and can
            be resumed by a further call).

    Returns:
        A new :class:`TrainingResult` whose model starts from the previous
        weights and has been fine-tuned on the new pairs.
    """
    if not new_pairs:
        raise ValueError("incremental training needs at least one new pair")
    new_featurizer = QueryFeaturizer(updated_database)
    if new_featurizer.vector_size != result.featurizer.vector_size:
        raise ValueError(
            "the updated database has a different schema layout; incremental training "
            "cannot re-map learned weights -- use retrain_from_scratch instead"
        )
    if not isinstance(new_pairs[0], QueryPair):
        oracle = TrueCardinalityOracle(updated_database)
        new_pairs = label_pairs(updated_database, list(new_pairs), oracle=oracle)

    config = replace(
        training_config or TrainingConfig(), epochs=epochs, early_stopping_patience=0
    )
    model = CRNModel(new_featurizer.vector_size, result.model.config)
    model.load_state_dict(result.model.state_dict())
    warm = TrainingResult(model=model, featurizer=new_featurizer)
    return _continue_training(
        warm,
        new_featurizer,
        list(new_pairs),
        config,
        on_epoch=on_epoch,
        should_stop=should_stop,
    )


def _continue_training(
    warm_result: TrainingResult,
    featurizer: QueryFeaturizer,
    pairs: list[QueryPair],
    config: TrainingConfig,
    on_epoch=None,
    should_stop=None,
) -> TrainingResult:
    """Run the optimisation loop starting from ``warm_result``'s current weights."""
    model = warm_result.model
    data = _FeaturizedPairs(featurizer, pairs)
    optimizer = Adam(model.parameters(), learning_rate=config.learning_rate)
    loss_function = get_loss(config.loss)
    iterator = BatchIterator(len(data), config.batch_size, seed=config.seed)
    first_epoch = warm_result.epochs_run + 1
    for epoch in range(first_epoch, first_epoch + config.epochs):
        start = time.perf_counter()
        losses: list[float] = []
        for indices in iterator.epoch():
            first, first_mask, second, second_mask, targets = data.batch(indices)
            predictions = model(first, first_mask, second, second_mask)
            if config.loss in ("q_error", "log_q_error"):
                loss = loss_function(predictions, targets, epsilon=config.loss_epsilon)
            else:
                loss = loss_function(predictions, targets)
            model.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        validation = evaluate_mean_q_error(model, data, epsilon=config.loss_epsilon)
        stats = EpochStats(
            epoch=epoch,
            train_loss=float(np.mean(losses)),
            validation_mean_q_error=validation,
            seconds=time.perf_counter() - start,
        )
        warm_result.history.append(stats)
        if validation < warm_result.best_validation_q_error:
            warm_result.best_validation_q_error = validation
            warm_result.best_epoch = epoch
        if on_epoch is not None:
            on_epoch(stats)
        if should_stop is not None and should_stop():
            break
    return warm_result


@dataclass(frozen=True)
class RetrainProgress:
    """One progress report from a :class:`RetrainSession` (emitted per epoch).

    Attributes:
        mode: ``"incremental"`` (fine-tuning the existing weights) or
            ``"full"`` (fresh weights on the updated snapshot).
        epochs_completed: epochs finished so far, cumulative across resumes.
        target_epochs: the cumulative epoch count the current run aims for.
        train_loss: the completed epoch's mean training loss.
        validation_q_error: the completed epoch's geometric-mean q-error.
        seconds: the completed epoch's wall-clock duration.
    """

    mode: str
    epochs_completed: int
    target_epochs: int
    train_loss: float
    validation_q_error: float
    seconds: float

    @property
    def fraction(self) -> float:
        """Completed fraction of the current run's epoch budget."""
        if self.target_epochs <= 0:
            return 0.0
        return min(self.epochs_completed / self.target_epochs, 1.0)


class RetrainSession:
    """A resumable, progress-reporting wrapper around the retraining entrypoints.

    The plain functions above run to completion in one opaque call — fine for
    offline experiments, unusable inside a live serving system where a
    retrain runs on a background thread while the dispatcher keeps serving
    (:mod:`repro.serving.lifecycle`).  A session adds the two properties a
    long-running retrain needs:

    * **progress**: ``on_progress`` receives a :class:`RetrainProgress` after
      every epoch, so the lifecycle can report how far along a retrain is;
    * **resumability**: :meth:`cancel` stops the loop cleanly after the
      current epoch, keeping the completed epochs' weights; a later
      :meth:`run` continues from them instead of starting over.  (The Adam
      moments are rebuilt on resume — only the weights persist, which is the
      same contract :func:`incremental_update` offers between calls.)

    ``mode`` follows the paper's two update approaches: with a
    ``base_result`` the session fine-tunes the existing model on pairs
    labelled against the updated snapshot (approach 2); without one it
    trains fresh weights on a freshly generated training set (approach 1).
    Full-mode sessions train for the requested epoch budget without early
    stopping — the lifecycle's accept gate, not a validation split, decides
    whether the candidate ships.

    Args:
        updated_database: the snapshot to label pairs against and featurize
            from.
        base_result: the previous training result to fine-tune (None for a
            full retrain).  Schema changes require full mode, exactly as with
            :func:`incremental_update`.
        pairs: labelled :class:`~repro.datasets.pairs.QueryPair` objects or
            raw ``(Q1, Q2)`` tuples (labelled here); generated from the
            snapshot when omitted.
        training_pairs: how many pairs to generate when ``pairs`` is omitted.
        crn_config: architecture for full mode (ignored in incremental mode —
            the base model's architecture is kept).
        training_config: optimisation settings; defaults when omitted.
        seed: pair-generation seed.
        on_progress: per-epoch :class:`RetrainProgress` callback.
    """

    def __init__(
        self,
        updated_database: Database,
        base_result: TrainingResult | None = None,
        pairs: Sequence[QueryPair] | Sequence[tuple] | None = None,
        training_pairs: int = 200,
        crn_config: CRNConfig | None = None,
        training_config: TrainingConfig | None = None,
        seed: int = 1,
        on_progress: Callable[[RetrainProgress], None] | None = None,
    ) -> None:
        if training_pairs <= 0:
            raise ValueError("training_pairs must be positive")
        self.database = updated_database
        self.mode = "incremental" if base_result is not None else "full"
        self.on_progress = on_progress
        self._base_result = base_result
        self._supplied_pairs = pairs
        self._training_pairs = training_pairs
        self._crn_config = crn_config
        self._training_config = training_config or TrainingConfig()
        self._seed = seed
        self._cancel = threading.Event()
        self._last_run_cancelled = False
        self._target_epochs = 0
        self._result: TrainingResult | None = None
        self._data: tuple[QueryFeaturizer, list[QueryPair]] | None = None

    # ------------------------------------------------------------------ #
    # state

    @property
    def result(self) -> TrainingResult | None:
        """The training state so far (None before the first :meth:`run`)."""
        return self._result

    @property
    def epochs_completed(self) -> int:
        """Epochs finished so far, across all runs of this session."""
        return self._result.epochs_run if self._result is not None else 0

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` cut the last :meth:`run` short."""
        return self._last_run_cancelled

    def cancel(self) -> None:
        """Ask a running (or future) :meth:`run` to stop after the current epoch.

        Safe to call from any thread — this is how the lifecycle pauses an
        in-flight retrain without losing the completed epochs.  Each cancel
        is consumed by exactly one :meth:`run`: a cancel issued mid-run stops
        that run, a cancel issued between runs makes the *next* run return
        immediately (zero new epochs) — either way the run after that
        resumes training from the completed weights.
        """
        self._cancel.set()

    # ------------------------------------------------------------------ #
    # training

    def run(self, epochs: int = 5) -> TrainingResult:
        """Train (or continue training) for up to ``epochs`` more epochs.

        Returns the session's :class:`TrainingResult` after the budget is
        exhausted or :meth:`cancel` intervened; call again to resume.
        """
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        if self._cancel.is_set():
            # A cancel issued before this run: honor it instead of silently
            # training the full budget (the flag is consumed here).
            self._cancel.clear()
            self._last_run_cancelled = True
            self._materialize()
            return self._result
        self._last_run_cancelled = False
        featurizer, pairs = self._materialize()
        self._target_epochs = self.epochs_completed + epochs
        config = replace(
            self._training_config, epochs=epochs, early_stopping_patience=0
        )
        result = _continue_training(
            self._result,
            featurizer,
            pairs,
            config,
            on_epoch=self._report,
            should_stop=self._cancel.is_set,
        )
        if self._cancel.is_set():
            # The mid-run cancel is consumed: the next run resumes training.
            self._cancel.clear()
            self._last_run_cancelled = True
        return result

    def _materialize(self) -> tuple[QueryFeaturizer, list[QueryPair]]:
        """Build the featurizer, labelled pairs, and starting weights once."""
        if self._data is not None:
            return self._data
        featurizer = QueryFeaturizer(self.database)
        pairs = self._supplied_pairs
        if pairs is None:
            pairs = build_training_pairs(
                self.database, count=self._training_pairs, seed=self._seed
            )
        pairs = list(pairs)
        if not pairs:
            raise ValueError("retraining needs at least one pair")
        if not isinstance(pairs[0], QueryPair):
            oracle = TrueCardinalityOracle(self.database)
            pairs = label_pairs(self.database, pairs, oracle=oracle)
        if self._base_result is not None:
            if featurizer.vector_size != self._base_result.featurizer.vector_size:
                raise ValueError(
                    "the updated database has a different schema layout; an "
                    "incremental session cannot re-map learned weights -- start a "
                    "full session (base_result=None) instead"
                )
            model = CRNModel(featurizer.vector_size, self._base_result.model.config)
            model.load_state_dict(self._base_result.model.state_dict())
        else:
            model = CRNModel(featurizer.vector_size, self._crn_config or CRNConfig())
        self._result = TrainingResult(model=model, featurizer=featurizer)
        self._data = (featurizer, pairs)
        return self._data

    def _report(self, stats: EpochStats) -> None:
        if self.on_progress is None:
            return
        self.on_progress(
            RetrainProgress(
                mode=self.mode,
                epochs_completed=stats.epoch,
                target_epochs=self._target_epochs,
                train_loss=stats.train_loss,
                validation_q_error=stats.validation_mean_q_error,
                seconds=stats.seconds,
            )
        )


def refresh_queries_pool(pool: QueriesPool, updated_database: Database) -> QueriesPool:
    """Re-execute every pool query on the updated snapshot to refresh cardinalities.

    The queries pool stores actual cardinalities, which become stale when the
    data changes; the refreshed pool keeps the same queries with up-to-date
    counts.
    """
    oracle = TrueCardinalityOracle(updated_database)
    refreshed = QueriesPool()
    for entry in pool:
        refreshed.add(entry.query, oracle.cardinality(entry.query))
    return refreshed
