"""Handling database updates (Section 9, "Database updates").

The paper sketches two approaches for keeping CRN usable when the database
changes: (1) fully re-train on a freshly generated training set, and (2)
incrementally train the existing model on new samples.  Both are implemented
here on top of the standard training loop; the incremental path reuses the
trained weights and continues optimisation on pairs labelled against the
updated snapshot.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Sequence

import numpy as np

from repro.core.crn import CRNConfig, CRNModel
from repro.core.featurization import QueryFeaturizer
from repro.core.queries_pool import QueriesPool
from repro.core.training import (
    EpochStats,
    TrainingConfig,
    TrainingResult,
    _FeaturizedPairs,
    evaluate_mean_q_error,
    train_crn,
)
from repro.datasets.pairs import QueryPair, label_pairs
from repro.datasets.workloads import build_training_pairs
from repro.db.database import Database
from repro.db.intersection import TrueCardinalityOracle
from repro.nn.data import BatchIterator
from repro.nn.loss import get_loss
from repro.nn.optim import Adam


def retrain_from_scratch(
    database: Database,
    training_pairs: int = 2000,
    crn_config: CRNConfig | None = None,
    training_config: TrainingConfig | None = None,
    seed: int = 1,
) -> TrainingResult:
    """Approach (1): regenerate the training set on the new snapshot and re-train.

    This is the safe path after schema changes, because the featurizer layout
    is rebuilt from the updated schema.
    """
    featurizer = QueryFeaturizer(database)
    pairs = build_training_pairs(database, count=training_pairs, seed=seed)
    return train_crn(featurizer, pairs, crn_config=crn_config, training_config=training_config)


def incremental_update(
    result: TrainingResult,
    updated_database: Database,
    new_pairs: Sequence[QueryPair] | Sequence[tuple],
    training_config: TrainingConfig | None = None,
    epochs: int = 5,
) -> TrainingResult:
    """Approach (2): continue training the existing model on new labelled pairs.

    Args:
        result: the previous training result (its model weights are reused).
        updated_database: the updated snapshot; it must keep the same schema
            (same featurizer layout) -- schema changes require
            :func:`retrain_from_scratch`.
        new_pairs: either :class:`QueryPair` objects already labelled against
            the updated snapshot, or raw ``(Q1, Q2)`` tuples to be labelled
            here.
        training_config: optimisation settings; defaults are used when omitted.
        epochs: number of incremental epochs.

    Returns:
        A new :class:`TrainingResult` whose model starts from the previous
        weights and has been fine-tuned on the new pairs.
    """
    if not new_pairs:
        raise ValueError("incremental training needs at least one new pair")
    new_featurizer = QueryFeaturizer(updated_database)
    if new_featurizer.vector_size != result.featurizer.vector_size:
        raise ValueError(
            "the updated database has a different schema layout; incremental training "
            "cannot re-map learned weights -- use retrain_from_scratch instead"
        )
    if not isinstance(new_pairs[0], QueryPair):
        oracle = TrueCardinalityOracle(updated_database)
        new_pairs = label_pairs(updated_database, list(new_pairs), oracle=oracle)

    config = replace(
        training_config or TrainingConfig(), epochs=epochs, early_stopping_patience=0
    )
    model = CRNModel(new_featurizer.vector_size, result.model.config)
    model.load_state_dict(result.model.state_dict())
    warm = TrainingResult(model=model, featurizer=new_featurizer)
    return _continue_training(warm, new_featurizer, list(new_pairs), config)


def _continue_training(
    warm_result: TrainingResult,
    featurizer: QueryFeaturizer,
    pairs: list[QueryPair],
    config: TrainingConfig,
) -> TrainingResult:
    """Run the optimisation loop starting from ``warm_result``'s current weights."""
    model = warm_result.model
    data = _FeaturizedPairs(featurizer, pairs)
    optimizer = Adam(model.parameters(), learning_rate=config.learning_rate)
    loss_function = get_loss(config.loss)
    iterator = BatchIterator(len(data), config.batch_size, seed=config.seed)
    for epoch in range(1, config.epochs + 1):
        start = time.perf_counter()
        losses: list[float] = []
        for indices in iterator.epoch():
            first, first_mask, second, second_mask, targets = data.batch(indices)
            predictions = model(first, first_mask, second, second_mask)
            if config.loss in ("q_error", "log_q_error"):
                loss = loss_function(predictions, targets, epsilon=config.loss_epsilon)
            else:
                loss = loss_function(predictions, targets)
            model.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        validation = evaluate_mean_q_error(model, data, epsilon=config.loss_epsilon)
        warm_result.history.append(
            EpochStats(
                epoch=epoch,
                train_loss=float(np.mean(losses)),
                validation_mean_q_error=validation,
                seconds=time.perf_counter() - start,
            )
        )
        if validation < warm_result.best_validation_q_error:
            warm_result.best_validation_q_error = validation
            warm_result.best_epoch = epoch
    return warm_result


def refresh_queries_pool(pool: QueriesPool, updated_database: Database) -> QueriesPool:
    """Re-execute every pool query on the updated snapshot to refresh cardinalities.

    The queries pool stores actual cardinalities, which become stale when the
    data changes; the refreshed pool keeps the same queries with up-to-date
    counts.
    """
    oracle = TrueCardinalityOracle(updated_database)
    refreshed = QueriesPool()
    for entry in pool:
        refreshed.add(entry.query, oracle.cardinality(entry.query))
    return refreshed
