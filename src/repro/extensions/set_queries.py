"""Set-operation queries: EXCEPT, UNION and OR (Section 9, "future work").

The paper sketches how the CRN-based machinery extends beyond plain
conjunctive queries through identities on intersection cardinalities, e.g.::

    |Q1 EXCEPT Q2| = |Q1| - |Q1 ∩ Q2|
    |Q1 UNION  Q2| = |Q1| + |Q2|            (bag semantics, as in the paper)
    |Q1 OR     Q2| = |Q1 UNION Q2| - |Q1 ∩ Q2|

and the corresponding containment-rate identities obtained by applying the
same decomposition to the numerator ``|compound ∩ Q3|`` and renormalizing by
the compound's own cardinality.  This module implements those identities on
top of any cardinality / containment estimator pair, recursively, so compound
operands can themselves be compound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.core.estimators import CardinalityEstimator, ContainmentEstimator
from repro.sql.intersection import intersect_queries, same_from_clause
from repro.sql.query import Query


@dataclass(frozen=True)
class UnionQuery:
    """``first UNION ALL second`` over identical FROM clauses."""

    first: "CompoundQuery"
    second: "CompoundQuery"

    def __post_init__(self) -> None:
        _check_same_from(self.first, self.second, "UNION")


@dataclass(frozen=True)
class ExceptQuery:
    """``first EXCEPT second`` over identical FROM clauses."""

    first: "CompoundQuery"
    second: "CompoundQuery"

    def __post_init__(self) -> None:
        _check_same_from(self.first, self.second, "EXCEPT")


@dataclass(frozen=True)
class OrQuery:
    """``first OR second``: the WHERE clauses are disjoined (set semantics)."""

    first: "CompoundQuery"
    second: "CompoundQuery"

    def __post_init__(self) -> None:
        _check_same_from(self.first, self.second, "OR")


#: A compound query: a plain conjunctive query or a set operation over them.
CompoundQuery = Union[Query, UnionQuery, ExceptQuery, OrQuery]


def leading_query(compound: CompoundQuery) -> Query:
    """The left-most plain query of a compound expression (defines the FROM clause)."""
    while not isinstance(compound, Query):
        compound = compound.first
    return compound


def _check_same_from(first: CompoundQuery, second: CompoundQuery, operation: str) -> None:
    if not same_from_clause(leading_query(first), leading_query(second)):
        raise ValueError(f"{operation} requires both operands to share the same FROM clause")


class CompoundCardinalityEstimator(CardinalityEstimator):
    """Estimates cardinalities of compound queries via the Section 9 identities.

    Args:
        base: any cardinality estimator for plain conjunctive queries.
    """

    def __init__(self, base: CardinalityEstimator) -> None:
        self.base = base
        self.name = f"Compound({base.name})"

    def estimate_cardinality(self, query: CompoundQuery) -> float:  # type: ignore[override]
        if isinstance(query, Query):
            return self.base.estimate_cardinality(query)
        if isinstance(query, UnionQuery):
            return self.estimate_cardinality(query.first) + self.estimate_cardinality(query.second)
        if isinstance(query, ExceptQuery):
            difference = self.estimate_cardinality(query.first) - self._intersection_cardinality(
                query.first, query.second
            )
            return max(difference, 0.0)
        if isinstance(query, OrQuery):
            union = self.estimate_cardinality(UnionQuery(query.first, query.second))
            return max(union - self._intersection_cardinality(query.first, query.second), 0.0)
        raise TypeError(f"unsupported compound query type: {type(query).__name__}")

    def _intersection_cardinality(self, first: CompoundQuery, second: CompoundQuery) -> float:
        """``|first ∩ second|`` where both operands may be compound.

        Plain-query intersections go straight to the base estimator on the
        conjoined query; compound operands are decomposed recursively with the
        same identities applied to the intersection.
        """
        if isinstance(first, Query) and isinstance(second, Query):
            return self.base.estimate_cardinality(intersect_queries(first, second))
        if isinstance(first, UnionQuery):
            return self._intersection_cardinality(first.first, second) + self._intersection_cardinality(
                first.second, second
            )
        if isinstance(first, ExceptQuery):
            both = self._intersection_cardinality(first.first, second)
            removed = self._intersection_cardinality(
                first.first, _conjoin(first.second, second)
            )
            return max(both - removed, 0.0)
        if isinstance(first, OrQuery):
            union = UnionQuery(first.first, first.second)
            overlap = self._intersection_cardinality(_conjoin(first.first, first.second), second)
            return max(self._intersection_cardinality(union, second) - overlap, 0.0)
        # ``first`` is plain but ``second`` is compound: swap (intersection commutes).
        return self._intersection_cardinality(second, first)


def _conjoin(first: CompoundQuery, second: CompoundQuery) -> CompoundQuery:
    """Conjoin two operands when both are plain; otherwise keep the structure."""
    if isinstance(first, Query) and isinstance(second, Query):
        return intersect_queries(first, second)
    if isinstance(first, Query):
        return _conjoin(second, first)
    if isinstance(first, UnionQuery):
        return UnionQuery(_conjoin(first.first, second), _conjoin(first.second, second))
    if isinstance(first, ExceptQuery):
        return ExceptQuery(_conjoin(first.first, second), first.second)
    if isinstance(first, OrQuery):
        return OrQuery(_conjoin(first.first, second), _conjoin(first.second, second))
    raise TypeError(f"unsupported compound query type: {type(first).__name__}")


class CompoundContainmentEstimator(ContainmentEstimator):
    """Estimates ``compound ⊂% Q`` and ``Q ⊂% compound`` rates.

    The rate is decomposed into intersection cardinalities::

        compound ⊂% Q  =  |compound ∩ Q| / |compound|

    where both the numerator and the denominator are estimated with a
    :class:`CompoundCardinalityEstimator`, which in turn can be built from the
    Crd2Cnt transformation of any base model.
    """

    def __init__(self, base: CardinalityEstimator) -> None:
        self.compound = CompoundCardinalityEstimator(base)
        self.name = f"CompoundContainment({base.name})"

    def estimate_containment(self, first: CompoundQuery, second: CompoundQuery) -> float:  # type: ignore[override]
        denominator = self.compound.estimate_cardinality(first)
        if denominator <= 0:
            return 0.0
        numerator = self.compound._intersection_cardinality(first, second)
        return float(min(max(numerator / denominator, 0.0), 1.0))
