"""Section 9 extensions: set-operation queries, string predicates, database updates."""

from repro.extensions.set_queries import (
    CompoundCardinalityEstimator,
    CompoundContainmentEstimator,
    CompoundQuery,
    ExceptQuery,
    OrQuery,
    UnionQuery,
    leading_query,
)
from repro.extensions.strings import (
    HASH_SPACE,
    StringDictionary,
    hash_string,
    string_equality_predicate,
)
from repro.extensions.updates import (
    RetrainProgress,
    RetrainSession,
    incremental_update,
    refresh_queries_pool,
    retrain_from_scratch,
)

__all__ = [
    "CompoundCardinalityEstimator",
    "CompoundContainmentEstimator",
    "CompoundQuery",
    "ExceptQuery",
    "HASH_SPACE",
    "OrQuery",
    "RetrainProgress",
    "RetrainSession",
    "StringDictionary",
    "UnionQuery",
    "hash_string",
    "incremental_update",
    "leading_query",
    "refresh_queries_pool",
    "retrain_from_scratch",
    "string_equality_predicate",
]
