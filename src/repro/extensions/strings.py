"""Equality predicates on strings (Section 9, "Strings").

The CRN model only consumes numeric predicate values, so string equality
predicates are supported by hashing string literals into the integer domain
(the paper suggests the same approach, mirroring MSCN).  Two mechanisms are
provided:

* :class:`StringDictionary` -- an exact dictionary encoding for columns whose
  values are known at database-construction time (the normal path for the
  synthetic database);
* :func:`hash_string` -- a stable hash for ad-hoc literals that are not in the
  dictionary (the model then sees a value that matches no row, which is the
  correct semantics for a literal absent from the database).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.sql.query import ComparisonOperator, Predicate

#: Hash space for ad-hoc string literals (small enough to stay exact in float64).
HASH_SPACE = 2**31


def hash_string(value: str) -> int:
    """A stable (process-independent) hash of ``value`` into the integer domain."""
    digest = hashlib.sha1(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % HASH_SPACE


@dataclass
class StringDictionary:
    """Bidirectional mapping between string values and integer codes for one column."""

    codes: dict[str, int] = field(default_factory=dict)
    values: list[str] = field(default_factory=list)

    @classmethod
    def from_values(cls, values: Iterable[str]) -> "StringDictionary":
        """Build a dictionary from a column's string values (first occurrence wins)."""
        dictionary = cls()
        for value in values:
            dictionary.encode(value)
        return dictionary

    def encode(self, value: str) -> int:
        """Return the code for ``value``, assigning a new one if unseen."""
        if value not in self.codes:
            self.codes[value] = len(self.values)
            self.values.append(value)
        return self.codes[value]

    def encode_existing(self, value: str) -> int:
        """Return the code for ``value``; unseen values hash outside the code range.

        An unseen literal cannot match any stored row, so mapping it to a hash
        above every assigned code preserves the (empty) equality semantics.
        """
        if value in self.codes:
            return self.codes[value]
        return len(self.values) + hash_string(value)

    def decode(self, code: int) -> str:
        """Return the string for an assigned ``code``."""
        if not 0 <= code < len(self.values):
            raise KeyError(f"code {code} is not assigned")
        return self.values[code]

    def encode_column(self, values: Sequence[str]) -> np.ndarray:
        """Dictionary-encode a whole string column into an integer array."""
        return np.asarray([self.encode(value) for value in values], dtype=np.int64)

    def __len__(self) -> int:
        return len(self.values)


def string_equality_predicate(
    alias: str, column: str, value: str, dictionary: StringDictionary | None = None
) -> Predicate:
    """Build an equality predicate on a string column.

    Args:
        alias: table alias of the predicate.
        column: column name.
        value: the string literal.
        dictionary: the column's dictionary encoding; when omitted the literal
            is hashed directly (ad-hoc literal on a hashed column).
    """
    if dictionary is not None:
        encoded = dictionary.encode_existing(value)
    else:
        encoded = hash_string(value)
    return Predicate(alias, column, ComparisonOperator.EQ, float(encoded))
