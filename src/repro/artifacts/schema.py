"""The artifact manifest: schema-validated, checksummed bundle metadata.

Every snapshot bundle (:mod:`repro.artifacts.bundle`) carries one
``manifest.json`` describing exactly what the bundle holds: the manifest
format version, the model generation the snapshot serves, the CRN
architecture needed to rebuild the network before its weights are restored,
and a per-file SHA-256 digest table.  The manifest is the *contract* between
the process that saved the snapshot and the process that boots from it —
following the deduplicated, schema-checked results-database pattern: a
record is either fully valid against the schema or rejected with an error
naming the offending field, never half-trusted.

Validation is strict in both directions: missing required fields and
*unknown* fields both raise :class:`repro.serving.ArtifactSchemaError` (a
typo in a hand-edited manifest must not silently become a default), and
every file digest is checked byte-for-byte at load time
(:func:`verify_files` → :class:`repro.serving.ArtifactChecksumError`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.serving.errors import ArtifactChecksumError, ArtifactSchemaError

__all__ = [
    "MANIFEST_FILENAME",
    "MANIFEST_FORMAT_VERSION",
    "ArtifactManifest",
    "FileDigest",
    "file_digest",
    "verify_files",
]

#: Bumped when the bundle layout changes incompatibly.  A loader refuses
#: manifests from a newer format instead of guessing at their layout.
MANIFEST_FORMAT_VERSION = 1

#: The manifest's file name inside a bundle directory.
MANIFEST_FILENAME = "manifest.json"

#: Model-architecture fields the manifest must carry to rebuild the CRN
#: before loading its weights (mirrors ``CRNModel(vector_size, CRNConfig)``).
_MODEL_FIELDS = ("vector_size", "hidden_size", "pooling", "use_expand", "seed")


def file_digest(path: Path) -> "FileDigest":
    """Hash one file's bytes into its manifest record."""
    digest = hashlib.sha256()
    size = 0
    with open(path, "rb") as handle:
        while chunk := handle.read(1 << 20):
            digest.update(chunk)
            size += len(chunk)
    return FileDigest(sha256=digest.hexdigest(), size_bytes=size)


@dataclass(frozen=True)
class FileDigest:
    """One bundle file's integrity record: SHA-256 plus byte size."""

    sha256: str
    size_bytes: int

    def __post_init__(self) -> None:
        if len(self.sha256) != 64 or any(
            c not in "0123456789abcdef" for c in self.sha256
        ):
            raise ArtifactSchemaError(
                f"sha256 must be a 64-character lowercase hex digest, "
                f"got {self.sha256!r}"
            )
        if self.size_bytes < 0:
            raise ArtifactSchemaError(
                f"size_bytes must be non-negative, got {self.size_bytes!r}"
            )


@dataclass(frozen=True)
class ArtifactManifest:
    """One snapshot bundle's self-description.

    Attributes:
        format_version: the manifest layout version
            (:data:`MANIFEST_FORMAT_VERSION`).
        generation: the registry model generation this snapshot serves — the
            same number stamped into every
            :attr:`repro.serving.EstimateResult.model_generation`, so a
            response, its swap record, and its on-disk snapshot all key on
            one value.
        created_unix: wall-clock save time (``time.time()``).
        source: what produced the snapshot — ``"build"`` for a freshly wired
            stack, ``"promote"`` for an adaptation-accepted candidate,
            ``"manual"`` for operator saves.
        model: the CRN architecture (``vector_size`` plus the ``CRNConfig``
            fields), enough to rebuild the network the weights belong to.
        files: per-file :class:`FileDigest` records, keyed by the bundle-
            relative file name.  The manifest itself is never listed (it
            cannot contain its own digest).
        notes: free-form operator annotation.
    """

    format_version: int
    generation: int
    created_unix: float
    source: str
    model: dict[str, Any]
    files: dict[str, FileDigest]
    notes: str = ""
    _KNOWN_FIELDS = (
        "format_version",
        "generation",
        "created_unix",
        "source",
        "model",
        "files",
        "notes",
    )

    def __post_init__(self) -> None:
        if self.format_version != MANIFEST_FORMAT_VERSION:
            raise ArtifactSchemaError(
                f"unsupported manifest format_version {self.format_version!r}; "
                f"this build reads version {MANIFEST_FORMAT_VERSION}"
            )
        if not isinstance(self.generation, int) or isinstance(self.generation, bool):
            raise ArtifactSchemaError(
                f"generation must be an int, got {self.generation!r}"
            )
        if self.generation <= 0:
            raise ArtifactSchemaError(
                f"generation must be positive, got {self.generation}"
            )
        if not self.source:
            raise ArtifactSchemaError("source must be non-empty")
        missing = [name for name in _MODEL_FIELDS if name not in self.model]
        unknown = sorted(set(self.model) - set(_MODEL_FIELDS))
        if missing or unknown:
            raise ArtifactSchemaError(
                f"manifest model section must carry exactly {list(_MODEL_FIELDS)}; "
                f"missing={missing}, unknown={unknown}"
            )
        if not self.files:
            raise ArtifactSchemaError("manifest lists no files; an empty bundle is invalid")
        for name in self.files:
            if not name or "/" in name or name == MANIFEST_FILENAME:
                raise ArtifactSchemaError(
                    f"invalid bundle file name {name!r}: names are flat "
                    f"(no directories) and the manifest cannot list itself"
                )

    # ------------------------------------------------------------------ #
    # JSON round-trip

    def to_mapping(self) -> dict[str, Any]:
        """The manifest as a JSON-ready plain dict."""
        return {
            "format_version": self.format_version,
            "generation": self.generation,
            "created_unix": self.created_unix,
            "source": self.source,
            "model": dict(self.model),
            "files": {
                name: {"sha256": digest.sha256, "size_bytes": digest.size_bytes}
                for name, digest in self.files.items()
            },
            "notes": self.notes,
        }

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "ArtifactManifest":
        """Validate and rebuild a manifest from :meth:`to_mapping` output.

        Raises:
            ArtifactSchemaError: on missing fields, unknown fields, or
                malformed values — each named in the message.
        """
        if not isinstance(mapping, Mapping):
            raise ArtifactSchemaError(
                f"manifest must be a JSON object, got {type(mapping).__name__}"
            )
        unknown = sorted(set(mapping) - set(cls._KNOWN_FIELDS))
        if unknown:
            raise ArtifactSchemaError(
                f"unknown manifest field(s) {unknown}; expected a subset of "
                f"{list(cls._KNOWN_FIELDS)}"
            )
        required = [name for name in cls._KNOWN_FIELDS if name != "notes"]
        missing = [name for name in required if name not in mapping]
        if missing:
            raise ArtifactSchemaError(f"manifest is missing required field(s) {missing}")
        raw_files = mapping["files"]
        if not isinstance(raw_files, Mapping):
            raise ArtifactSchemaError(
                f"manifest files must be an object, got {type(raw_files).__name__}"
            )
        files: dict[str, FileDigest] = {}
        for name, record in raw_files.items():
            if not isinstance(record, Mapping) or set(record) != {"sha256", "size_bytes"}:
                raise ArtifactSchemaError(
                    f"file record for {name!r} must be "
                    f"{{'sha256', 'size_bytes'}}, got {record!r}"
                )
            files[str(name)] = FileDigest(
                sha256=str(record["sha256"]), size_bytes=int(record["size_bytes"])
            )
        model = mapping["model"]
        if not isinstance(model, Mapping):
            raise ArtifactSchemaError(
                f"manifest model must be an object, got {type(model).__name__}"
            )
        try:
            created = float(mapping["created_unix"])
        except (TypeError, ValueError):
            raise ArtifactSchemaError(
                f"created_unix must be a number, got {mapping['created_unix']!r}"
            ) from None
        return cls(
            format_version=mapping["format_version"],
            generation=mapping["generation"],
            created_unix=created,
            source=str(mapping["source"]),
            model=dict(model),
            files=files,
            notes=str(mapping.get("notes", "")),
        )

    @classmethod
    def read(cls, path: Path) -> "ArtifactManifest":
        """Read and validate ``manifest.json`` at ``path``.

        Raises:
            ArtifactSchemaError: on unparseable JSON or a schema violation.
        """
        try:
            raw = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise ArtifactSchemaError(
                f"cannot read manifest {str(path)!r}: {error}"
            ) from error
        return cls.from_mapping(raw)

    def write(self, path: Path) -> None:
        """Write the manifest to ``path`` (the bundle's final step)."""
        path.write_text(json.dumps(self.to_mapping(), indent=2, sort_keys=True) + "\n")


def verify_files(directory: Path, manifest: ArtifactManifest) -> None:
    """Check every manifest-listed file's bytes against its recorded digest.

    Raises:
        ArtifactChecksumError: naming the first offending file, with both
            digests (or the size mismatch for a truncated file).  A missing
            listed file is also a checksum failure: the bundle as recorded
            no longer exists.
    """
    for name, recorded in manifest.files.items():
        path = directory / name
        if not path.is_file():
            raise ArtifactChecksumError(
                f"bundle file {name!r} listed in the manifest is missing "
                f"from {str(directory)!r}"
            )
        actual = file_digest(path)
        if actual.size_bytes != recorded.size_bytes:
            raise ArtifactChecksumError(
                f"bundle file {name!r} is {actual.size_bytes} bytes, manifest "
                f"records {recorded.size_bytes} (truncated or torn write)"
            )
        if actual.sha256 != recorded.sha256:
            raise ArtifactChecksumError(
                f"bundle file {name!r} fails its checksum: sha256 "
                f"{actual.sha256} != recorded {recorded.sha256}"
            )
