"""The generational artifact store: durable snapshots with promote/rollback.

Layout on disk, under one *store root* directory::

    <root>/
        gen-1/            one bundle per generation (repro.artifacts.bundle)
        gen-2/
        latest.json       the pointer: {"generation": 2, "previous": 1}

The pointer is the only mutable state.  It is written atomically (temp file
+ ``os.replace`` on the same filesystem), so a crash mid-promote leaves the
old pointer fully intact — there is no window where ``latest`` names a
half-written target.  Because the pointer records the *previous* generation
alongside the current one, :meth:`ArtifactStore.rollback` is a pure pointer
swap: re-point ``latest`` at ``previous`` and remember where it came from,
without deleting any bundle.  Promote and rollback are therefore symmetric
and both reversible.

Generation numbers are the registry's model generations
(:meth:`repro.serving.EstimationService.generation`): the adaptation loop
persists each accepted candidate under the generation the swap produced, so
a served :class:`repro.serving.EstimateResult`, its swap record in the
:class:`repro.observability.EventStore`, and its on-disk snapshot all join
on one number.

Saves stage into a hidden temp directory and rename into place, so a
killed save never leaves a partially written ``gen-N/`` that a later
:meth:`~ArtifactStore.load` could trip over.
"""

from __future__ import annotations

import json
import os
import re
import shutil
from pathlib import Path
from typing import Any, Mapping

from repro.artifacts.bundle import LoadedBundle, load_bundle, save_bundle
from repro.artifacts.schema import (
    MANIFEST_FILENAME,
    ArtifactManifest,
    verify_files,
)
from repro.serving.errors import ArtifactNotFoundError, ArtifactSchemaError

__all__ = ["ArtifactStore", "POINTER_FILENAME"]

#: The atomic ``latest`` pointer's file name inside the store root.
POINTER_FILENAME = "latest.json"

_GENERATION_DIR = re.compile(r"^gen-(\d+)$")


class ArtifactStore:
    """A directory-backed, generation-keyed store of snapshot bundles.

    Args:
        root: the store directory (created, with parents, when missing).
        recorder: optional :class:`repro.observability.EventRecorder`; when
            set, every save / load / promote / rollback emits its artifact
            lifecycle event, so the event store can answer "which snapshot
            answered this request" by joining generations.
    """

    def __init__(self, root: str | os.PathLike, recorder=None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.recorder = recorder

    # ------------------------------------------------------------------ #
    # paths and enumeration

    def path(self, generation: int) -> Path:
        """The bundle directory of ``generation`` (may not exist yet)."""
        if generation <= 0:
            raise ArtifactSchemaError(f"generation must be positive, got {generation}")
        return self.root / f"gen-{generation}"

    def generations(self) -> list[int]:
        """All generations with a complete (manifest-bearing) bundle, sorted."""
        found = []
        for entry in self.root.iterdir():
            match = _GENERATION_DIR.match(entry.name)
            if match and (entry / MANIFEST_FILENAME).is_file():
                found.append(int(match.group(1)))
        return sorted(found)

    # ------------------------------------------------------------------ #
    # the latest pointer

    def pointer(self) -> dict[str, Any]:
        """The raw pointer state: ``{"generation": int|None, "previous": int|None}``."""
        path = self.root / POINTER_FILENAME
        if not path.is_file():
            return {"generation": None, "previous": None}
        try:
            raw = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise ArtifactSchemaError(
                f"cannot read store pointer {str(path)!r}: {error}"
            ) from error
        if not isinstance(raw, dict) or "generation" not in raw:
            raise ArtifactSchemaError(
                f"store pointer {str(path)!r} must be an object with a "
                f"'generation' field, got {raw!r}"
            )
        return {"generation": raw["generation"], "previous": raw.get("previous")}

    def latest(self) -> int | None:
        """The promoted generation, or ``None`` when nothing is promoted yet."""
        return self.pointer()["generation"]

    def _write_pointer(self, generation: int, previous: int | None) -> None:
        # Temp file + os.replace on the same filesystem: readers see either
        # the old pointer or the new one, never a torn write.
        target = self.root / POINTER_FILENAME
        staging = self.root / f".{POINTER_FILENAME}.tmp"
        staging.write_text(
            json.dumps({"generation": generation, "previous": previous}) + "\n"
        )
        os.replace(staging, target)

    # ------------------------------------------------------------------ #
    # save / load / verify

    def save(
        self,
        *,
        model,
        pool,
        config_mapping: Mapping[str, Any],
        generation: int,
        source: str,
        pool_index=None,
        notes: str = "",
        promote: bool = False,
    ) -> ArtifactManifest:
        """Persist one snapshot bundle as ``generation``.

        The bundle is staged into a hidden sibling directory and renamed
        into place, so an interrupted save leaves no visible ``gen-N/``.
        Re-saving an existing generation replaces its bundle (the staging
        rename makes the replacement all-or-nothing at the directory level).

        Args:
            promote: additionally re-point ``latest`` at this generation
                once the bundle is fully on disk.
        """
        final = self.path(generation)
        staging = self.root / f".gen-{generation}.staging"
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir()
        try:
            manifest = save_bundle(
                staging,
                model=model,
                pool=pool,
                config_mapping=config_mapping,
                generation=generation,
                source=source,
                pool_index=pool_index,
                notes=notes,
            )
            if final.exists():
                shutil.rmtree(final)
            os.replace(staging, final)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        self._emit_saved(manifest)
        if promote:
            self.promote(generation)
        return manifest

    def load(self, generation: int | None = None) -> LoadedBundle:
        """Read, checksum-verify, and deserialize one generation's bundle.

        Args:
            generation: which generation to load; ``None`` loads whatever
                ``latest`` points at.

        Raises:
            ArtifactNotFoundError: nothing promoted (for ``None``), or the
                named generation has no bundle.
            ArtifactChecksumError / ArtifactSchemaError: the bundle is
                corrupt or invalid (see :func:`repro.artifacts.load_bundle`).
        """
        if generation is None:
            generation = self.latest()
            if generation is None:
                raise ArtifactNotFoundError(
                    f"artifact store {str(self.root)!r} has no promoted "
                    f"generation (empty latest pointer)"
                )
        bundle = load_bundle(self.path(generation))
        self._emit_loaded(bundle.manifest)
        return bundle

    def verify(self, generation: int) -> ArtifactManifest:
        """Validate one generation's manifest and every file digest.

        Returns the manifest on success; raises the bundle's typed error
        otherwise.  Cheaper than :meth:`load` — nothing is deserialized.
        """
        directory = self.path(generation)
        manifest_path = directory / MANIFEST_FILENAME
        if not manifest_path.is_file():
            raise ArtifactNotFoundError(
                f"no artifact bundle for generation {generation} at "
                f"{str(directory)!r}"
            )
        manifest = ArtifactManifest.read(manifest_path)
        if manifest.generation != generation:
            raise ArtifactSchemaError(
                f"bundle at {str(directory)!r} records generation "
                f"{manifest.generation}, directory says {generation}"
            )
        verify_files(directory, manifest)
        return manifest

    # ------------------------------------------------------------------ #
    # promote / rollback

    def promote(self, generation: int) -> dict[str, Any]:
        """Atomically re-point ``latest`` at ``generation``.

        The target bundle is checksum-verified *first* — a corrupt bundle
        cannot be promoted.  Returns the new pointer state.
        """
        self.verify(generation)
        current = self.pointer()
        previous = current["generation"] if current["generation"] != generation else current["previous"]
        self._write_pointer(generation, previous)
        self._emit_promoted(generation, previous)
        return {"generation": generation, "previous": previous}

    def rollback(self) -> dict[str, Any]:
        """Re-point ``latest`` back at the previous generation.

        A pure pointer swap — no bundle is deleted, and the generations
        trade places (rolling back twice returns to where you started).

        Raises:
            ArtifactNotFoundError: nothing is promoted, there is no recorded
                previous generation, or the previous bundle is gone.
        """
        current = self.pointer()
        if current["generation"] is None:
            raise ArtifactNotFoundError(
                f"artifact store {str(self.root)!r} has no promoted "
                f"generation to roll back from"
            )
        previous = current["previous"]
        if previous is None:
            raise ArtifactNotFoundError(
                f"generation {current['generation']} has no recorded previous "
                f"generation to roll back to"
            )
        self.verify(previous)
        self._write_pointer(previous, current["generation"])
        self._emit_rolled_back(previous, current["generation"])
        return {"generation": previous, "previous": current["generation"]}

    # ------------------------------------------------------------------ #
    # observability (no-ops without a recorder)

    def _emit_saved(self, manifest: ArtifactManifest) -> None:
        if self.recorder is not None:
            from repro.observability.events import ArtifactSaved

            self.recorder.emit(
                ArtifactSaved(
                    generation=manifest.generation,
                    source=manifest.source,
                    size_bytes=sum(d.size_bytes for d in manifest.files.values()),
                )
            )

    def _emit_loaded(self, manifest: ArtifactManifest) -> None:
        if self.recorder is not None:
            from repro.observability.events import ArtifactLoaded

            self.recorder.emit(
                ArtifactLoaded(generation=manifest.generation, source=manifest.source)
            )

    def _emit_promoted(self, generation: int, previous: int | None) -> None:
        if self.recorder is not None:
            from repro.observability.events import ArtifactPromoted

            self.recorder.emit(
                ArtifactPromoted(generation=generation, previous=previous)
            )

    def _emit_rolled_back(self, generation: int, previous: int | None) -> None:
        if self.recorder is not None:
            from repro.observability.events import ArtifactRolledBack

            self.recorder.emit(
                ArtifactRolledBack(generation=generation, rolled_back_from=previous)
            )
