"""Durable, versioned serving artifacts (the cold-start substrate).

Everything the serving stack builds in memory — trained CRN weights, the
queries pool with its true cardinalities, the encoding index's slab shape,
and the full :class:`repro.serving.ServingConfig` — can be persisted as one
schema-validated, checksummed *bundle* (:mod:`~repro.artifacts.bundle`) and
kept in a generation-keyed *store* (:mod:`~repro.artifacts.store`) with an
atomic ``latest`` pointer, ``promote``, and ``rollback``.

A restart then boots from the promoted snapshot
(:meth:`repro.serving.ServingClient.from_artifact`) instead of retraining:
weights are restored, the pool is replayed entry-for-entry, the index is
re-warmed, the inference plan is recompiled, and the restored model
generation is stamped back into the registry — so
:attr:`repro.serving.EstimateResult.model_generation` provenance is
continuous across process restarts, and the booted client's estimates are
bit-identical to the client that produced the snapshot
(``benchmarks/bench_cold_start.py`` pins both properties).

Failure surface: :class:`repro.serving.ArtifactSchemaError` for invalid
manifests, :class:`repro.serving.ArtifactChecksumError` for corrupt bytes,
:class:`repro.serving.ArtifactNotFoundError` for missing generations — all
under :class:`repro.serving.ArtifactError`.
"""

from repro.artifacts.bundle import (
    BUNDLE_FILES,
    LoadedBundle,
    load_bundle,
    query_from_mapping,
    query_to_mapping,
    save_bundle,
)
from repro.artifacts.schema import (
    MANIFEST_FILENAME,
    MANIFEST_FORMAT_VERSION,
    ArtifactManifest,
    FileDigest,
    file_digest,
    verify_files,
)
from repro.artifacts.store import POINTER_FILENAME, ArtifactStore

__all__ = [
    "ArtifactManifest",
    "ArtifactStore",
    "BUNDLE_FILES",
    "FileDigest",
    "LoadedBundle",
    "MANIFEST_FILENAME",
    "MANIFEST_FORMAT_VERSION",
    "POINTER_FILENAME",
    "file_digest",
    "load_bundle",
    "query_from_mapping",
    "query_to_mapping",
    "save_bundle",
    "verify_files",
]
