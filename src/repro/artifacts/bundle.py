"""Snapshot bundles: everything a serving stack needs to boot cold.

One bundle is one directory holding four data files plus the manifest that
describes and checksums them (:mod:`repro.artifacts.schema`):

* ``model.npz`` — the trained CRN's parameters, written by
  :func:`repro.nn.serialization.save_parameters` (format-versioned, with a
  per-parameter shape/dtype header).  The architecture needed to rebuild the
  network lives in the manifest's ``model`` section.
* ``pool.json`` — the queries pool as structural JSON: every entry's query
  (tables, joins, predicates — *not* SQL text, so no parser round-trip can
  perturb it) and its true cardinality, in pool iteration order.  Replaying
  the entries in order reproduces the pool — and therefore the
  :class:`repro.serving.PoolEncodingIndex` slab rows — exactly.
* ``config.json`` — the full :meth:`repro.serving.ServingConfig.to_mapping`
  snapshot: every section survives the round trip with the config layer's
  unknown-field rejection intact.
* ``index.json`` — prebuilt index slab metadata: the per-FROM-signature
  eligible row counts the warmed index is expected to hold, plus whether a
  float32 mirror layout was negotiated.  The slab *matrices* are
  deliberately not serialized — they are a pure function of (weights, pool)
  and rebuild bit-identically from the encoding cache at boot; the metadata
  lets the loader verify the rebuild landed where the saver stood.

Writes are crash-safe by ordering: data files first, ``manifest.json`` last,
so a torn save is a directory without a manifest — recognizably incomplete,
never a bundle that validates.  Loads verify every file's SHA-256 against
the manifest before anything is deserialized
(:class:`repro.serving.ArtifactChecksumError` on the first mismatch), so a
truncated or bit-rotted bundle refuses to boot rather than half-loading.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.artifacts.schema import (
    MANIFEST_FILENAME,
    MANIFEST_FORMAT_VERSION,
    ArtifactManifest,
    file_digest,
    verify_files,
)
from repro.core.crn import CRNConfig, CRNModel
from repro.core.queries_pool import PoolEntry, QueriesPool
from repro.nn.serialization import (
    ParameterMismatchError,
    load_parameters,
    save_parameters,
)
from repro.serving.errors import ArtifactNotFoundError, ArtifactSchemaError
from repro.sql.query import (
    ComparisonOperator,
    JoinClause,
    Predicate,
    Query,
    TableRef,
)

__all__ = [
    "BUNDLE_FILES",
    "LoadedBundle",
    "load_bundle",
    "query_from_mapping",
    "query_to_mapping",
    "save_bundle",
]

#: The data files every bundle holds (the manifest checksums exactly these).
BUNDLE_FILES = ("model.npz", "pool.json", "config.json", "index.json")


# ---------------------------------------------------------------------- #
# structural query JSON

def query_to_mapping(query: Query) -> dict[str, Any]:
    """``query`` as plain structural JSON (clause lists, not SQL text).

    Serializing the clause objects directly — instead of formatting SQL and
    re-parsing it at load — means the round trip is exact by construction:
    JSON preserves float predicate values bit-for-bit (``repr`` round-trip),
    and the query's canonical clause ordering is re-derived by
    :class:`~repro.sql.query.Query` itself on rebuild.
    """
    return {
        "tables": [[table.name, table.alias] for table in query.tables],
        "joins": [
            [join.left_alias, join.left_column, join.right_alias, join.right_column]
            for join in query.joins
        ],
        "predicates": [
            [pred.alias, pred.column, pred.operator.value, pred.value]
            for pred in query.predicates
        ],
    }


def query_from_mapping(mapping: Mapping[str, Any]) -> Query:
    """Rebuild a query from :func:`query_to_mapping` output.

    Raises:
        ArtifactSchemaError: when the mapping is not a valid query record.
    """
    try:
        tables = tuple(TableRef(name, alias) for name, alias in mapping["tables"])
        joins = tuple(JoinClause(*parts) for parts in mapping.get("joins", ()))
        predicates = tuple(
            Predicate(alias, column, ComparisonOperator.from_symbol(symbol), value)
            for alias, column, symbol, value in mapping.get("predicates", ())
        )
        return Query(tables, joins, predicates)
    except (KeyError, TypeError, ValueError) as error:
        raise ArtifactSchemaError(f"invalid pool query record: {error}") from error


# ---------------------------------------------------------------------- #
# index slab metadata

def _index_metadata(pool: QueriesPool, pool_index=None) -> dict[str, Any]:
    """Expected post-warm slab shape, derived from the pool itself.

    Slab rows are the bucket's positive-cardinality entries in insertion
    order, so the expected row counts are a pure pool property; the live
    index only contributes its negotiated layout flag.
    """
    signatures = []
    for signature in pool.from_signatures():
        entries, _ = pool.bucket_snapshot(signature)
        rows = sum(1 for entry in entries if entry.cardinality > 0)
        signatures.append({"signature": [list(pair) for pair in signature], "rows": rows})
    f32_mirrors = False
    if pool_index is not None:
        f32_mirrors = bool(pool_index.stats_snapshot().get("pool_index_f32_mirrors", 0.0))
    return {"signatures": signatures, "f32_mirrors": f32_mirrors}


# ---------------------------------------------------------------------- #
# save / load

def save_bundle(
    directory: Path,
    *,
    model: CRNModel,
    pool: QueriesPool,
    config_mapping: Mapping[str, Any],
    generation: int,
    source: str,
    pool_index=None,
    notes: str = "",
) -> ArtifactManifest:
    """Write one complete snapshot bundle into ``directory``.

    The directory must already exist (the store creates it); data files are
    written first and ``manifest.json`` strictly last, so an interrupted
    save can never leave a directory that passes validation.

    Returns:
        The manifest that was written.
    """
    directory = Path(directory)
    save_parameters(model, directory / "model.npz")
    pool_payload = {
        "entries": [
            {"query": query_to_mapping(entry.query), "cardinality": entry.cardinality}
            for entry in pool
        ]
    }
    (directory / "pool.json").write_text(json.dumps(pool_payload) + "\n")
    (directory / "config.json").write_text(
        json.dumps(dict(config_mapping), indent=2, sort_keys=True) + "\n"
    )
    (directory / "index.json").write_text(
        json.dumps(_index_metadata(pool, pool_index), indent=2) + "\n"
    )
    manifest = ArtifactManifest(
        format_version=MANIFEST_FORMAT_VERSION,
        generation=generation,
        created_unix=time.time(),
        source=source,
        model={
            "vector_size": model.vector_size,
            "hidden_size": model.config.hidden_size,
            "pooling": model.config.pooling,
            "use_expand": model.config.use_expand,
            "seed": model.config.seed,
        },
        files={name: file_digest(directory / name) for name in BUNDLE_FILES},
        notes=notes,
    )
    manifest.write(directory / MANIFEST_FILENAME)
    return manifest


@dataclass(frozen=True)
class LoadedBundle:
    """One verified, fully deserialized snapshot bundle.

    Attributes:
        manifest: the validated manifest (generation, digests, architecture).
        model: the rebuilt CRN with the snapshot's weights restored.
        pool: the replayed queries pool, entry-for-entry in saved order.
        config_mapping: the raw :meth:`~repro.serving.ServingConfig.to_mapping`
            snapshot — callers pass it through
            :meth:`~repro.serving.ServingConfig.from_mapping` with the
            runtime objects a mapping cannot carry (database, oracle, model).
        index_meta: the expected post-warm index shape (``index.json``).
    """

    manifest: ArtifactManifest
    model: CRNModel
    pool: QueriesPool
    config_mapping: dict[str, Any]
    index_meta: dict[str, Any]


def _read_json(path: Path, description: str) -> Any:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ArtifactSchemaError(
            f"cannot read {description} {str(path)!r}: {error}"
        ) from error


def load_bundle(directory: Path) -> LoadedBundle:
    """Read, verify, and deserialize the bundle in ``directory``.

    Every manifest-listed file's SHA-256 is checked *before* any
    deserialization, so nothing is ever built from corrupt bytes.

    Raises:
        ArtifactNotFoundError: no bundle (no manifest) at ``directory``.
        ArtifactChecksumError: any file fails its digest or size check.
        ArtifactSchemaError: the manifest, a data file, or the weights
            archive is structurally invalid.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_FILENAME
    if not manifest_path.is_file():
        raise ArtifactNotFoundError(
            f"no artifact bundle at {str(directory)!r} (missing {MANIFEST_FILENAME})"
        )
    manifest = ArtifactManifest.read(manifest_path)
    missing = sorted(set(BUNDLE_FILES) - set(manifest.files))
    if missing:
        raise ArtifactSchemaError(
            f"manifest at {str(directory)!r} does not list required bundle "
            f"file(s) {missing}"
        )
    verify_files(directory, manifest)

    config_mapping = _read_json(directory / "config.json", "bundle config")
    if not isinstance(config_mapping, dict):
        raise ArtifactSchemaError(
            f"bundle config at {str(directory)!r} must be a JSON object"
        )
    index_meta = _read_json(directory / "index.json", "bundle index metadata")

    pool_payload = _read_json(directory / "pool.json", "bundle pool")
    try:
        records = pool_payload["entries"]
    except (TypeError, KeyError):
        raise ArtifactSchemaError(
            f"bundle pool at {str(directory)!r} must be {{'entries': [...]}}"
        ) from None
    entries = []
    for record in records:
        try:
            cardinality = int(record["cardinality"])
            query_mapping = record["query"]
        except (TypeError, KeyError) as error:
            raise ArtifactSchemaError(
                f"invalid pool entry record {record!r}: {error}"
            ) from error
        entries.append(PoolEntry(query_from_mapping(query_mapping), cardinality))
    pool = QueriesPool(entries)

    spec = manifest.model
    try:
        model = CRNModel(
            int(spec["vector_size"]),
            CRNConfig(
                hidden_size=int(spec["hidden_size"]),
                pooling=str(spec["pooling"]),
                use_expand=bool(spec["use_expand"]),
                seed=int(spec["seed"]),
            ),
        )
    except (TypeError, ValueError) as error:
        raise ArtifactSchemaError(
            f"manifest model section cannot rebuild a CRN: {error}"
        ) from error
    try:
        load_parameters(model, directory / "model.npz")
    except ParameterMismatchError as error:
        # The bytes passed their checksum, so this is a save-time
        # inconsistency between the manifest's architecture and the archive —
        # a schema problem, not corruption.
        raise ArtifactSchemaError(
            f"bundle weights do not match the manifest's architecture: {error}"
        ) from error

    return LoadedBundle(
        manifest=manifest,
        model=model,
        pool=pool,
        config_mapping=config_mapping,
        index_meta=index_meta if isinstance(index_meta, dict) else {},
    )
