"""Optimizers: SGD and Adam (the paper uses Adam, Section 3.3)."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters: list[Tensor]) -> None:
        if not parameters:
            raise ValueError("optimizer needs at least one parameter")
        self.parameters = parameters

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: list[Tensor], learning_rate: float = 0.01, momentum: float = 0.0) -> None:
        super().__init__(parameters)
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity = [np.zeros_like(parameter.data) for parameter in parameters]

    def step(self) -> None:
        """Apply one SGD update using the accumulated gradients."""
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.learning_rate * parameter.grad
            parameter.data = parameter.data + velocity


class Adam(Optimizer):
    """The Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: list[Tensor],
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(parameters)
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must lie in [0, 1)")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._step_count = 0
        self._first_moment = [np.zeros_like(parameter.data) for parameter in parameters]
        self._second_moment = [np.zeros_like(parameter.data) for parameter in parameters]

    def step(self) -> None:
        """Apply one Adam update using the accumulated gradients."""
        self._step_count += 1
        bias_correction1 = 1.0 - self.beta1**self._step_count
        bias_correction2 = 1.0 - self.beta2**self._step_count
        for parameter, first, second in zip(self.parameters, self._first_moment, self._second_moment):
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            first *= self.beta1
            first += (1.0 - self.beta1) * gradient
            second *= self.beta2
            second += (1.0 - self.beta2) * gradient**2
            corrected_first = first / bias_correction1
            corrected_second = second / bias_correction2
            parameter.data = parameter.data - self.learning_rate * corrected_first / (
                np.sqrt(corrected_second) + self.epsilon
            )
