"""Saving and loading model parameters.

The paper notes the CRN model serialises to roughly 1.5 MB on disk; we persist
parameters as a compressed ``.npz`` archive keyed by parameter name.
"""

from __future__ import annotations

import os
from typing import Mapping

import numpy as np

from repro.nn.layers import Module


def save_parameters(module: Module, path: str | os.PathLike) -> None:
    """Save all of ``module``'s parameters to ``path`` (``.npz``)."""
    state = module.state_dict()
    np.savez_compressed(path, **state)


def load_parameters(module: Module, path: str | os.PathLike) -> None:
    """Load parameters saved by :func:`save_parameters` into ``module``."""
    with np.load(path) as archive:
        state: Mapping[str, np.ndarray] = {name: archive[name] for name in archive.files}
    module.load_state_dict(dict(state))
