"""Saving and loading model parameters.

The paper notes the CRN model serialises to roughly 1.5 MB on disk; we persist
parameters as a compressed ``.npz`` archive keyed by parameter name, plus a
metadata header (:data:`METADATA_KEY`) describing the archive: format
version, parameter count, and the expected shape/dtype of every entry.

Loading validates the archive against the *target module* before a single
parameter is assigned: missing keys, extra keys, and per-parameter
shape/dtype mismatches each raise a :class:`ParameterMismatchError` naming
the offending parameter.  A stale or truncated archive therefore fails
up front with a readable error instead of half-loading and crashing deep in
``load_state_dict`` (or, worse, silently serving a chimera of old and new
weights).  Archives written before the header existed (format 0) still load
— the same validation applies, only the header self-description is absent.
"""

from __future__ import annotations

import json
import os
import zipfile
from typing import Any, Mapping

import numpy as np

from repro.nn.layers import Module

__all__ = [
    "METADATA_KEY",
    "SERIALIZATION_FORMAT_VERSION",
    "ParameterMismatchError",
    "load_parameters",
    "read_parameter_metadata",
    "save_parameters",
]

#: Bumped when the archive layout changes incompatibly.  Version 1 added the
#: metadata header; version 0 is the header-less legacy layout.
SERIALIZATION_FORMAT_VERSION = 1

#: Reserved archive entry holding the JSON metadata header.  The name is not
#: a valid parameter name (parameters come from attribute walks), so it can
#: never collide with a real parameter.
METADATA_KEY = "__repro_parameters_meta__"


class ParameterMismatchError(ValueError):
    """An archive does not describe the module it is being loaded into.

    Raised before any parameter is assigned, so a failed load never leaves
    the module half-updated.  The message names every offending parameter.
    """


def _module_spec(module: Module) -> dict[str, dict[str, Any]]:
    """Per-parameter shape/dtype of ``module``, keyed by parameter name."""
    return {
        name: {"shape": list(parameter.data.shape), "dtype": str(parameter.data.dtype)}
        for name, parameter in module.named_parameters()
    }


def save_parameters(module: Module, path: str | os.PathLike) -> None:
    """Save all of ``module``'s parameters to ``path`` (``.npz``).

    Besides one array per parameter, the archive carries a JSON metadata
    header under :data:`METADATA_KEY`: the serialization format version and
    every parameter's expected shape/dtype, so :func:`read_parameter_metadata`
    can describe an archive without a module to compare against.
    """
    state = module.state_dict()
    header = {
        "format_version": SERIALIZATION_FORMAT_VERSION,
        "parameter_count": len(state),
        "parameters": _module_spec(module),
    }
    encoded = np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(path, **state, **{METADATA_KEY: encoded})


def read_parameter_metadata(path: str | os.PathLike) -> dict[str, Any]:
    """The archive's metadata header (synthesized for legacy archives).

    Legacy (pre-header) archives return ``format_version`` 0 with the
    parameter specs reconstructed from the stored arrays themselves.

    Raises:
        ParameterMismatchError: when the file is not a readable ``.npz``
            archive (truncated, or not an archive at all).
    """
    try:
        with np.load(path) as archive:
            if METADATA_KEY in archive.files:
                header = json.loads(bytes(archive[METADATA_KEY]).decode("utf-8"))
            else:
                header = {
                    "format_version": 0,
                    "parameter_count": len(archive.files),
                    "parameters": {
                        name: {
                            "shape": list(archive[name].shape),
                            "dtype": str(archive[name].dtype),
                        }
                        for name in archive.files
                    },
                }
    except (zipfile.BadZipFile, OSError, ValueError, KeyError) as error:
        raise ParameterMismatchError(
            f"cannot read parameter archive {os.fspath(path)!r}: {error}"
        ) from error
    return header


def load_parameters(module: Module, path: str | os.PathLike) -> None:
    """Load parameters saved by :func:`save_parameters` into ``module``.

    The archive is validated against ``module`` *before* anything is
    assigned: every parameter the module owns must be present, nothing extra
    may be present, and each entry's shape and dtype must match the target
    parameter (dtype mismatches are rejected rather than silently cast — an
    archive holding float32 weights for a float64 model is a stale or
    foreign artifact, not a representation choice).

    Raises:
        ParameterMismatchError: naming every missing / unexpected /
            mismatched parameter, or describing an unreadable archive.
    """
    try:
        with np.load(path) as archive:
            names = [name for name in archive.files if name != METADATA_KEY]
            state: Mapping[str, np.ndarray] = {name: archive[name] for name in names}
    except (zipfile.BadZipFile, OSError, ValueError, KeyError) as error:
        raise ParameterMismatchError(
            f"cannot read parameter archive {os.fspath(path)!r}: {error}"
        ) from error
    expected = _module_spec(module)
    missing = sorted(set(expected) - set(state))
    unexpected = sorted(set(state) - set(expected))
    problems: list[str] = []
    if missing:
        problems.append(f"missing parameter(s) {missing}")
    if unexpected:
        problems.append(f"unexpected parameter(s) {unexpected}")
    for name in sorted(set(expected) & set(state)):
        spec = expected[name]
        value = state[name]
        if list(value.shape) != spec["shape"]:
            problems.append(
                f"parameter {name!r} has shape {tuple(spec['shape'])}, "
                f"archive provides {tuple(value.shape)}"
            )
        elif str(value.dtype) != spec["dtype"]:
            problems.append(
                f"parameter {name!r} has dtype {spec['dtype']}, "
                f"archive provides {value.dtype}"
            )
    if problems:
        raise ParameterMismatchError(
            f"parameter archive {os.fspath(path)!r} does not match the target "
            f"module: " + "; ".join(problems)
        )
    module.load_state_dict(dict(state))
