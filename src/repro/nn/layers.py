"""Neural-network modules: parameter containers with a functional forward pass."""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.nn.init import he_init
from repro.nn.tensor import Tensor


class Module:
    """Base class for all modules.

    A module owns named parameters (and possibly sub-modules) and implements
    :meth:`forward`.  Parameter discovery walks instance attributes, so nested
    modules and lists of modules are registered automatically.
    """

    def forward(self, *inputs: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *inputs: Tensor) -> Tensor:
        return self.forward(*inputs)

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        """Yield ``(name, parameter)`` pairs for this module and all sub-modules."""
        for attr_name, attr_value in vars(self).items():
            full_name = f"{prefix}{attr_name}"
            if isinstance(attr_value, Tensor) and attr_value.requires_grad:
                yield full_name, attr_value
            elif isinstance(attr_value, Module):
                yield from attr_value.named_parameters(prefix=f"{full_name}.")
            elif isinstance(attr_value, (list, tuple)):
                for index, item in enumerate(attr_value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full_name}.{index}.")
                    elif isinstance(item, Tensor) and item.requires_grad:
                        yield f"{full_name}.{index}", item

    def parameters(self) -> list[Tensor]:
        """All trainable parameters of this module."""
        return [parameter for _, parameter in self.named_parameters()]

    def zero_grad(self) -> None:
        """Clear the gradients of all parameters."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar learned parameters."""
        return int(sum(parameter.data.size for parameter in self.parameters()))

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy all parameters into a plain dict of arrays."""
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values from :meth:`state_dict` output."""
        parameters = dict(self.named_parameters())
        missing = set(parameters) - set(state)
        unexpected = set(state) - set(parameters)
        if missing or unexpected:
            raise ValueError(
                f"state dict mismatch; missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, parameter in parameters.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"parameter {name!r} has shape {parameter.data.shape}, "
                    f"state provides {value.shape}"
                )
            parameter.data = value.copy()


class Linear(Module):
    """A fully connected layer ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator | None = None) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("layer dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(he_init(rng, in_features, out_features), requires_grad=True)
        self.bias = Tensor(np.zeros(out_features), requires_grad=True)

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs @ self.weight + self.bias


class ReLU(Module):
    """Rectified linear unit activation."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.relu()


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.sigmoid()


class Sequential(Module):
    """A chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        self.modules = list(modules)

    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs
        for module in self.modules:
            output = module(output)
        return output

    def append(self, module: Module) -> "Sequential":
        """Append another module and return self."""
        self.modules.append(module)
        return self
