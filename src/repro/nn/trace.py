"""Op-tape tracing: record a forward pass as a flat list of primitive ops.

:func:`trace` installs a thread-local :class:`Tape`; while it is active every
primitive ``Tensor`` operation reports itself via ``tensor._record`` after
computing its result.  The tape assigns each distinct ``Tensor`` object a
dense integer *slot* and stores one :class:`TraceNode` per executed op, so a
forward pass such as ``model.head(first, second)`` becomes a linear program
over slots — exactly the representation
:mod:`repro.serving.inference_plan` compiles into fused NumPy kernels.

Composite ops decompose for free: ``a - b`` runs as ``neg`` + ``add`` and
``mean`` as ``sum`` + ``div``, because only primitives call ``_record``.
The tape keeps a strong reference to every tensor it has assigned a slot
(``tensor_for_slot``), both so callers can inspect traced values and so a
garbage-collected intermediate cannot free its ``id()`` for reuse by a later
tensor, which would silently alias two slots.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Any, Iterator

from .tensor import _TRACE_STATE, Tensor

__all__ = ["Tape", "TraceNode", "trace"]


@dataclass(frozen=True)
class TraceNode:
    """One executed primitive op: ``output = op(*inputs, **attrs)``."""

    op: str
    inputs: tuple[int, ...]
    output: int
    attrs: dict[str, Any]


class Tape:
    """An append-only record of primitive ops over slot-numbered tensors."""

    def __init__(self) -> None:
        self.nodes: list[TraceNode] = []
        self._slots: dict[int, int] = {}
        self._tensors: list[Tensor] = []

    def slot(self, tensor: Tensor) -> int:
        """Return the slot for ``tensor``, assigning the next one if new."""
        key = id(tensor)
        slot = self._slots.get(key)
        if slot is None:
            slot = len(self._tensors)
            self._slots[key] = slot
            self._tensors.append(tensor)
        return slot

    def slot_of(self, tensor: Tensor) -> int | None:
        """Return the slot already assigned to ``tensor``, or None."""
        return self._slots.get(id(tensor))

    def tensor_for_slot(self, slot: int) -> Tensor:
        """Return the tensor that occupies ``slot``."""
        return self._tensors[slot]

    @property
    def num_slots(self) -> int:
        """Number of distinct tensors seen so far."""
        return len(self._tensors)

    def record(self, op: str, inputs: tuple[Tensor, ...], output: Tensor, attrs: dict) -> None:
        """Append one op (called by ``tensor._record`` while tracing)."""
        node = TraceNode(
            op=op,
            inputs=tuple(self.slot(tensor) for tensor in inputs),
            output=self.slot(output),
            attrs=dict(attrs),
        )
        self.nodes.append(node)


@contextlib.contextmanager
def trace() -> Iterator[Tape]:
    """Record every primitive Tensor op on this thread into a fresh tape."""
    previous = getattr(_TRACE_STATE, "tape", None)
    tape = Tape()
    _TRACE_STATE.tape = tape
    try:
        yield tape
    finally:
        _TRACE_STATE.tape = previous
