"""Dataset utilities: train/validation splitting and mini-batch iteration."""

from __future__ import annotations

from typing import Iterator, Sequence, TypeVar

import numpy as np

ItemT = TypeVar("ItemT")


def train_validation_split(
    items: Sequence[ItemT],
    validation_fraction: float = 0.2,
    seed: int = 0,
) -> tuple[list[ItemT], list[ItemT]]:
    """Shuffle ``items`` and split into train / validation lists.

    The paper uses an 80%/20% split of the generated pairs (Section 3.1.2).

    A nonzero ``validation_fraction`` guarantees a nonzero validation set
    whenever a split is possible (``len(items) > 1``): rounding small
    datasets down to an empty validation set would silently make early
    stopping validate on the training data.  Symmetrically, the training
    side always keeps at least one item.
    """
    if not 0.0 <= validation_fraction < 1.0:
        raise ValueError("validation_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(items))
    validation_size = int(round(len(items) * validation_fraction))
    if validation_fraction > 0.0 and len(items) > 1:
        validation_size = min(max(validation_size, 1), len(items) - 1)
    validation_idx = set(order[:validation_size].tolist())
    train = [items[i] for i in range(len(items)) if i not in validation_idx]
    validation = [items[i] for i in range(len(items)) if i in validation_idx]
    return train, validation


class BatchIterator:
    """Yields shuffled mini-batches of indices, epoch after epoch."""

    def __init__(self, num_items: int, batch_size: int, seed: int = 0) -> None:
        if num_items <= 0:
            raise ValueError("cannot iterate over an empty dataset")
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        self.num_items = num_items
        self.batch_size = batch_size
        self._rng = np.random.default_rng(seed)

    def epoch(self) -> Iterator[np.ndarray]:
        """Yield index arrays covering the dataset once, in shuffled order."""
        order = self._rng.permutation(self.num_items)
        for start in range(0, self.num_items, self.batch_size):
            yield order[start : start + self.batch_size]

    @property
    def batches_per_epoch(self) -> int:
        """Number of mini-batches per epoch."""
        return int(np.ceil(self.num_items / self.batch_size))
