"""Pure-NumPy neural-network substrate.

The paper trains its models with TensorFlow and the Adam optimizer.  This
package substitutes a small, dependency-free stack:

* :mod:`repro.nn.tensor` -- a reverse-mode autodiff :class:`Tensor` over NumPy
  arrays (matmul, broadcasting arithmetic, ReLU, sigmoid, reductions, ...).
* :mod:`repro.nn.layers` -- ``Linear`` / ``ReLU`` / ``Sigmoid`` / ``Sequential``
  modules with parameter registration.
* :mod:`repro.nn.optim` -- ``Adam`` and ``SGD`` optimizers.
* :mod:`repro.nn.loss` -- the paper's mean q-error loss plus MSE and MAE.
* :mod:`repro.nn.data` -- train/validation splitting and mini-batch iteration.
* :mod:`repro.nn.serialization` -- saving/loading parameters as ``.npz``.
* :mod:`repro.nn.trace` -- the tracing shim (:class:`Tape` / :func:`trace`)
  that records the primitive-op sequence of a forward pass, so the serving
  layer can compile it into a Tensor-free inference plan.
"""

from repro.nn.data import BatchIterator, train_validation_split
from repro.nn.init import he_init, xavier_init
from repro.nn.layers import Linear, Module, ReLU, Sequential, Sigmoid
from repro.nn.loss import mae_loss, mse_loss, q_error_loss
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.serialization import load_parameters, save_parameters
from repro.nn.tensor import Tensor, concatenate, no_grad
from repro.nn.trace import Tape, TraceNode, trace

__all__ = [
    "Adam",
    "BatchIterator",
    "Linear",
    "Module",
    "Optimizer",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "Tape",
    "Tensor",
    "TraceNode",
    "concatenate",
    "he_init",
    "load_parameters",
    "mae_loss",
    "mse_loss",
    "no_grad",
    "q_error_loss",
    "save_parameters",
    "trace",
    "train_validation_split",
    "xavier_init",
]
