"""Weight initialisers."""

from __future__ import annotations

import numpy as np


def xavier_init(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a ``(fan_in, fan_out)`` weight matrix."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_init(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """He (Kaiming) normal initialisation, suited to ReLU activations."""
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(fan_in, fan_out))
