"""Loss functions: the paper's mean q-error (Section 3.2.4) plus variants.

The paper trains CRN to minimise the mean q-error
``q(y, ŷ) = max(ŷ/y, y/ŷ)`` and reports that optimizing MSE / MAE instead puts
less emphasis on heavy outliers and yields worse results; all of these are
provided so the loss ablation benchmark can reproduce that comparison.

``log_q_error`` optimizes ``|log ŷ - log y|`` -- the logarithm of the q-error.
It ranks models identically to the raw q-error but its gradients are bounded
and symmetric, which matters on the synthetic training corpus where a large
share of pairs has a (clamped) zero containment rate: with the raw ratio loss
those pairs contribute enormous one-sided gradients that push every prediction
toward a low hedge value and prevent the model from discriminating at all.
The training loop therefore uses ``log_q_error`` by default (a documented
deviation from the paper; see DESIGN.md), while the raw ``q_error`` remains
available and is still the *evaluation* metric everywhere.
"""

from __future__ import annotations

from repro.nn.tensor import Tensor


def q_error_loss(predictions: Tensor, targets: Tensor, epsilon: float = 1e-6) -> Tensor:
    """Mean q-error between ``predictions`` and ``targets``.

    Both inputs are clamped away from zero so the ratio is finite; the
    containment-rate targets live in ``[0, 1]`` and the cardinality targets are
    positive, so the clamp only guards true zeros.
    """
    safe_predictions = predictions.clip_min(epsilon)
    safe_targets = targets.clip_min(epsilon)
    ratio = safe_predictions / safe_targets
    inverse_ratio = safe_targets / safe_predictions
    return ratio.maximum(inverse_ratio).mean()


def log_q_error_loss(predictions: Tensor, targets: Tensor, epsilon: float = 1e-6) -> Tensor:
    """Mean ``|log(prediction) - log(target)|`` (the log of the q-error)."""
    safe_predictions = predictions.clip_min(epsilon)
    safe_targets = targets.clip_min(epsilon)
    return (safe_predictions.log() - safe_targets.log()).abs().mean()


def mse_loss(predictions: Tensor, targets: Tensor) -> Tensor:
    """Mean squared error."""
    difference = predictions - targets
    return (difference * difference).mean()


def mae_loss(predictions: Tensor, targets: Tensor) -> Tensor:
    """Mean absolute error."""
    return (predictions - targets).abs().mean()


LOSS_FUNCTIONS = {
    "q_error": q_error_loss,
    "log_q_error": log_q_error_loss,
    "mse": mse_loss,
    "mae": mae_loss,
}


def get_loss(name: str):
    """Look up a loss function by name (``q_error``, ``log_q_error``, ``mse`` or ``mae``)."""
    if name not in LOSS_FUNCTIONS:
        raise KeyError(f"unknown loss {name!r}; available: {sorted(LOSS_FUNCTIONS)}")
    return LOSS_FUNCTIONS[name]
