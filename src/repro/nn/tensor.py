"""A small reverse-mode automatic-differentiation engine over NumPy arrays.

Only the operations needed by the paper's models are implemented, but each is
implemented with full broadcasting support so the engine is reusable:

* elementwise: ``+ - * /``, ``abs``, ``maximum``, ``exp``, ``log``, ``clip``
* matrix multiply (2-D)
* activations: ``relu``, ``sigmoid``
* shape: ``reshape``, ``concatenate``, basic indexing is intentionally omitted
* reductions: ``sum`` / ``mean`` over an axis or all elements

Gradients are accumulated into ``Tensor.grad`` by :meth:`Tensor.backward`,
which runs a topological sort over the recorded computation graph.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

#: Graph-construction mode is **per thread**.  A process-wide flag would race
#: under concurrent inference (the serving dispatcher thread plus client
#: threads all enter/exit ``no_grad``): interleaved save/restore pairs can
#: restore a stale ``previous`` and leave gradient tracking off for every
#: thread — after which newly built models silently have no trainable
#: parameters.  Thread-local state makes each thread's ``no_grad`` blocks
#: independent, matching how PyTorch scopes its grad mode.
_GRAD_STATE = threading.local()

#: Trace mode is per thread for the same reason: a serving thread compiling
#: an inference plan (:mod:`repro.nn.trace`) must not capture the ops of a
#: concurrent training thread's forward pass into its tape.
_TRACE_STATE = threading.local()


def _grad_enabled() -> bool:
    """Whether the *current thread* is building autodiff graphs."""
    return getattr(_GRAD_STATE, "enabled", True)


def _record(op: str, inputs: tuple, output: "Tensor", **attrs) -> None:
    """Report one executed op to the current thread's trace tape, if any.

    This is the whole tracing shim: each Tensor op calls it after computing
    its result, and when no tape is active (the overwhelmingly common case —
    training, reference-mode inference) the cost is one ``getattr`` against a
    thread-local.  :func:`repro.nn.trace.trace` installs a tape; composite
    ops (``a - b`` = ``a + (-b)``, ``mean`` = ``sum / n``) decompose into
    primitive records automatically because only primitives call here.
    """
    tape = getattr(_TRACE_STATE, "tape", None)
    if tape is not None:
        tape.record(op, inputs, output, attrs)


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager disabling graph construction (inference mode).

    Scoped to the calling thread: concurrent serving threads can run
    inference inside ``no_grad`` while another thread trains.
    """
    previous = _grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def _unbroadcast(gradient: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``gradient`` back to ``shape`` after a broadcasting operation."""
    if gradient.shape == shape:
        return gradient
    # Sum over leading axes added by broadcasting.
    while gradient.ndim > len(shape):
        gradient = gradient.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and gradient.shape[axis] != 1:
            gradient = gradient.sum(axis=axis, keepdims=True)
    return gradient.reshape(shape)


class Tensor:
    """A NumPy-backed tensor participating in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")

    def __init__(
        self,
        data: np.ndarray | float | Sequence[float],
        requires_grad: bool = False,
        parents: tuple["Tensor", ...] = (),
        backward: Callable[[np.ndarray], None] | None = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad and _grad_enabled()
        self._parents = parents if self.requires_grad else ()
        self._backward = backward if self.requires_grad else None

    # ------------------------------------------------------------------ #
    # basic protocol

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def item(self) -> float:
        """Return the scalar value of a single-element tensor."""
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying data array (shared)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph construction helpers

    @staticmethod
    def _coerce(value: "Tensor | float | np.ndarray") -> "Tensor":
        if isinstance(value, Tensor):
            return value
        return Tensor(value)

    def _make(self, data: np.ndarray, parents: tuple["Tensor", ...], backward) -> "Tensor":
        requires_grad = _grad_enabled() and any(parent.requires_grad for parent in parents)
        return Tensor(data, requires_grad=requires_grad, parents=parents, backward=backward)

    def _accumulate(self, gradient: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += gradient

    # ------------------------------------------------------------------ #
    # arithmetic

    def __add__(self, other: "Tensor | float") -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(_unbroadcast(gradient, self.shape))
            other._accumulate(_unbroadcast(gradient, other.shape))

        out = self._make(out_data, (self, other), backward)
        _record("add", (self, other), out)
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(gradient: np.ndarray) -> None:
            self._accumulate(-gradient)

        out = self._make(-self.data, (self,), backward)
        _record("neg", (self,), out)
        return out

    def __sub__(self, other: "Tensor | float") -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other: "Tensor | float") -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other: "Tensor | float") -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(_unbroadcast(gradient * other.data, self.shape))
            other._accumulate(_unbroadcast(gradient * self.data, other.shape))

        out = self._make(out_data, (self, other), backward)
        _record("mul", (self, other), out)
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | float") -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(_unbroadcast(gradient / other.data, self.shape))
            other._accumulate(
                _unbroadcast(-gradient * self.data / (other.data**2), other.shape)
            )

        out = self._make(out_data, (self, other), backward)
        _record("div", (self, other), out)
        return out

    def __rtruediv__(self, other: "Tensor | float") -> "Tensor":
        return self._coerce(other) / self

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        if self.data.ndim != 2 or other.data.ndim != 2:
            raise ValueError("matmul supports 2-D operands only")
        out_data = self.data @ other.data

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(gradient @ other.data.T)
            other._accumulate(self.data.T @ gradient)

        out = self._make(out_data, (self, other), backward)
        _record("matmul", (self, other), out)
        return out

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data**exponent

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(gradient * exponent * self.data ** (exponent - 1))

        out = self._make(out_data, (self,), backward)
        _record("pow", (self,), out, exponent=exponent)
        return out

    # ------------------------------------------------------------------ #
    # elementwise functions

    def abs(self) -> "Tensor":
        """Elementwise absolute value."""
        out_data = np.abs(self.data)

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(gradient * np.sign(self.data))

        out = self._make(out_data, (self,), backward)
        _record("abs", (self,), out)
        return out

    def maximum(self, other: "Tensor | float") -> "Tensor":
        """Elementwise maximum; ties route the gradient to ``self``."""
        other = self._coerce(other)
        out_data = np.maximum(self.data, other.data)

        def backward(gradient: np.ndarray) -> None:
            self_mask = (self.data >= other.data).astype(np.float64)
            other_mask = 1.0 - self_mask
            self._accumulate(_unbroadcast(gradient * self_mask, self.shape))
            other._accumulate(_unbroadcast(gradient * other_mask, other.shape))

        out = self._make(out_data, (self, other), backward)
        _record("maximum", (self, other), out)
        return out

    def relu(self) -> "Tensor":
        """Rectified linear unit."""
        out_data = np.maximum(self.data, 0.0)

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(gradient * (self.data > 0.0))

        out = self._make(out_data, (self,), backward)
        _record("relu", (self,), out)
        return out

    def sigmoid(self) -> "Tensor":
        """Numerically stable logistic sigmoid."""
        out_data = np.where(
            self.data >= 0.0,
            1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0))),
            np.exp(np.clip(self.data, -60.0, 60.0))
            / (1.0 + np.exp(np.clip(self.data, -60.0, 60.0))),
        )

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(gradient * out_data * (1.0 - out_data))

        out = self._make(out_data, (self,), backward)
        _record("sigmoid", (self,), out)
        return out

    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        out_data = np.exp(np.clip(self.data, -700.0, 700.0))

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(gradient * out_data)

        out = self._make(out_data, (self,), backward)
        _record("exp", (self,), out)
        return out

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        out_data = np.log(self.data)

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(gradient / self.data)

        out = self._make(out_data, (self,), backward)
        _record("log", (self,), out)
        return out

    def clip_min(self, minimum: float) -> "Tensor":
        """Clamp values from below; gradient flows only through unclamped entries."""
        out_data = np.maximum(self.data, minimum)

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(gradient * (self.data > minimum))

        out = self._make(out_data, (self,), backward)
        _record("clip_min", (self,), out, minimum=minimum)
        return out

    # ------------------------------------------------------------------ #
    # shape manipulation

    def reshape(self, *shape: int) -> "Tensor":
        """Reshape to ``shape`` (a view of the data)."""
        out_data = self.data.reshape(*shape)
        original_shape = self.shape

        def backward(gradient: np.ndarray) -> None:
            self._accumulate(gradient.reshape(original_shape))

        out = self._make(out_data, (self,), backward)
        _record("reshape", (self,), out, shape=out_data.shape)
        return out

    # ------------------------------------------------------------------ #
    # reductions

    def sum(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        """Sum of elements, optionally over a single axis."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(gradient: np.ndarray) -> None:
            grad = np.asarray(gradient)
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(grad, self.shape).copy())

        out = self._make(out_data, (self,), backward)
        _record("sum", (self,), out, axis=axis, keepdims=keepdims)
        return out

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        """Mean of elements, optionally over a single axis."""
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    # ------------------------------------------------------------------ #
    # backward

    def backward(self, gradient: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        Args:
            gradient: the upstream gradient; defaults to 1 for scalar tensors.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if gradient is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without a gradient requires a scalar tensor")
            gradient = np.ones_like(self.data)

        ordering: list[Tensor] = []
        visited: set[int] = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, iter(node._parents))]
            seen_on_stack = {id(node)}
            while stack:
                current, parents = stack[-1]
                advanced = False
                for parent in parents:
                    if id(parent) not in visited and parent.requires_grad:
                        if id(parent) in seen_on_stack:
                            continue
                        visited.add(id(parent))
                        seen_on_stack.add(id(parent))
                        stack.append((parent, iter(parent._parents)))
                        advanced = True
                        break
                if not advanced:
                    ordering.append(current)
                    stack.pop()

        visited.add(id(self))
        visit(self)

        self._accumulate(np.asarray(gradient, dtype=np.float64))
        for node in reversed(ordering):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)


def concatenate(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing back to each input."""
    tensors = [Tensor._coerce(tensor) for tensor in tensors]
    out_data = np.concatenate([tensor.data for tensor in tensors], axis=axis)
    sizes = [tensor.data.shape[axis] for tensor in tensors]
    requires_grad = _grad_enabled() and any(tensor.requires_grad for tensor in tensors)

    def backward(gradient: np.ndarray) -> None:
        splits = np.cumsum(sizes)[:-1]
        pieces = np.split(gradient, splits, axis=axis)
        for tensor, piece in zip(tensors, pieces):
            tensor._accumulate(piece)

    out = Tensor(out_data, requires_grad=requires_grad, parents=tuple(tensors), backward=backward)
    _record("concat", tuple(tensors), out, axis=axis)
    return out


def stack_rows(rows: Iterable[np.ndarray]) -> np.ndarray:
    """Stack 1-D arrays into a 2-D matrix (plain NumPy helper, no gradient)."""
    rows = list(rows)
    if not rows:
        return np.empty((0, 0))
    return np.stack(rows, axis=0)
