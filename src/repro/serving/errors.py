"""The unified serving error taxonomy.

Every failure the serving layer raises on a request path derives from
:class:`ServingError`, so a caller can wrap any client/service/dispatcher
interaction in one ``except ServingError`` instead of memorizing which layer
raises what.  Each member also keeps its legacy base class
(``KeyError`` / ``TimeoutError`` / ``RuntimeError``), so pre-redesign callers
catching the old types keep working unchanged:

* :class:`UnknownEstimatorError` — a request (or ``replace`` / ``unregister``)
  named a registry entry that does not exist.  Also a ``KeyError``.
* :class:`DeadlineExceededError` — a caller's per-request deadline
  (:attr:`repro.serving.RequestOptions.timeout_seconds`, or the ``timeout``
  of :meth:`repro.serving.ServingDispatcher.estimate`) expired before the
  dispatcher served the request.  Also a ``TimeoutError``; the abandoned
  request is cancelled at batch pickup when possible and counted under the
  dispatcher's ``timed_out`` stat.
* :class:`DispatcherShutdownError` — a submission raced past
  :meth:`repro.serving.ServingDispatcher.shutdown`.  Also a ``RuntimeError``.
* :class:`ArtifactError` — the durable-artifact subtree
  (:mod:`repro.artifacts`): :class:`ArtifactSchemaError` for a manifest that
  fails validation (also a ``ValueError``), :class:`ArtifactChecksumError`
  for a bundle whose bytes do not match their recorded SHA-256 digests
  (truncation, bit rot, a torn write — never a silent partial boot), and
  :class:`ArtifactNotFoundError` for a missing store root, generation, or
  bundle file (also a ``FileNotFoundError``).
* :class:`ClusterError` — the sharded multi-process subtree
  (:mod:`repro.cluster`): :class:`WorkerUnavailableError` when no healthy
  worker owns a request's shard after the router's bounded retries (also a
  ``ConnectionError``), and :class:`ClusterProtocolError` when a wire frame
  fails protocol validation — framing, version, or message schema (also a
  ``ValueError``).  Errors raised *inside* a worker do not land here: the
  wire protocol round-trips the whole taxonomy by name, so a worker-side
  :class:`DeadlineExceededError` surfaces from the cluster client as a
  :class:`DeadlineExceededError` with the worker's message.
* :class:`repro.core.cnt2crd.NoMatchingPoolQueryError` is re-exported here as
  a taxonomy member: it predates the serving layer (the Cnt2Crd
  technique itself raises it), so it cannot subclass :class:`ServingError`
  without inverting the core → serving dependency — but every serving-layer
  surface that raises it is documented to, and catching it by this module's
  name keeps request handlers on one import.
"""

from __future__ import annotations

from repro.core.cnt2crd import NoMatchingPoolQueryError

__all__ = [
    "ArtifactChecksumError",
    "ArtifactError",
    "ArtifactNotFoundError",
    "ArtifactSchemaError",
    "ClusterError",
    "ClusterProtocolError",
    "DeadlineExceededError",
    "DispatcherShutdownError",
    "NoMatchingPoolQueryError",
    "ServingError",
    "UnknownEstimatorError",
    "WorkerUnavailableError",
]


class ServingError(Exception):
    """Base class of every error the serving layer itself raises."""


class UnknownEstimatorError(ServingError, KeyError):
    """A request named an estimator the registry does not hold.

    Subclasses ``KeyError`` for backward compatibility with pre-taxonomy
    callers of :meth:`repro.serving.EstimationService.get` /
    :meth:`~repro.serving.EstimationService.replace` /
    :meth:`~repro.serving.EstimationService.unregister`.
    """

    def __str__(self) -> str:
        # KeyError.__str__ is repr(args[0]), which wraps the message in
        # quotes; a taxonomy member should read like an error, not a key.
        return str(self.args[0]) if self.args else ""


class DeadlineExceededError(ServingError, TimeoutError):
    """A per-request deadline expired before the request was served.

    Subclasses ``TimeoutError`` (which ``concurrent.futures.TimeoutError``
    aliases), so callers waiting on dispatcher futures with plain timeouts
    keep working.
    """


class DispatcherShutdownError(ServingError, RuntimeError):
    """Raised by :meth:`repro.serving.ServingDispatcher.submit` after shutdown began."""


class ArtifactError(ServingError):
    """Base class of every durable-artifact failure (:mod:`repro.artifacts`)."""


class ArtifactSchemaError(ArtifactError, ValueError):
    """An artifact manifest failed schema validation.

    Raised for an unsupported format version, missing or unknown manifest
    fields, and field values of the wrong type — each named in the message.
    Also a ``ValueError``, matching the config layer's validation errors.
    """


class ArtifactChecksumError(ArtifactError):
    """A bundle's bytes do not match the manifest's recorded digests.

    Truncated files, flipped bits, and torn writes all land here — loading
    refuses the whole bundle rather than booting from a partially valid
    snapshot.  The message names the offending file and both digests.
    """


class ArtifactNotFoundError(ArtifactError, FileNotFoundError):
    """A store root, generation, or bundle file does not exist on disk.

    Also a ``FileNotFoundError``, so path-oriented callers (the artifact
    CLI, deployment scripts) can keep their existing handling.
    """


class ClusterError(ServingError):
    """Base class of every sharded-cluster failure (:mod:`repro.cluster`).

    Worker boot failures, drained/failed shards, and worker-raised errors
    whose type the wire protocol does not know all surface as this class;
    the two subtypes below cover the router and the protocol specifically.
    """


class WorkerUnavailableError(ClusterError, ConnectionError):
    """No healthy worker owns the request's shard.

    Raised by the cluster router after its bounded retry budget is exhausted
    — the worker process died and has not been restarted yet, its shard was
    drained, or the supervisor gave up restarting it.  Also a
    ``ConnectionError``, so generic network handling keeps working.
    """


class ClusterProtocolError(ClusterError, ValueError):
    """A wire frame failed protocol validation.

    Covers framing (truncated or oversized frames), a protocol version the
    receiver does not speak, and messages that are not valid JSON objects of
    a known type.  Also a ``ValueError``, matching the config layer's
    validation errors.
    """
