"""Declarative, validated configuration for the serving stack.

:class:`ServingConfig` is the single description of a deployment that
:class:`repro.serving.ServingClient` turns into a running stack.  It replaces
the keyword sprawl of the deprecated :func:`repro.serving.build_crn_service`
(and the hand-wiring of service + dispatcher + feedback + adaptation manager)
with one frozen object of nested sections:

* :class:`EstimatorConfig` — the Cnt2Crd estimator itself (final function,
  epsilon guard, slab batch size, registry names);
* :class:`PoolConfig` — pool warming and the pool encoding index;
* :class:`CacheConfig` — the featurization / encoding LRU bounds, with the
  encoding cache's two-entries-per-query sizing rule made **explicit**
  (``build_crn_service`` silently doubled its ``max_cache_entries``);
* :class:`DispatcherConfig` — the request-coalescing front-end;
* :class:`FeedbackConfig` — the rolling feedback window;
* :class:`AdaptationConfig` — drift policy + background retraining;
* :class:`ObservabilityConfig` — the structured event log and its optional
  SQLite persistence (:mod:`repro.observability`);
* :class:`TracingConfig` — per-request span trees with coalescing-aware
  attribution and tail-exemplar sampling (:mod:`repro.observability.tracing`;
  requires observability);
* :class:`InferenceConfig` — reference ``Tensor`` inference vs a compiled
  :class:`repro.serving.InferencePlan`, and the compiled plan's slab dtype;
* :class:`ArtifactConfig` — durable snapshot bundles (:mod:`repro.artifacts`):
  where the generational store lives, and whether builds and adaptation
  promotes persist their model/pool/config state for cold-start boots;
* :class:`ClusterConfig` — the sharded multi-process serving cluster
  (:mod:`repro.cluster`): ``mode="cluster"`` makes the same
  :class:`~repro.serving.ServingClient` spawn worker processes (one pool
  slice per FROM-signature shard) behind an asyncio router instead of
  building the in-process stack.

Every section validates its bounds at construction (``max_batch=0``,
``max_cache_entries=-1`` and friends raise a ``ValueError`` here, not
obscurely at first use), and the top-level config validates cross-section
requirements (adaptation needs feedback, a training result, and a database
snapshot).

The scalar sections round-trip through plain dicts/JSON:
``ServingConfig.from_mapping(config.to_mapping(), model=..., featurizer=...,
pool=...)`` reconstructs an equal config — runtime objects (the model, the
featurizer, the pool, estimator instances, training state) are passed
alongside the mapping, since they have no serial form.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Mapping

from repro.core.crn import CRNModel
from repro.core.featurization import QueryFeaturizer
from repro.core.final_functions import FINAL_FUNCTIONS, FinalFunction
from repro.core.queries_pool import QueriesPool
from repro.core.training import TrainingResult
from repro.db.database import Database

__all__ = [
    "AdaptationConfig",
    "ArtifactConfig",
    "CacheConfig",
    "ClusterConfig",
    "DispatcherConfig",
    "EstimatorConfig",
    "FeedbackConfig",
    "InferenceConfig",
    "ObservabilityConfig",
    "PoolConfig",
    "ServingConfig",
    "TracingConfig",
]

#: Mapping keys of the declarative sections, in rendering order (populated
#: from ``_SECTION_SPECS`` below, the single source of truth).
_SECTIONS: tuple[str, ...] = ()


def _positive(name: str, value: float) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def _bound(name: str, value: int | None) -> None:
    """Validate an optional LRU bound: positive, or None for unbounded."""
    if value is None:
        return
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError(f"{name} must be an int or None, got {value!r}")
    if value <= 0:
        raise ValueError(
            f"{name} must be positive (or None for unbounded), got {value}"
        )


@dataclass(frozen=True)
class EstimatorConfig:
    """The Cnt2Crd-over-CRN serving estimator.

    Attributes:
        name: registry name of the default estimator.
        fallback_name: registry name the fallback estimator (when one is
            supplied to :class:`ServingConfig`) is registered under.
        final_function: the Cnt2Crd final function ``F`` — a name from
            :mod:`repro.core.final_functions` (``median`` / ``mean`` /
            ``trimmed_mean``).  A bare callable is accepted for parity with
            the legacy constructor but cannot be serialized by
            :meth:`ServingConfig.to_mapping`.
        epsilon: the Cnt2Crd ``y_rate`` guard threshold.
        batch_size: pair-head slab size for the batched forward passes.
    """

    name: str = "crn"
    fallback_name: str = "fallback"
    final_function: str | FinalFunction = "median"
    epsilon: float = 1e-3
    batch_size: int = 256

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("estimator name must be non-empty")
        if not self.fallback_name:
            raise ValueError("fallback_name must be non-empty")
        if self.name == self.fallback_name:
            raise ValueError(
                f"estimator name and fallback_name are both {self.name!r}; "
                f"registry entries need distinct names"
            )
        if isinstance(self.final_function, str) and self.final_function not in FINAL_FUNCTIONS:
            raise ValueError(
                f"unknown final function {self.final_function!r}; "
                f"available: {sorted(FINAL_FUNCTIONS)}"
            )
        _positive("epsilon", self.epsilon)
        _positive("batch_size", self.batch_size)


@dataclass(frozen=True)
class PoolConfig:
    """Pool warming and the pool encoding index.

    Attributes:
        warm: pre-featurize/encode all pool queries at build time (and
            pre-build the index's slabs), so steady state is reached before
            the first request.
        use_index: keep per-FROM-signature pool encoding matrices
            (:class:`repro.serving.PoolEncodingIndex`) so a request is scored
            as one vectorized whole-pool slab pass.
    """

    warm: bool = True
    use_index: bool = True


@dataclass(frozen=True)
class CacheConfig:
    """LRU bounds of the shared featurization / encoding caches.

    The encoding cache holds **two** entries per query (one per pair slot),
    so a deployment bounding both caches for ``N`` queries needs ``2·N``
    encoding entries or warming the pool would immediately evict half of it.
    The legacy ``build_crn_service(max_cache_entries=N)`` applied that ``2×``
    silently; here it is the documented default — an unset
    ``max_encoding_entries`` resolves to ``2 × max_featurization_entries`` —
    and an explicit value is taken as given.

    Attributes:
        max_featurization_entries: LRU bound on cached featurizations
            (None = unbounded).
        max_encoding_entries: LRU bound on cached encodings (None = derive
            from ``max_featurization_entries`` as above; unbounded when that
            is unbounded too).
    """

    max_featurization_entries: int | None = None
    max_encoding_entries: int | None = None

    def __post_init__(self) -> None:
        _bound("max_featurization_entries", self.max_featurization_entries)
        _bound("max_encoding_entries", self.max_encoding_entries)

    def resolved_encoding_entries(self) -> int | None:
        """The effective encoding-cache bound (the ``2×`` rule applied)."""
        if self.max_encoding_entries is not None:
            return self.max_encoding_entries
        if self.max_featurization_entries is not None:
            return 2 * self.max_featurization_entries
        return None


@dataclass(frozen=True)
class DispatcherConfig:
    """The request-coalescing dispatcher front-end.

    Attributes:
        enabled: run a :class:`repro.serving.ServingDispatcher` inside the
            client (required for ``estimate_future`` and per-request
            deadlines).
        max_batch: most requests coalesced into one service submission.
        max_wait_ms: how long the dispatcher waits for stragglers after the
            first request of a batch arrives.
    """

    enabled: bool = True
    max_batch: int = 64
    max_wait_ms: float = 2.0

    def __post_init__(self) -> None:
        _positive("max_batch", self.max_batch)
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be non-negative, got {self.max_wait_ms!r}")


@dataclass(frozen=True)
class FeedbackConfig:
    """The rolling (estimate, true cardinality) feedback window.

    Attributes:
        enabled: attach a :class:`repro.serving.FeedbackCollector` to the
            client (required by adaptation).
        max_observations: window bound.
        epsilon: q-error zero-guard.
    """

    enabled: bool = False
    max_observations: int = 1024
    epsilon: float = 1.0

    def __post_init__(self) -> None:
        _positive("max_observations", self.max_observations)
        _positive("epsilon", self.epsilon)


@dataclass(frozen=True)
class ObservabilityConfig:
    """The structured event log (:mod:`repro.observability`).

    Attributes:
        enabled: attach an :class:`repro.observability.EventRecorder` to the
            stack (service, dispatcher, pool index, feedback collector, and
            the adaptation manager all emit through it).
        capacity: the recorder's bounded-buffer size; overflow drops the
            oldest events (counted in ``events_dropped``).
        sqlite_path: persistent :class:`repro.observability.EventStore`
            location — ``None`` keeps the store in memory (``":memory:"``),
            which still gives dedup and the aggregate views for the
            process's lifetime.
        source: the store's dedup identity for this recorder's events; two
            clients flushing into one SQLite file need distinct sources.
    """

    enabled: bool = False
    capacity: int = 8192
    sqlite_path: str | None = None
    source: str = "serving"

    def __post_init__(self) -> None:
        _positive("capacity", self.capacity)
        if not self.source:
            raise ValueError("observability source must be non-empty")


@dataclass(frozen=True)
class TracingConfig:
    """Per-request distributed tracing (:mod:`repro.observability.tracing`).

    Requires observability: spans sink through the same recorder and land in
    the event store's ``spans`` / ``span_links`` tables, so enabling tracing
    without :attr:`ObservabilityConfig.enabled` is a config error.

    Attributes:
        enabled: attach a :class:`repro.observability.Tracer` to the stack
            (service, dispatcher, pool index, and the adaptation manager all
            emit spans through it).  Off by default: the disabled cost is
            one ``tracer is None`` test per instrumentation point.
        sample_every: keep every N-th finished request trace (head
            sampling); 1 keeps every trace, 0 keeps only tail exemplars.
            Shared batch/kernel spans are always recorded regardless.
        tail_quantile: requests at least one histogram bucket slower than
            this quantile of the tracer's live latency histogram are kept in
            full regardless of head sampling, so the slowest requests always
            have a trace.  Ties with the bulk (a coalesced batch stamps one
            latency on all members) are left to head sampling.
        min_tail_observations: finished requests required before the tail
            threshold is trusted (a request strictly slower than everything
            before it is kept unconditionally even before that).
    """

    enabled: bool = False
    sample_every: int = 1
    tail_quantile: float = 0.95
    min_tail_observations: int = 32

    def __post_init__(self) -> None:
        if self.sample_every < 0:
            raise ValueError(
                f"sample_every must be non-negative, got {self.sample_every!r}"
            )
        if not 0.0 < self.tail_quantile <= 1.0:
            raise ValueError(
                f"tail_quantile must lie in (0, 1], got {self.tail_quantile!r}"
            )
        if self.min_tail_observations < 0:
            raise ValueError(
                f"min_tail_observations must be non-negative, "
                f"got {self.min_tail_observations!r}"
            )


#: Inference execution modes.
INFERENCE_MODES = ("reference", "compiled")
#: Slab dtypes the compiled mode can negotiate with the pool index.
SLAB_DTYPES = ("float64", "float32")


@dataclass(frozen=True)
class InferenceConfig:
    """How the stack runs pair-head inference.

    Attributes:
        mode: ``"reference"`` runs the autodiff ``Tensor`` path (bit-exact
            baseline, always float64); ``"compiled"`` freezes the model into
            an :class:`repro.serving.InferencePlan` of fused NumPy kernels
            at build time and recompiles it on every adaptation promote.
        slab_dtype: the compiled plan's execution dtype.  ``"float64"`` is
            bit-identical to the reference path (pure overhead removal);
            ``"float32"`` additionally negotiates float32 mirror slabs with
            the pool encoding index and runs fused variable-row passes —
            fastest, with estimates within ``tolerance`` of the reference.
        tolerance: the documented q-error bound of ``float32`` estimates
            relative to the reference path (see ``docs/architecture.md``);
            carried on the plan for events/stats and checked by the property
            tests.  Ignored in ``float64`` modes.
    """

    mode: str = "reference"
    slab_dtype: str = "float64"
    tolerance: float = 1e-3

    def __post_init__(self) -> None:
        if self.mode not in INFERENCE_MODES:
            raise ValueError(
                f"inference mode must be one of {INFERENCE_MODES}, got {self.mode!r}"
            )
        if self.slab_dtype not in SLAB_DTYPES:
            raise ValueError(
                f"slab_dtype must be one of {SLAB_DTYPES}, got {self.slab_dtype!r}"
            )
        _positive("tolerance", self.tolerance)
        if self.mode == "reference" and self.slab_dtype != "float64":
            raise ValueError(
                "reference mode always runs float64; set mode='compiled' to "
                "use float32 slabs"
            )


@dataclass(frozen=True)
class AdaptationConfig:
    """Drift monitoring and background retraining.

    The drift fields mirror :class:`repro.serving.DriftPolicy`, the retrain
    fields mirror :class:`repro.serving.CRNRetrainer`, and the gate fields
    mirror :class:`repro.serving.AdaptationManager` — see those classes for
    semantics.  Enabling adaptation requires the owning
    :class:`ServingConfig` to carry ``training_result`` and ``database`` and
    to enable feedback.
    """

    enabled: bool = False
    # DriftPolicy
    quantile: float = 0.9
    max_q_error: float | None = 10.0
    degradation_ratio: float | None = 2.0
    max_row_delta: float | None = None
    min_observations: int = 20
    cooldown_seconds: float = 60.0
    # AdaptationManager
    poll_interval_seconds: float = 1.0
    holdout_size: int = 16
    accept_ratio: float = 1.0
    max_incremental_failures: int = 2
    warm_on_swap: bool = True
    # CRNRetrainer
    training_pairs: int = 120
    incremental_epochs: int = 4
    full_epochs: int = 8
    seed: int = 1

    def __post_init__(self) -> None:
        self.drift_policy()  # DriftPolicy validates the drift fields
        _positive("poll_interval_seconds", self.poll_interval_seconds)
        _positive("holdout_size", self.holdout_size)
        _positive("accept_ratio", self.accept_ratio)
        if self.max_incremental_failures < 0:
            raise ValueError(
                f"max_incremental_failures must be non-negative, "
                f"got {self.max_incremental_failures!r}"
            )
        _positive("training_pairs", self.training_pairs)
        _positive("incremental_epochs", self.incremental_epochs)
        _positive("full_epochs", self.full_epochs)

    def drift_policy(self):
        """The :class:`repro.serving.DriftPolicy` these fields describe."""
        from repro.serving.lifecycle import DriftPolicy

        return DriftPolicy(
            quantile=self.quantile,
            max_q_error=self.max_q_error,
            degradation_ratio=self.degradation_ratio,
            max_row_delta=self.max_row_delta,
            min_observations=self.min_observations,
            cooldown_seconds=self.cooldown_seconds,
        )


@dataclass(frozen=True)
class ArtifactConfig:
    """Durable snapshot bundles and the generational artifact store.

    When :attr:`root` is set, the client owns an
    :class:`repro.artifacts.ArtifactStore` there: builds and adaptation
    promotes can persist complete snapshot bundles (weights, pool, config,
    index metadata) that a later process boots from via
    :meth:`repro.serving.ServingClient.from_artifact` — no retraining.

    Attributes:
        root: the store's directory (created when missing).  ``None`` — the
            default — disables artifact persistence entirely; the rest of
            the section is inert.
        save_on_build: persist the freshly built stack as a bundle under its
            registry generation as soon as :class:`ServingClient` finishes
            wiring it, so even a never-adapted deployment has a cold-start
            snapshot.
        save_on_promote: persist every adaptation-accepted candidate as a
            new bundle keyed by the generation its swap produced.  A failed
            promote persists nothing (the save runs strictly after the
            registry swap commits).
        promote_on_save: saved bundles also re-point the store's ``latest``
            pointer, so "boot from latest" always means the newest accepted
            model.  Disable to stage bundles for an explicit
            ``artifact_tool.py promote``.
    """

    root: str | None = None
    save_on_build: bool = True
    save_on_promote: bool = True
    promote_on_save: bool = True

    def __post_init__(self) -> None:
        if self.root is not None and not str(self.root):
            raise ValueError("artifact root must be a non-empty path or None")

    @property
    def enabled(self) -> bool:
        """Whether this deployment persists artifacts at all."""
        return self.root is not None


#: The serving execution modes: in-process stack vs sharded worker cluster.
CLUSTER_MODES = ("local", "cluster")


@dataclass(frozen=True)
class ClusterConfig:
    """The sharded multi-process serving cluster (:mod:`repro.cluster`).

    With ``mode="cluster"``, :class:`repro.serving.ServingClient` builds no
    in-process stack: it spawns ``num_workers`` worker processes — each
    owning the pool slice of its assigned FROM-signatures and serving the
    length-prefixed JSON wire protocol over loopback TCP — plus an asyncio
    router and a supervisor that restarts dead workers from the promoted
    artifact generation.  ``mode="local"`` (the default) leaves everything
    exactly as before; the section is inert.

    Attributes:
        mode: ``"local"`` (in-process stack) or ``"cluster"`` (sharded
            worker processes behind the router).
        num_workers: worker processes to spawn; FROM-signatures are
            round-robin assigned across them in sorted order.
        host: interface the workers and the control server bind (loopback by
            default; the cluster is a single-machine scale-out, not a
            distributed system).
        worker_threads: concurrent request-handler threads per worker —
            requests received concurrently coalesce in the worker's own
            dispatcher.
        request_timeout_seconds: router-side cap on any single roundtrip
            that carries no caller deadline (a dead cluster must fail
            typed, never hang).
        connect_timeout_seconds: cap on one TCP connect to a worker.
        retry_attempts: times the router re-tries a roundtrip after a lost
            connection before raising
            :class:`repro.serving.WorkerUnavailableError`.  Estimates are
            pure reads, so a retry can never double-apply anything.
        retry_backoff_seconds: linear backoff between those attempts.
        deadline_grace_seconds: added to a caller's ``timeout_seconds`` for
            the router-side guard, so the worker's own
            :class:`repro.serving.DeadlineExceededError` (which carries the
            authoritative message) usually wins the race.
        boot_timeout_seconds: how long the supervisor waits for a spawned
            worker's ready handshake.
        poll_interval_seconds: supervisor liveness-poll cadence.
        max_restarts: crash-restarts the supervisor attempts per shard
            before marking it failed.
        drain_timeout_seconds: how long a graceful drain waits for in-flight
            requests before the worker is terminated.
        runtime_dir: directory for the cluster runtime file
            (``cluster.json``: control address + worker map) that
            ``scripts/cluster_tool.py`` reads; ``None`` writes no file.
    """

    mode: str = "local"
    num_workers: int = 2
    host: str = "127.0.0.1"
    worker_threads: int = 4
    request_timeout_seconds: float = 30.0
    connect_timeout_seconds: float = 5.0
    retry_attempts: int = 2
    retry_backoff_seconds: float = 0.05
    deadline_grace_seconds: float = 0.5
    boot_timeout_seconds: float = 60.0
    poll_interval_seconds: float = 0.25
    max_restarts: int = 5
    drain_timeout_seconds: float = 10.0
    runtime_dir: str | None = None

    def __post_init__(self) -> None:
        if self.mode not in CLUSTER_MODES:
            raise ValueError(
                f"cluster mode must be one of {CLUSTER_MODES}, got {self.mode!r}"
            )
        if not self.host:
            raise ValueError("cluster host must be non-empty")
        _positive("num_workers", self.num_workers)
        _positive("worker_threads", self.worker_threads)
        _positive("request_timeout_seconds", self.request_timeout_seconds)
        _positive("connect_timeout_seconds", self.connect_timeout_seconds)
        _positive("boot_timeout_seconds", self.boot_timeout_seconds)
        _positive("poll_interval_seconds", self.poll_interval_seconds)
        _positive("drain_timeout_seconds", self.drain_timeout_seconds)
        if self.retry_attempts < 0:
            raise ValueError(
                f"retry_attempts must be non-negative, got {self.retry_attempts!r}"
            )
        if self.retry_backoff_seconds < 0:
            raise ValueError(
                f"retry_backoff_seconds must be non-negative, "
                f"got {self.retry_backoff_seconds!r}"
            )
        if self.deadline_grace_seconds < 0:
            raise ValueError(
                f"deadline_grace_seconds must be non-negative, "
                f"got {self.deadline_grace_seconds!r}"
            )
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be non-negative, got {self.max_restarts!r}"
            )
        if self.runtime_dir is not None and not str(self.runtime_dir):
            raise ValueError("cluster runtime_dir must be a non-empty path or None")

    @property
    def enabled(self) -> bool:
        """Whether this deployment serves through the sharded cluster."""
        return self.mode == "cluster"


#: The single source of truth for the declarative sections:
#: ``(mapping key, section dataclass, ServingConfig attribute)``.  The
#: section order, :meth:`ServingConfig.to_mapping`, and
#: :meth:`ServingConfig.from_mapping` all derive from this table, so adding a
#: section is one entry plus the field — not three hand-synced lists.
_SECTION_SPECS: tuple[tuple[str, type, str], ...] = (
    ("estimator", EstimatorConfig, "estimator"),
    ("pool", PoolConfig, "pool_options"),
    ("caches", CacheConfig, "caches"),
    ("dispatcher", DispatcherConfig, "dispatcher"),
    ("feedback", FeedbackConfig, "feedback"),
    ("adaptation", AdaptationConfig, "adaptation"),
    ("observability", ObservabilityConfig, "observability"),
    ("tracing", TracingConfig, "tracing"),
    ("inference", InferenceConfig, "inference"),
    ("artifacts", ArtifactConfig, "artifacts"),
    ("cluster", ClusterConfig, "cluster"),
)
_SECTIONS = tuple(key for key, _, _ in _SECTION_SPECS)


@dataclass(frozen=True)
class ServingConfig:
    """One frozen description of a serving deployment.

    The required runtime objects (model, featurizer, pool) and the optional
    ones (fallback / extra estimators, training state for adaptation, a
    ground-truth oracle for feedback) live alongside the declarative
    sections; :meth:`to_mapping` serializes only the sections, and
    :meth:`from_mapping` re-attaches the runtime objects.

    Attributes:
        model: a (trained) CRN network.
        featurizer: the featurizer bound to the serving database snapshot.
        pool: the queries pool backing the Cnt2Crd technique.
        fallback_estimator: answers requests with no matching pool query
            (registered under ``estimator.fallback_name``).
        extra_estimators: additional registry entries, name → estimator.
        training_result: the training run that produced ``model`` — required
            when adaptation is enabled (the retrainer fine-tunes from it).
        database: the snapshot ``model`` was trained against — required when
            adaptation is enabled (candidates are labelled against it).
        oracle: optional ground-truth source (``cardinality(query)``) the
            feedback collector uses when callers do not supply actuals.
    """

    model: CRNModel
    featurizer: QueryFeaturizer
    pool: QueriesPool
    fallback_estimator: Any | None = None
    extra_estimators: Mapping[str, Any] = field(default_factory=dict)
    training_result: TrainingResult | None = None
    database: Database | None = None
    oracle: Any | None = None
    estimator: EstimatorConfig = field(default_factory=EstimatorConfig)
    pool_options: PoolConfig = field(default_factory=PoolConfig)
    caches: CacheConfig = field(default_factory=CacheConfig)
    dispatcher: DispatcherConfig = field(default_factory=DispatcherConfig)
    feedback: FeedbackConfig = field(default_factory=FeedbackConfig)
    adaptation: AdaptationConfig = field(default_factory=AdaptationConfig)
    observability: ObservabilityConfig = field(default_factory=ObservabilityConfig)
    tracing: TracingConfig = field(default_factory=TracingConfig)
    inference: InferenceConfig = field(default_factory=InferenceConfig)
    artifacts: ArtifactConfig = field(default_factory=ArtifactConfig)
    cluster: ClusterConfig = field(default_factory=ClusterConfig)

    def __post_init__(self) -> None:
        object.__setattr__(self, "extra_estimators", dict(self.extra_estimators))
        # fallback_name is only reserved when something will actually be
        # registered under it — the legacy constructor accepted an extra
        # estimator named "fallback" when no fallback estimator was supplied.
        reserved = {self.estimator.name}
        if self.fallback_estimator is not None:
            reserved.add(self.estimator.fallback_name)
        for name in self.extra_estimators:
            if not name:
                raise ValueError("extra estimator names must be non-empty")
            if name in reserved:
                raise ValueError(
                    f"extra estimator name {name!r} collides with a reserved "
                    f"registry name ({sorted(reserved)})"
                )
        if self.tracing.enabled and not self.observability.enabled:
            raise ValueError(
                "tracing.enabled requires observability.enabled: spans sink "
                "through the event recorder into the store's spans tables"
            )
        if self.adaptation.enabled:
            if not self.feedback.enabled:
                raise ValueError(
                    "adaptation.enabled requires feedback.enabled: the drift "
                    "monitor and the accept gate read the feedback window"
                )
            if self.training_result is None or self.database is None:
                raise ValueError(
                    "adaptation.enabled requires training_result and database: "
                    "the retrainer fine-tunes the accepted weights against the "
                    "current snapshot"
                )
            if self.feedback.max_observations < self.adaptation.min_observations:
                raise ValueError(
                    f"feedback.max_observations ({self.feedback.max_observations}) is "
                    f"smaller than adaptation.min_observations "
                    f"({self.adaptation.min_observations}): the drift conditions "
                    f"could never arm"
                )
        if self.cluster.enabled:
            if self.adaptation.enabled:
                raise ValueError(
                    "cluster mode does not support adaptation.enabled: hot "
                    "swaps are per-process, so sharded workers would diverge; "
                    "adapt in a local-mode deployment and promote the artifact "
                    "generation the cluster boots from"
                )
            if self.feedback.enabled:
                raise ValueError(
                    "cluster mode does not support feedback.enabled: the "
                    "feedback window lives in the worker processes, not the "
                    "front-end; collect feedback in a local-mode deployment"
                )
            if self.artifacts.enabled and self.database is None:
                raise ValueError(
                    "cluster mode with artifacts needs database: workers "
                    "cold-boot their shard via ServingClient.from_artifact, "
                    "which rebuilds the featurizer from the database schema"
                )

    # ------------------------------------------------------------------ #
    # dict/JSON round-trip

    def to_mapping(self) -> dict[str, dict[str, Any]]:
        """The declarative sections as a nested plain dict (JSON-ready).

        Raises:
            ValueError: when ``estimator.final_function`` is a bare callable
                — name it (``median`` / ``mean`` / ``trimmed_mean``) to make
                the config serializable.
        """
        mapping: dict[str, dict[str, Any]] = {}
        for key, _, attribute in _SECTION_SPECS:
            section = getattr(self, attribute)
            if key == "estimator" and not isinstance(section.final_function, str):
                named = next(
                    (
                        name
                        for name, function in FINAL_FUNCTIONS.items()
                        if function is section.final_function
                    ),
                    None,
                )
                if named is None:
                    raise ValueError(
                        "cannot serialize a config whose final_function is a "
                        "bare callable; use a registered name from "
                        "repro.core.final_functions"
                    )
                section = replace(section, final_function=named)
            mapping[key] = asdict(section)
        return mapping

    @classmethod
    def from_mapping(
        cls,
        mapping: Mapping[str, Mapping[str, Any]],
        *,
        model: CRNModel,
        featurizer: QueryFeaturizer,
        pool: QueriesPool,
        fallback_estimator: Any | None = None,
        extra_estimators: Mapping[str, Any] | None = None,
        training_result: TrainingResult | None = None,
        database: Database | None = None,
        oracle: Any | None = None,
    ) -> "ServingConfig":
        """Rebuild a config from :meth:`to_mapping` output plus runtime objects.

        Missing sections and missing fields take their defaults; unknown
        sections and unknown fields raise a ``ValueError`` naming them (a
        typo in a deployment config must not silently become a default).
        """
        unknown = sorted(set(mapping) - set(_SECTIONS))
        if unknown:
            raise ValueError(
                f"unknown config section(s) {unknown}; expected a subset of "
                f"{list(_SECTIONS)}"
            )
        sections: dict[str, Any] = {}
        for key, section_type, attribute in _SECTION_SPECS:
            values = dict(mapping.get(key, {}))
            known = {spec.name for spec in fields(section_type)}
            bad = sorted(set(values) - known)
            if bad:
                raise ValueError(
                    f"unknown field(s) {bad} in config section {key!r}; "
                    f"expected a subset of {sorted(known)}"
                )
            sections[attribute] = section_type(**values)
        return cls(
            model=model,
            featurizer=featurizer,
            pool=pool,
            fallback_estimator=fallback_estimator,
            extra_estimators=extra_estimators or {},
            training_result=training_result,
            database=database,
            oracle=oracle,
            **sections,
        )
