"""The pool-resident encoding index: whole-pool Cnt2Crd scoring without lookups.

The Cnt2Crd technique scores one incoming query against *every* matching pool
query, so a request over a bucket with ``E`` eligible entries needs ``2·E``
containment rates.  The per-request path pays, per request, ``2·E`` Python
pair tuples, ``2·E`` dict-keyed encoding-cache lookups (three lock
acquisitions each), and a ``2·E``-row ``np.stack`` — even though the pool
side of every pair is *identical* across all requests sharing a FROM
signature.

:class:`PoolEncodingIndex` hoists that invariant work out of the request
path.  Per ``(featurizer-snapshot scope, FROM signature)`` it keeps two
contiguous ``(E, H)`` matrices of pool-query encodings — one per pair slot,
row ``i`` belonging to eligible entry ``i`` — maintained incrementally:

* a :meth:`repro.core.queries_pool.QueriesPool.add` bumps the bucket's
  version; the next request appends only the new tail rows (the matrices
  grow geometrically, so appends are amortized O(1));
* a cardinality *update* (re-adding an existing query) rebuilds the bucket's
  slab — cheap, because the per-query encodings come straight back out of
  the shared :class:`repro.serving.EncodingCache`;
* a featurizer rebind changes the scope, so stale-snapshot slabs simply stop
  matching (exactly the :class:`~repro.serving.EncodingCache` keying rule).

A request is then served as *encode Qnew once → two strided writes → the
fixed-shape slab path* (:meth:`repro.core.crn.CRNModel.rates_against_pool`):
no per-pair Python work at all, and — because the assembled rows are exactly
the rows the per-request path would have stacked, in the same order —
**bit-for-bit identical** estimates.

Owner fencing mirrors :class:`~repro.serving.EncodingCache`: the index is
bound to the model whose weights produced its rows, :meth:`rebind`
atomically drops every slab and re-ties it (optionally retargeting a
refreshed pool), and :meth:`resolve` returns ``None`` — never stale rows —
for an estimator whose model is not the bound owner.  Callers treat ``None``
as "use the legacy per-pair path", so a lifecycle hot swap mid-traffic
degrades in-flight old-model requests to the slow path instead of ever
mixing two models' encodings.  The :class:`repro.serving.AdaptationManager`
rebinds and re-warms the index with the candidate model *before* the
registry swap, so the first post-swap request pays no re-encoding stall.

Thread safety: one index lock guards the owner fence *and* the slab store as
a unit (see the constructor comment for why they cannot be split), and long
holders release it between signatures.  Returned :class:`IndexedSlab` views
are snapshots — appends write past the snapshot's row count and rebuilds
allocate fresh matrices, so rows handed to an in-flight request are never
mutated under it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.core.crn import CRNEstimator
from repro.core.queries_pool import PoolEntry, QueriesPool
from repro.sql.query import Query


@dataclass(frozen=True)
class IndexedSlab:
    """One resolved per-signature scoring slab, handed to the serving path.

    Attributes:
        entries: the eligible pool entries, in bucket insertion order; row
            ``i`` of both matrices encodes ``entries[i].query``.
        first: ``(len(entries), H)`` position-1 encodings (the pool query as
            the *first* element of its ``(Qold, Qnew)`` x-rate pair).  A
            read-only view into index-owned storage — do not mutate.
        second: ``(len(entries), H)`` position-2 encodings (the pool query as
            the *second* element of its ``(Qnew, Qold)`` y-rate pair).
        cardinalities: ``(len(entries),)`` float64 entry cardinalities, row-
            aligned with the matrices — precomputed so the per-request
            estimate math needs no Python loop over the entries at all.
        token: a hashable identity of this slab state (scope, signature,
            version, row count); two resolves with equal tokens carry
            identical rows, so batched callers deduplicate rate computation
            on ``(query, token)``.
        first_f32: ``None``, or a float32 mirror of ``first`` when the index
            has negotiated a float32 layout with a compiled inference plan
            (:meth:`PoolEncodingIndex.negotiate_dtype`) — the plan's fused
            float32 pass reads these rows cast-free.  The float64 matrices
            above stay canonical either way: reference-mode estimators and
            bit-exact float64 plans resolved against the same index are
            unaffected by the negotiation.
        second_f32: float32 mirror of ``second``, same contract.
    """

    entries: tuple[PoolEntry, ...]
    first: np.ndarray
    second: np.ndarray
    cardinalities: np.ndarray
    token: tuple
    first_f32: np.ndarray | None = None
    second_f32: np.ndarray | None = None


class _Slab:
    """Mutable per-(scope, signature) storage with geometric growth.

    The float64 matrices are canonical.  When ``mirror`` is set the slab also
    keeps float32 copies of both matrices, maintained row-for-row alongside
    the canonical writes, so a float32 inference plan reads pre-cast rows.
    """

    __slots__ = ("entries", "first", "second", "first_f32", "second_f32", "cardinalities", "version")

    def __init__(self, hidden: int, capacity: int, mirror: bool = False) -> None:
        self.entries: tuple[PoolEntry, ...] = ()
        self.first = np.empty((capacity, hidden), dtype=np.float64)
        self.second = np.empty((capacity, hidden), dtype=np.float64)
        self.first_f32 = np.empty((capacity, hidden), dtype=np.float32) if mirror else None
        self.second_f32 = np.empty((capacity, hidden), dtype=np.float32) if mirror else None
        self.cardinalities = np.empty(capacity, dtype=np.float64)
        self.version = -1

    @property
    def count(self) -> int:
        return len(self.entries)

    def set_row(self, offset: int, first_row: np.ndarray, second_row: np.ndarray) -> None:
        """Write one entry's encodings (and their mirrors, when negotiated)."""
        self.first[offset] = first_row
        self.second[offset] = second_row
        if self.first_f32 is not None:
            self.first_f32[offset] = first_row
            self.second_f32[offset] = second_row

    def ensure_capacity(self, rows: int) -> None:
        """Grow the matrices to hold ``rows`` rows (doubling, amortized O(1)).

        Growth reallocates instead of resizing in place: an in-flight request
        may still hold views into the old matrices, and those rows must stay
        exactly what its resolve returned.
        """
        capacity = self.first.shape[0]
        if rows <= capacity:
            return
        while capacity < rows:
            capacity *= 2
        grown_first = np.empty((capacity, self.first.shape[1]), dtype=np.float64)
        grown_second = np.empty((capacity, self.second.shape[1]), dtype=np.float64)
        grown_cardinalities = np.empty(capacity, dtype=np.float64)
        grown_first[: self.count] = self.first[: self.count]
        grown_second[: self.count] = self.second[: self.count]
        grown_cardinalities[: self.count] = self.cardinalities[: self.count]
        if self.first_f32 is not None:
            grown_first32 = np.empty((capacity, self.first.shape[1]), dtype=np.float32)
            grown_second32 = np.empty((capacity, self.second.shape[1]), dtype=np.float32)
            grown_first32[: self.count] = self.first_f32[: self.count]
            grown_second32[: self.count] = self.second_f32[: self.count]
            self.first_f32 = grown_first32
            self.second_f32 = grown_second32
        self.first = grown_first
        self.second = grown_second
        self.cardinalities = grown_cardinalities


class PoolIndexStats:
    """Thread-safe counters describing the index's maintenance and use."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.served = 0
        self.fallbacks = 0
        self.builds = 0
        self.rebuilds = 0
        self.appended_rows = 0

    def record_served(self) -> None:
        """Count one request resolved from the index."""
        with self._lock:
            self.served += 1

    def record_fallback(self) -> None:
        """Count one resolve the fence (or estimator shape) turned away."""
        with self._lock:
            self.fallbacks += 1

    def record_build(self, rows: int, rebuild: bool) -> None:
        """Count one slab (re)build of ``rows`` encoded rows."""
        with self._lock:
            if rebuild:
                self.rebuilds += 1
            else:
                self.builds += 1

    def record_appended(self, rows: int) -> None:
        """Count ``rows`` incrementally appended slab rows."""
        with self._lock:
            self.appended_rows += rows

    def snapshot(self) -> dict[str, float]:
        """A plain-dict counter view (gauges are added by the index)."""
        with self._lock:
            return {
                "pool_index_served": float(self.served),
                "pool_index_fallbacks": float(self.fallbacks),
                "pool_index_builds": float(self.builds),
                "pool_index_rebuilds": float(self.rebuilds),
                "pool_index_appended_rows": float(self.appended_rows),
            }


class PoolEncodingIndex:
    """Per-FROM-signature pool encoding matrices for whole-pool Cnt2Crd scoring.

    Args:
        pool: the queries pool whose buckets the index mirrors.  A lifecycle
            promote retargets it with :meth:`rebind`.
        initial_capacity: starting row capacity of a fresh slab (grows
            geometrically).
    """

    def __init__(self, pool: QueriesPool, initial_capacity: int = 8) -> None:
        if initial_capacity <= 0:
            raise ValueError("initial_capacity must be positive")
        self.pool = pool
        self.stats = PoolIndexStats()
        # Optional observability hook (repro.observability.EventRecorder):
        # when set, every slab build / rebuild / append emits an IndexBuild
        # event.  Emission is a single deque append, safe under the index
        # lock.  The client wires this; None costs one attribute test.
        self.recorder = None
        # Optional tracing hook (repro.observability.Tracer): when set, slab
        # builds that do real work additionally record an ``index_build``
        # span — nested under the in-flight request's ``plan`` span when one
        # is open on this thread, standalone during warm-up.
        self.tracer = None
        self._initial_capacity = initial_capacity
        self._slabs: dict[tuple, _Slab] = {}
        # Negotiated slab layout (see negotiate_dtype): None keeps the
        # canonical float64-only slabs; float32 adds mirror matrices.  The
        # negotiation survives rebind — it is a property of how the serving
        # stack runs inference, not of which model owns the rows.
        self._mirror_dtype: np.dtype | None = None
        # One lock guards the owner fence AND the slab store: the fence
        # check and the slab read/build must be a single unit, or a reader
        # could pass the fence, lose the CPU to a rebind, and then rebuild a
        # slab with the *old* model's rows under a key the new model would
        # read (two models over the same snapshot share the scope).  Long
        # holders (:meth:`warm`) release between signatures, so a fenced-out
        # reader waits at most one bucket's sync, never a whole-pool build.
        self._owner: object | None = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # owner fence (mirrors EncodingCache)

    def bind(self, owner: object) -> None:
        """Tie this index to the model whose weights produce its rows."""
        with self._lock:
            if self._owner is None:
                self._owner = owner
            elif self._owner is not owner:
                raise ValueError(
                    "PoolEncodingIndex is already bound to a different model; "
                    "encodings are model-specific, use one index per model (or "
                    "rebind() to hot-swap a retrained model)"
                )

    def rebind(self, owner: object, pool: QueriesPool | None = None) -> None:
        """Atomically drop every slab and tie the index to a new model.

        This is the hot-swap path: the lifecycle calls it with the candidate
        model (and the refreshed pool) *before* building the replacement
        estimator, then re-warms, so the swapped-in model never sees the
        outgoing model's rows and the first post-swap request hits warm
        slabs.  Stale readers are fenced exactly like
        :meth:`repro.serving.EncodingCache.rebind` fences writers: an
        in-flight request on the old model resolves ``None`` and takes the
        legacy path instead of observing the swap partially.
        """
        with self._lock:
            self._slabs.clear()
            if pool is not None:
                self.pool = pool
            self._owner = owner

    def negotiate_dtype(self, dtype) -> None:
        """Negotiate the slab layout with a compiled inference plan.

        ``float64`` (the default) keeps the canonical slabs only; ``float32``
        makes every slab additionally maintain float32 mirror matrices that
        a float32 :class:`repro.serving.InferencePlan` reads cast-free.  The
        canonical float64 rows are kept either way, so reference-mode and
        bit-exact float64 consumers of the same index are unaffected.

        Changing the layout drops existing slabs (they rebuild lazily, out
        of the encoding cache, on the next resolve).  The negotiated layout
        deliberately survives :meth:`rebind`: a lifecycle hot swap replaces
        the model, not the serving stack's inference mode.
        """
        dtype = np.dtype(dtype)
        if dtype == np.dtype(np.float64):
            target = None
        elif dtype == np.dtype(np.float32):
            target = dtype
        else:
            raise ValueError(f"slab dtype must be float64 or float32, got {dtype}")
        with self._lock:
            if target != self._mirror_dtype:
                self._mirror_dtype = target
                self._slabs.clear()

    # ------------------------------------------------------------------ #
    # resolution

    def resolve(self, estimator, query: Query) -> IndexedSlab | None:
        """The scoring slab for ``query``'s FROM signature, or ``None``.

        ``None`` means "this request cannot be served from the index" — the
        estimator's containment model is not the bound owner (a hot swap is
        in flight), its pool is not the indexed pool, or it is not a CRN at
        all.  Callers fall back to the legacy per-pair path, which is always
        correct.  A usable resolve returns a snapshot: concurrent pool adds
        or rebinds never mutate the returned rows.
        """
        containment = getattr(estimator, "containment_estimator", None)
        if not isinstance(containment, CRNEstimator):
            self.stats.record_fallback()
            return None
        if getattr(estimator, "pool", None) is not self.pool:
            self.stats.record_fallback()
            return None
        scope = containment._encoding_scope()
        signature = query.from_signature()
        key = (scope, signature)
        # Reading the bucket version outside the index lock is safe: a
        # concurrent add is either reflected by the version (and the slab
        # syncs) or lands after — the same either-in-or-out snapshot
        # semantics matching_entries gives the legacy path.
        version = self.pool.bucket_version(signature)
        with self._lock:
            if self._owner is not containment.model:
                # Fenced: a hot swap rebound the index to another model.
                fenced = True
            else:
                fenced = False
                slab = self._slabs.get(key)
                if slab is None or slab.version != version:
                    slab = self._sync_locked(containment, scope, signature)
                view = IndexedSlab(
                    entries=slab.entries,
                    first=slab.first[: slab.count],
                    second=slab.second[: slab.count],
                    cardinalities=slab.cardinalities[: slab.count],
                    token=(scope, signature, slab.version, slab.count),
                    first_f32=(
                        slab.first_f32[: slab.count] if slab.first_f32 is not None else None
                    ),
                    second_f32=(
                        slab.second_f32[: slab.count] if slab.second_f32 is not None else None
                    ),
                )
        if fenced:
            self.stats.record_fallback()
            return None
        self.stats.record_served()
        return view

    def warm(self, estimator) -> None:
        """Build (or refresh) the slabs of every signature in the pool.

        The promote path calls this with the candidate estimator after
        :meth:`rebind`, so steady state is reached before the swap is
        visible.  Raises when the estimator cannot be served by this index
        at all — warming would otherwise silently do nothing.
        """
        containment = getattr(estimator, "containment_estimator", None)
        if not isinstance(containment, CRNEstimator):
            raise TypeError(
                "PoolEncodingIndex.warm needs a Cnt2Crd estimator over a CRN "
                f"containment model, got {type(estimator).__name__}"
            )
        self.bind(containment.model)
        scope = containment._encoding_scope()
        # One lock acquisition per signature (not one for the whole pool):
        # concurrent resolves — including fenced-out old-model requests
        # during a hot swap — wait at most one bucket's sync.
        for signature in self.pool.from_signatures():
            with self._lock:
                if self._owner is not containment.model:
                    return  # rebound mid-warm; the new owner re-warms
                self._sync_locked(containment, scope, signature)

    def clear(self) -> None:
        """Drop every slab (keeps the binding and the stats)."""
        with self._lock:
            self._slabs.clear()

    def __len__(self) -> int:
        """Total indexed rows across all slabs."""
        with self._lock:
            return sum(slab.count for slab in self._slabs.values())

    # ------------------------------------------------------------------ #
    # maintenance (caller holds the index lock)

    def _sync_locked(self, containment: CRNEstimator, scope, signature) -> _Slab:
        """Bring one signature's slab up to date with the pool bucket."""
        entries, version = self.pool.bucket_snapshot(signature)
        eligible = tuple(entry for entry in entries if entry.cardinality > 0)
        key = (scope, signature)
        slab = self._slabs.get(key)
        if slab is not None and slab.version == version:
            return slab
        if slab is not None and eligible[: slab.count] == slab.entries:
            # Pure growth: encode only the appended tail.
            tail = eligible[slab.count :]
            span = (
                self.tracer.begin("index_build")
                if self.tracer is not None and tail
                else None
            )
            try:
                slab.ensure_capacity(len(eligible))
                for offset, entry in enumerate(tail, start=slab.count):
                    slab.set_row(
                        offset,
                        containment.encode_query(entry.query, 1),
                        containment.encode_query(entry.query, 2),
                    )
                    slab.cardinalities[offset] = entry.cardinality
            finally:
                if span is not None:
                    self.tracer.end(
                        span,
                        signature=str(signature),
                        rows=len(tail),
                        mode="append",
                    )
            slab.entries = eligible
            slab.version = version
            self.stats.record_appended(len(tail))
            if self.recorder is not None and tail:
                from repro.observability.events import IndexBuild

                self.recorder.emit(
                    IndexBuild(signature=str(signature), rows=len(tail), mode="append")
                )
            return slab
        # An entry changed in place (cardinality update) or the slab is new:
        # rebuild wholesale.  Encodings come back out of the shared
        # EncodingCache, so a rebuild costs dict lookups, not matmuls.
        mode = "rebuild" if slab is not None else "build"
        span = self.tracer.begin("index_build") if self.tracer is not None else None
        try:
            rebuilt = _Slab(
                containment.model.hidden_size,
                max(self._initial_capacity, len(eligible)),
                mirror=self._mirror_dtype is not None,
            )
            for offset, entry in enumerate(eligible):
                rebuilt.set_row(
                    offset,
                    containment.encode_query(entry.query, 1),
                    containment.encode_query(entry.query, 2),
                )
                rebuilt.cardinalities[offset] = entry.cardinality
        finally:
            if span is not None:
                self.tracer.end(
                    span, signature=str(signature), rows=len(eligible), mode=mode
                )
        rebuilt.entries = eligible
        rebuilt.version = version
        self.stats.record_build(len(eligible), rebuild=slab is not None)
        if self.recorder is not None:
            from repro.observability.events import IndexBuild

            self.recorder.emit(
                IndexBuild(signature=str(signature), rows=len(eligible), mode=mode)
            )
        self._slabs[key] = rebuilt
        return rebuilt

    # ------------------------------------------------------------------ #
    # reporting

    def stats_snapshot(self) -> dict[str, float]:
        """Counters plus gauges, mergeable into ``format_service_stats``."""
        with self._lock:
            signatures = len(self._slabs)
            rows = sum(slab.count for slab in self._slabs.values())
        snapshot = self.stats.snapshot()
        snapshot["pool_index_signatures"] = float(signatures)
        snapshot["pool_index_rows"] = float(rows)
        snapshot["pool_index_f32_mirrors"] = float(self._mirror_dtype is not None)
        return snapshot
