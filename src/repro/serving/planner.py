"""Cross-request batch planning for Cnt2Crd cardinality estimation.

One Cnt2Crd request over a pool with ``E`` eligible entries needs ``2 * E``
containment rates (both directions per entry).  Served naively, each request
runs its own loop of small forward passes.  The :class:`BatchPlanner` instead
flattens the scoring pairs of *many* concurrent requests into one deduplicated
pair list, so the containment estimator sees a few large fixed-shape forward
passes (:meth:`repro.core.crn.CRNModel.rates_from_encodings`) instead of one
small batch per request.

Deduplication matters under real traffic: identical queries arrive repeatedly,
and every request against the same FROM signature scores the same pool-query
side of each pair.  The plan keeps, per request, the indices of its pairs into
the unique pair list, so rates are computed once and fanned back out.

Planning is pure bookkeeping (no model calls): :meth:`BatchPlanner.plan`
produces a :class:`BatchPlan`, and the :class:`repro.serving.EstimationService`
executes it with one batched ``estimate_containments`` call followed by the
estimator's own :meth:`repro.core.cnt2crd.Cnt2CrdEstimator.estimates_from_rates`
/ :meth:`repro.core.cnt2crd.Cnt2CrdEstimator.collapse` steps — which is why
served estimates are bit-for-bit identical to the per-request path.

The planner holds no mutable state of its own, so concurrent plans are safe:
each request's eligible entries are captured in one
:meth:`repro.core.queries_pool.QueriesPool.matching_entries` snapshot (the
pool locks internally), so a pool entry added mid-plan is either fully part
of a request's scoring work or not part of it at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.cnt2crd import Cnt2CrdEstimator
from repro.core.queries_pool import PoolEntry
from repro.serving.pool_index import IndexedSlab
from repro.sql.query import Query

#: Resolution stamp: the request was scored from the pool encoding index's
#: whole-pool slab matrices (:attr:`RequestPlan.slab`).
RESOLUTION_INDEXED_SLAB = "indexed_slab"
#: Resolution stamp: the request was scored through the deduplicated
#: cross-request pair list (:attr:`BatchPlan.pairs`).
RESOLUTION_PAIR_BATCH = "pair_batch"


@dataclass(frozen=True)
class RequestPlan:
    """The scoring work of one request inside a :class:`BatchPlan`.

    Attributes:
        index: the request's position in the submitted batch.
        query: the incoming query.
        has_match: whether the pool has entries sharing the query's FROM
            clause (False routes the request to the fallback path).
        entries: the eligible pool entries (positive cardinality).  For an
            indexed request these come from the slab snapshot, so entry ``i``
            is exactly the query encoded in the slab's row ``i``.
        pair_indices: for each of the ``2 * len(entries)`` containment pairs
            (in :meth:`Cnt2CrdEstimator.containment_pairs` order), its index
            into :attr:`BatchPlan.pairs`.  Empty for indexed requests.
        slab: the resolved :class:`repro.serving.IndexedSlab` when the
            estimator's pool encoding index can serve this request; its
            rates then come from one whole-pool slab scoring call instead of
            the shared pair list.
    """

    index: int
    query: Query
    has_match: bool
    entries: tuple[PoolEntry, ...]
    pair_indices: tuple[int, ...]
    slab: IndexedSlab | None = None

    @property
    def resolution(self) -> str:
        """The scoring path this plan takes — the provenance stamp the
        executor threads into :attr:`repro.serving.EstimateResult.resolution`
        (fallback answers override it there)."""
        return RESOLUTION_INDEXED_SLAB if self.slab is not None else RESOLUTION_PAIR_BATCH


@dataclass(frozen=True)
class BatchPlan:
    """A deduplicated scoring plan for a batch of concurrent requests.

    Attributes:
        pairs: the unique ordered query pairs to score, in first-seen order
            (indexed requests contribute nothing here — their pool side
            lives in the encoding index's matrices).
        requests: one :class:`RequestPlan` per submitted query, in order.
        planned_pairs: total pair slots before deduplication, including the
            ``2 * len(entries)`` slots of every indexed request.
        indexed_pairs: the subset of :attr:`planned_pairs` served from the
            pool encoding index (before the executor's per-query
            deduplication of identical indexed requests).
    """

    pairs: tuple[tuple[Query, Query], ...]
    requests: tuple[RequestPlan, ...]
    planned_pairs: int
    indexed_pairs: int = 0

    @property
    def unique_pairs(self) -> int:
        """Number of pairs actually sent to the containment estimator."""
        return len(self.pairs)

    @property
    def deduplicated_pairs(self) -> int:
        """Pair-list slots saved by cross-request deduplication.

        Indexed pair slots are excluded: they never enter the pair list, and
        how many of them are actually computed is decided by the executor
        (identical indexed requests share one slab scoring call).
        """
        return self.planned_pairs - self.indexed_pairs - self.unique_pairs


class BatchPlanner:
    """Plans batched Cnt2Crd scoring for a :class:`Cnt2CrdEstimator`.

    Args:
        estimator: the Cnt2Crd estimator whose pool and eligibility rules the
            plan follows.
    """

    def __init__(self, estimator: Cnt2CrdEstimator) -> None:
        self.estimator = estimator

    def plan(self, queries: Sequence[Query]) -> BatchPlan:
        """Flatten the scoring pairs of ``queries`` into one deduplicated plan.

        Requests the estimator's pool encoding index can serve are planned
        as slab references — their pool side is already a contiguous
        encoding matrix, so no pairs are materialized for them at all; the
        executor scores each unique ``(query, slab)`` with one whole-pool
        call.  Everything else takes the legacy deduplicated pair list.
        """
        pool_index = getattr(self.estimator, "pool_index", None)
        pair_index: dict[tuple[Query, Query], int] = {}
        pairs: list[tuple[Query, Query]] = []
        requests: list[RequestPlan] = []
        planned = 0
        indexed = 0
        for position_in_batch, query in enumerate(queries):
            has_match = self.estimator.pool.has_match(query)
            if has_match and pool_index is not None:
                slab = pool_index.resolve(self.estimator, query)
                if slab is not None:
                    planned += 2 * len(slab.entries)
                    indexed += 2 * len(slab.entries)
                    requests.append(
                        RequestPlan(
                            index=position_in_batch,
                            query=query,
                            has_match=True,
                            entries=slab.entries,
                            pair_indices=(),
                            slab=slab,
                        )
                    )
                    continue
            entries = tuple(self.estimator.eligible_entries(query)) if has_match else ()
            indices: list[int] = []
            for pair in self.estimator.containment_pairs(query, entries):
                planned += 1
                position = pair_index.get(pair)
                if position is None:
                    position = len(pairs)
                    pair_index[pair] = position
                    pairs.append(pair)
                indices.append(position)
            requests.append(
                RequestPlan(
                    index=position_in_batch,
                    query=query,
                    has_match=has_match,
                    entries=entries,
                    pair_indices=tuple(indices),
                )
            )
        return BatchPlan(
            pairs=tuple(pairs),
            requests=tuple(requests),
            planned_pairs=planned,
            indexed_pairs=indexed,
        )
