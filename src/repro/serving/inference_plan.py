"""Compiled inference plans: the CRN pair head as fused NumPy kernels.

Serving never needs gradients, yet the reference inference path still pays,
per pair-head slab, Python-level ``Module.__call__`` dispatch, autodiff graph
construction (parents/backward closures per op), thread-local grad-mode
checks, and a fresh allocation for every intermediate.  An
:class:`InferencePlan` removes all of it: :func:`compile_plan` runs one
traced forward pass of ``CRNModel.head`` (via :mod:`repro.nn.trace`),
freezes the weights it touched as dtype-cast constant copies, and lowers the
tape into a flat program of NumPy/BLAS calls that execute into preallocated,
geometrically-grown scratch buffers — no ``Tensor`` objects anywhere on the
hot path.

Two dtype modes:

* **float64** — the bit-exact mode.  The plan replays the reference slab
  discipline of :meth:`repro.core.crn.CRNModel.rates_from_encodings`
  (fixed ``slab_size``-row passes, zero-padded final slab) with the exact
  same primitive ops in the exact same order, so its rates are bit-for-bit
  identical to the ``Tensor`` path.  The win is pure overhead removal.
* **float32** — the tolerance mode.  Constants and scratch are float32 and
  the whole batch runs as **one** fused variable-row pass (no slab padding
  waste).  Rates differ from the reference by float32 rounding; the
  documented bound (see ``docs/architecture.md``) is that per-rate relative
  error stays ~1e-5..1e-4, which the serving config exposes as
  ``inference.tolerance`` and the property tests check end to end as a
  q-error bound on final estimates.

float32 plans additionally carry a **fused slab kernel**
(:meth:`InferencePlan.rates_against_slab`) for the Cnt2Crd access pattern,
where every pair couples one query vector with one pool row.  Instead of
materializing the ``(2E, H)`` interleaved pair matrices and the ``(2E, 4H)``
Expand concatenation, it exploits two algebraic facts: the first head matmul
splits by Expand section (``concat([f, s, |f-s|, f*s]) @ W  ==  f@W_f +
s@W_s + |f-s|@W_d + (f*s)@W_p``), and per slab half the sections are either
a pure function of the pool rows (``pool @ W_f`` / ``pool @ W_s`` — cached
per slab version, invalidated by the slab token) or one broadcast row
(``q @ W_s + b``, folded into the per-request GEMM as a ones-column).  Per
request only the genuinely pair-dependent work remains: the ``|f-s|`` /
``f*s`` elementwise maps and one ``(E, 2H+1)`` GEMM per direction — about
half the FLOPs and none of the assembly copies of the generic pass.

The encoder stage (``encode_set``) is already Tensor-free in the model; the
plan carries frozen float64 copies of the encoder weights so
:meth:`InferencePlan.encode_set` is a pure function of the weights *at
compile time* — a later optimizer step cannot leak into a compiled plan.
Encodings stay canonical float64 regardless of plan dtype (they feed the
shared :class:`repro.serving.EncodingCache`); the head casts on input load.

Scratch buffers are per-thread (a serving dispatcher thread and client
threads never share arrays) and grow geometrically: a plan serving mixed
batch sizes reuses one high-water-mark allocation instead of allocating per
request.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.crn import CRNModel
from repro.nn.tensor import Tensor, no_grad
from repro.nn.trace import trace

__all__ = ["InferencePlan", "compile_plan"]

#: Ops the plan lowerer understands.  The head only uses a subset; the rest
#: are implemented so tracing-based compilation keeps working if the model
#: grows (e.g. a pooling ``sum`` showing up in a future traced stage).
_SUPPORTED_OPS = frozenset(
    {
        "add",
        "neg",
        "mul",
        "div",
        "matmul",
        "pow",
        "abs",
        "maximum",
        "relu",
        "sigmoid",
        "exp",
        "log",
        "clip_min",
        "reshape",
        "sum",
        "concat",
    }
)


@dataclass(frozen=True)
class _Step:
    """One lowered op: ``slots[output] = op(*slots[inputs], **attrs)``."""

    op: str
    inputs: tuple[int, ...]
    output: int
    attrs: dict[str, Any]


class InferencePlan:
    """A frozen CRN pair head lowered to fused NumPy kernels.

    Built by :func:`compile_plan`; not constructed directly.  The plan holds
    dtype-cast **copies** of every weight the traced forward pass touched:
    mutating the source model after compilation (an optimizer step, a manual
    weight poke) does not change what the plan computes — recompile instead,
    which is exactly what the adaptation lifecycle does on promote.
    """

    def __init__(
        self,
        *,
        model: CRNModel,
        dtype: np.dtype,
        slab_size: int,
        tolerance: float,
        steps: tuple[_Step, ...],
        constants: dict[int, np.ndarray],
        first_slot: int,
        second_slot: int,
        output_slot: int,
        templates: dict[int, tuple[int, ...]],
        alias_slots: frozenset[int],
        num_slots: int,
        encoder_weights: dict[str, np.ndarray],
        pooling: str,
        compile_seconds: float,
        pair_kernel: dict[str, Any] | None = None,
    ) -> None:
        self.model = model
        self.dtype = np.dtype(dtype)
        self.slab_size = slab_size
        self.tolerance = tolerance
        self.hidden_size = model.hidden_size
        self.compile_seconds = compile_seconds
        self._steps = steps
        self._constants = constants
        self._first_slot = first_slot
        self._second_slot = second_slot
        self._output_slot = output_slot
        self._alias_slots = alias_slots
        self._num_slots = num_slots
        self._encoder = encoder_weights
        self._pooling = pooling
        self._pair = pair_kernel
        # Per-(scope, signature) cache of pool-side weight projections for
        # the fused slab kernel; entries are keyed by the full slab token,
        # so a pool append (version bump) or rebind recomputes lazily.
        self._projection_lock = threading.Lock()
        self._projections: dict[Any, tuple[Any, np.ndarray, np.ndarray]] = {}
        # Buffer templates: -1 marks the batch (rows) dimension.  Dynamic
        # slots get capacity-sized scratch reused across calls; static slots
        # (no batch dim — reductions to scalars etc.) are allocated once.
        self._dynamic_templates = {
            slot: tpl for slot, tpl in templates.items() if tpl and tpl[0] == -1
        }
        self._static_templates = {
            slot: tpl for slot, tpl in templates.items() if not tpl or tpl[0] != -1
        }
        # Sigmoid needs elementwise temporaries (three value buffers and one
        # bool mask, shaped like its input) so the stable two-branch formula
        # can run allocation-free.
        self._aux_specs: dict[tuple[int, int], tuple[tuple[int, ...], np.dtype]] = {}
        for index, step in enumerate(steps):
            if step.op == "sigmoid":
                tpl = templates[step.inputs[0]]
                for j in range(3):
                    self._aux_specs[(index, j)] = (tpl, self.dtype)
                self._aux_specs[(index, 3)] = (tpl, np.dtype(bool))
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    # reporting

    @property
    def num_nodes(self) -> int:
        """Number of lowered primitive ops."""
        return len(self._steps)

    @property
    def num_constants(self) -> int:
        """Number of frozen constant arrays (weights, biases, scalars)."""
        return len(self._constants)

    def describe(self) -> dict[str, Any]:
        """A plain-dict summary (feeds ``plan_compile`` events and stats)."""
        return {
            "dtype": self.dtype.name,
            "slab_size": self.slab_size,
            "tolerance": self.tolerance,
            "nodes": self.num_nodes,
            "constants": self.num_constants,
            "compile_seconds": self.compile_seconds,
        }

    def kernel_info(self) -> dict[str, Any]:
        """How this plan executes a slab pass, as span/report attributes.

        What the tracer stamps onto ``slab_kernel`` spans, so a stored trace
        says which execution mode (fused float32 variable-row vs fixed-slab
        float64) produced the batch it amortizes over.
        """
        return {
            "mode": "compiled",
            "dtype": self.dtype.name,
            "slab_size": self.slab_size,
            "fused": self.supports_slab_fusion,
            "nodes": self.num_nodes,
        }

    def scratch_stats(self) -> dict[str, int]:
        """This thread's scratch state (capacity rows and realloc count)."""
        state = self._local
        return {
            "capacity_rows": int(getattr(state, "capacity", 0)),
            "allocations": int(getattr(state, "allocations", 0)),
        }

    # ------------------------------------------------------------------ #
    # encoder stage (frozen weights, canonical float64)

    def encode_set(self, vectors: np.ndarray, position: int) -> np.ndarray:
        """``CRNModel.encode_set`` against the weights frozen at compile time.

        Bit-identical to the model's method as long as the model has not been
        mutated since compilation — and deliberately *not* identical after,
        which is the freeze guarantee.
        """
        if position not in (1, 2):
            raise ValueError(f"position must be 1 or 2, got {position}")
        suffix = "1" if position == 1 else "2"
        weight = self._encoder[f"w{suffix}"]
        bias = self._encoder[f"b{suffix}"]
        transformed = np.maximum(vectors @ weight + bias, 0.0)
        pooled = transformed.sum(axis=0)
        if self._pooling == "average":
            pooled = pooled / max(vectors.shape[0], 1)
        return pooled

    # ------------------------------------------------------------------ #
    # pair head

    def rates_from_encodings(self, first: np.ndarray, second: np.ndarray) -> np.ndarray:
        """Containment rates for ``(n, H)`` pre-encoded pair matrices.

        float64 mode replays the reference fixed-shape slab loop (bit-exact);
        float32 mode runs one fused variable-row pass.  Always returns a
        fresh float64 ``(n,)`` array (downstream estimate math is float64).
        """
        first = np.asarray(first)
        second = np.asarray(second)
        if first.shape != second.shape:
            raise ValueError("first and second encodings must have the same shape")
        if first.ndim != 2 or first.shape[1] != self.hidden_size:
            raise ValueError(
                f"expected (n, {self.hidden_size}) encodings, got {first.shape}"
            )
        total = first.shape[0]
        rates = np.empty(total, dtype=np.float64)
        if total == 0:
            return rates
        state = self._state()
        if self.dtype == np.float64:
            slab = self.slab_size
            self._ensure(state, slab)
            first_buf = state.views[self._first_slot]
            second_buf = state.views[self._second_slot]
            for start in range(0, total, slab):
                count = min(slab, total - start)
                np.copyto(first_buf[:count], first[start : start + count])
                np.copyto(second_buf[:count], second[start : start + count])
                if count < slab:
                    first_buf[count:] = 0.0
                    second_buf[count:] = 0.0
                out = self._execute(state)
                rates[start : start + count] = out[:count]
            return rates
        self._ensure(state, total)
        np.copyto(state.views[self._first_slot], first)
        np.copyto(state.views[self._second_slot], second)
        np.copyto(rates, self._execute(state))
        return rates

    # ------------------------------------------------------------------ #
    # fused slab kernel (float32 only)

    @property
    def supports_slab_fusion(self) -> bool:
        """Whether :meth:`rates_against_slab` is available (float32 plans)."""
        return self._pair is not None

    def rates_against_slab(
        self,
        query_first: np.ndarray,
        query_second: np.ndarray,
        pool_first: np.ndarray,
        pool_second: np.ndarray,
        token: Any = None,
    ) -> np.ndarray:
        """Fused query-vs-slab scoring in ``containment_pairs`` order.

        Scores one query against ``E`` pool rows and returns the ``(2E,)``
        float64 rates the interleaved pair assembly would produce: even rows
        are the ``(Qold, Qnew)`` direction, odd rows ``(Qnew, Qold)`` —
        exactly :meth:`repro.core.crn.CRNModel.assemble_pool_pairs` order,
        without ever materializing the pair matrices.

        Args:
            query_first: the query's ``(H,)`` slot-1 encoding.
            query_second: the query's ``(H,)`` slot-2 encoding.
            pool_first: ``(E, H)`` slot-1 pool rows (float32 mirrors when the
                index negotiated them; float64 rows are cast here once).
            pool_second: ``(E, H)`` slot-2 pool rows.
            token: the slab's identity token.  When given, the pool-side
                weight projections are cached under it and reused until the
                slab changes (append, rebuild, rebind); ``None`` recomputes
                them on every call.
        """
        pair = self._pair
        if pair is None:
            raise RuntimeError(
                "the fused slab kernel needs a float32 plan; float64 mode "
                "serves through the bit-exact generic pass"
            )
        count = pool_first.shape[0]
        rates = np.empty(2 * count, dtype=np.float64)
        if count == 0:
            return rates
        pool_first = np.ascontiguousarray(pool_first, dtype=self.dtype)
        pool_second = np.ascontiguousarray(pool_second, dtype=self.dtype)
        q_first = np.asarray(query_first, dtype=self.dtype)
        q_second = np.asarray(query_second, dtype=self.dtype)
        proj_first, proj_second = self._slab_projections(pool_first, pool_second, token)
        state = self._fused_state(count)
        # (Qold, Qnew): pool rows fill the first slot, the query the second.
        self._fused_half(state, count, pool_first, q_second, proj_first, pair["w_second"], rates[0::2])
        # (Qnew, Qold): the query fills the first slot, pool rows the second.
        self._fused_half(state, count, pool_second, q_first, proj_second, pair["w_first"], rates[1::2])
        return rates

    def _slab_projections(
        self, pool_first: np.ndarray, pool_second: np.ndarray, token: Any
    ) -> tuple[np.ndarray, np.ndarray]:
        """The cached ``pool @ W`` projections for one slab version."""
        pair = self._pair
        key = token[:2] if token is not None else None
        if key is not None:
            with self._projection_lock:
                cached = self._projections.get(key)
            if cached is not None and cached[0] == token:
                return cached[1], cached[2]
        proj_first = pool_first @ pair["w_first"]
        proj_second = pool_second @ pair["w_second"]
        if key is not None:
            with self._projection_lock:
                self._projections[key] = (token, proj_first, proj_second)
        return proj_first, proj_second

    def _fused_state(self, rows: int):
        """Per-thread scratch for the fused slab kernel (geometric growth)."""
        pair = self._pair
        state = self._local
        if getattr(state, "fused_capacity", 0) < rows:
            capacity = max(rows, 2 * getattr(state, "fused_capacity", 0))
            hidden = self.hidden_size
            out_dim = pair["w_out"].shape[0]
            if pair["use_expand"]:
                # [ |f-s| | f*s | 1 ] — the ones column folds the per-request
                # broadcast row (q @ W + b) into the single GEMM below.
                state.fused_stack = np.empty((capacity, 2 * hidden + 1), dtype=self.dtype)
                state.fused_stack[:, -1] = 1.0
                weight = np.empty((2 * hidden + 1, out_dim), dtype=self.dtype)
                weight[:hidden] = pair["w_diff"]
                weight[hidden : 2 * hidden] = pair["w_prod"]
                state.fused_weight = weight
            state.fused_hidden = np.empty((capacity, out_dim), dtype=self.dtype)
            state.fused_z = np.empty((capacity, 1), dtype=self.dtype)
            state.fused_aux = tuple(
                np.empty((capacity, 1), dtype=self.dtype) for _ in range(3)
            )
            state.fused_mask = np.empty((capacity, 1), dtype=bool)
            state.fused_capacity = capacity
            state.allocations = getattr(state, "allocations", 0) + 1
        return state

    def _fused_half(
        self,
        state,
        rows: int,
        pool_rows: np.ndarray,
        query_vec: np.ndarray,
        projection: np.ndarray,
        w_query: np.ndarray,
        out_view: np.ndarray,
    ) -> None:
        """One scoring direction: ``pool_rows`` in one slot, the query in the
        other.  The Expand cross terms (``|f-s|``, ``f*s``) are symmetric in
        the slot order, so both directions share this exact routine — only
        the projection (pool slot) and ``w_query`` (query slot) differ."""
        pair = self._pair
        qrow = query_vec @ w_query
        qrow += pair["bias"]
        hidden = state.fused_hidden[:rows]
        if pair["use_expand"]:
            size = self.hidden_size
            stack = state.fused_stack[:rows]
            diff = stack[:, :size]
            prod = stack[:, size : 2 * size]
            np.subtract(pool_rows, query_vec, out=diff)
            np.absolute(diff, out=diff)
            np.multiply(pool_rows, query_vec, out=prod)
            weight = state.fused_weight
            weight[-1] = qrow
            np.matmul(stack, weight, out=hidden)  # |f-s|@Wd + (f*s)@Wp + qrow
            np.add(hidden, projection, out=hidden)
        else:
            np.add(projection, qrow, out=hidden)
        np.maximum(hidden, 0.0, out=hidden)
        z = state.fused_z[:rows]
        np.matmul(hidden, pair["w_out"], out=z)
        np.add(z, pair["b_out"], out=z)
        aux0, aux1, aux2 = (buf[:rows] for buf in state.fused_aux)
        self._sigmoid(z, z, aux0, aux1, aux2, state.fused_mask[:rows])
        out_view[:] = z[:, 0]

    # ------------------------------------------------------------------ #
    # scratch management

    def _state(self):
        state = self._local
        if getattr(state, "views", None) is None:
            state.views = [None] * self._num_slots
            for slot, value in self._constants.items():
                state.views[slot] = value
            state.buffers = {}
            state.aux = {}
            state.aux_views = {}
            state.capacity = 0
            state.rows = 0
            state.allocations = 0
            for slot, tpl in self._static_templates.items():
                state.buffers[slot] = np.empty(tpl, dtype=self.dtype)
                state.views[slot] = state.buffers[slot]
        return state

    def _ensure(self, state, rows: int) -> None:
        """Size this thread's scratch for ``rows`` and refresh slot views."""
        if rows > state.capacity:
            # Geometric growth: a stream of slowly-increasing batch sizes
            # costs O(log) reallocations, not one per new high-water mark.
            capacity = max(rows, 2 * state.capacity)
            for slot, tpl in self._dynamic_templates.items():
                state.buffers[slot] = np.empty((capacity, *tpl[1:]), dtype=self.dtype)
            for key, (tpl, aux_dtype) in self._aux_specs.items():
                state.aux[key] = np.empty((capacity, *tpl[1:]), dtype=aux_dtype)
            state.capacity = capacity
            state.allocations += 1
            state.rows = 0
        if rows != state.rows:
            for slot in self._dynamic_templates:
                state.views[slot] = state.buffers[slot][:rows]
            state.aux_views = {key: buf[:rows] for key, buf in state.aux.items()}
            state.rows = rows

    # ------------------------------------------------------------------ #
    # interpreter

    def _execute(self, state) -> np.ndarray:
        """Run the lowered program over this thread's current views."""
        views = state.views
        rows = state.rows
        for index, step in enumerate(self._steps):
            op = step.op
            inputs = step.inputs
            if op == "matmul":
                np.matmul(views[inputs[0]], views[inputs[1]], out=views[step.output])
            elif op == "add":
                np.add(views[inputs[0]], views[inputs[1]], out=views[step.output])
            elif op == "relu":
                np.maximum(views[inputs[0]], 0.0, out=views[step.output])
            elif op == "neg":
                np.negative(views[inputs[0]], out=views[step.output])
            elif op == "abs":
                np.absolute(views[inputs[0]], out=views[step.output])
            elif op == "mul":
                np.multiply(views[inputs[0]], views[inputs[1]], out=views[step.output])
            elif op == "concat":
                np.concatenate(
                    [views[slot] for slot in inputs],
                    axis=step.attrs["axis"],
                    out=views[step.output],
                )
            elif op == "sigmoid":
                self._sigmoid(
                    views[inputs[0]],
                    views[step.output],
                    state.aux_views[(index, 0)],
                    state.aux_views[(index, 1)],
                    state.aux_views[(index, 2)],
                    state.aux_views[(index, 3)],
                )
            elif op == "reshape":
                shape = tuple(
                    rows if dim == -1 else dim for dim in step.attrs["shape"]
                )
                views[step.output] = views[inputs[0]].reshape(shape)
            elif op == "div":
                np.divide(views[inputs[0]], views[inputs[1]], out=views[step.output])
            elif op == "maximum":
                np.maximum(views[inputs[0]], views[inputs[1]], out=views[step.output])
            elif op == "clip_min":
                np.maximum(
                    views[inputs[0]], step.attrs["minimum"], out=views[step.output]
                )
            elif op == "pow":
                np.power(
                    views[inputs[0]], step.attrs["exponent"], out=views[step.output]
                )
            elif op == "exp":
                out = views[step.output]
                np.clip(views[inputs[0]], -700.0, 700.0, out=out)
                np.exp(out, out=out)
            elif op == "log":
                np.log(views[inputs[0]], out=views[step.output])
            elif op == "sum":
                np.sum(
                    views[inputs[0]],
                    axis=step.attrs["axis"],
                    keepdims=step.attrs["keepdims"],
                    out=views[step.output],
                )
            else:  # pragma: no cover - compile_plan rejects unknown ops
                raise RuntimeError(f"unlowerable op {op!r}")
        return views[self._output_slot]

    @staticmethod
    def _sigmoid(a, out, t0, t1, t2, mask) -> None:
        """The stable two-branch sigmoid, allocation-free and bit-identical.

        Mirrors ``Tensor.sigmoid``: both branches are computed over the full
        array, then selected by the sign mask — the exact elementwise values
        ``np.where`` would pick, without its output allocation.
        """
        np.clip(a, -60.0, 60.0, out=t0)  # c
        np.negative(t0, out=t1)
        np.exp(t1, out=t1)  # exp(-c)
        np.add(t1, 1.0, out=t1)
        np.divide(1.0, t1, out=t1)  # positive branch: 1 / (1 + exp(-c))
        np.exp(t0, out=t2)  # exp(c)
        np.add(t2, 1.0, out=t0)
        np.divide(t2, t0, out=t0)  # negative branch: exp(c) / (1 + exp(c))
        np.greater_equal(a, 0.0, out=mask)
        np.copyto(out, t0)
        np.copyto(out, t1, where=mask)


def compile_plan(
    model: CRNModel,
    *,
    dtype: np.dtype | str = np.float64,
    slab_size: int = 256,
    tolerance: float = 1e-3,
) -> InferencePlan:
    """Trace ``model.head`` and lower it into an :class:`InferencePlan`.

    Args:
        model: the trained CRN.  Its weights are **copied** (dtype-cast) into
            the plan; later mutation of the model does not affect the plan.
        dtype: ``np.float64`` for the bit-exact mode, ``np.float32`` for the
            fused tolerance mode.
        slab_size: rows per pair-head pass in float64 mode — must match the
            estimator's ``batch_size`` for bit-identity with the reference
            path (float32 mode ignores it for execution but keeps it for
            bookkeeping).
        tolerance: the documented end-to-end q-error bound of float32 mode;
            carried on the plan so serving stats and events can report it.

    Returns:
        A ready-to-run plan.  Compilation self-checks by replaying the
        traced forward pass through the lowered program.
    """
    started = time.perf_counter()
    if not isinstance(model, CRNModel):
        raise TypeError(f"compile_plan needs a CRNModel, got {type(model).__name__}")
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
        raise ValueError(f"plan dtype must be float64 or float32, got {dtype}")
    if slab_size <= 0:
        raise ValueError("slab_size must be positive")
    if tolerance <= 0.0:
        raise ValueError("tolerance must be positive")
    hidden = model.hidden_size
    # The marker batch size must differ from every static dimension in the
    # head, so "this dim == marker" unambiguously means "the batch dim".
    marker = 13
    forbidden = {1, hidden, 2 * hidden, 4 * hidden}
    while marker in forbidden:
        marker += 2
    rng = np.random.default_rng(7)
    first = Tensor(rng.standard_normal((marker, hidden)))
    second = Tensor(rng.standard_normal((marker, hidden)))
    with no_grad(), trace() as tape:
        traced = model.head(first, second)
    if not tape.nodes:
        raise ValueError("tracing model.head produced no ops")
    first_slot = tape.slot_of(first)
    second_slot = tape.slot_of(second)
    output_slot = tape.slot_of(traced)
    if first_slot is None or second_slot is None or output_slot is None:
        raise ValueError("traced head does not connect both inputs to the output")

    produced: set[int] = set()
    constants: dict[int, np.ndarray] = {}
    steps: list[_Step] = []
    alias_slots: set[int] = set()
    for node in tape.nodes:
        if node.op not in _SUPPORTED_OPS:
            raise ValueError(f"traced op {node.op!r} has no fused lowering")
        for slot in node.inputs:
            if slot in produced or slot in (first_slot, second_slot) or slot in constants:
                continue
            tensor = tape.tensor_for_slot(slot)
            if marker in tensor.shape:
                raise ValueError(
                    "a weight dimension collides with the trace marker batch "
                    f"size {marker}; cannot distinguish batch from static dims"
                )
            # Freeze: an explicit copy, cast to the plan dtype.
            constants[slot] = np.array(tensor.data, dtype=dtype, order="C", copy=True)
        attrs = dict(node.attrs)
        if node.op == "reshape":
            shape = tuple(-1 if dim == marker else dim for dim in attrs["shape"])
            if shape.count(-1) > 1:
                raise ValueError(f"ambiguous batch dimension in reshape to {shape}")
            attrs["shape"] = shape
            alias_slots.add(node.output)
        produced.add(node.output)
        steps.append(_Step(node.op, node.inputs, node.output, attrs))

    templates: dict[int, tuple[int, ...]] = {}
    for slot in {first_slot, second_slot, *produced}:
        if slot in alias_slots:
            continue  # reshape outputs are views, not buffers
        shape = tape.tensor_for_slot(slot).shape
        template = tuple(-1 if dim == marker else dim for dim in shape)
        if -1 in template[1:]:
            raise ValueError(
                f"batch dimension in non-leading position of shape {shape}; "
                "the buffer planner only supports leading-batch layouts"
            )
        templates[slot] = template

    encoder_weights = {
        "w1": np.array(model.set_encoder1.weight.data, dtype=np.float64, copy=True),
        "b1": np.array(model.set_encoder1.bias.data, dtype=np.float64, copy=True),
        "w2": np.array(model.set_encoder2.weight.data, dtype=np.float64, copy=True),
        "b2": np.array(model.set_encoder2.bias.data, dtype=np.float64, copy=True),
    }

    pair_kernel: dict[str, Any] | None = None
    if dtype == np.float32:
        # Split the first head matmul by Expand section so the pool halves of
        # the pair GEMM can be cached per slab.  Float64 mode stays on the
        # generic pass: the split reorders the accumulation, which is fine
        # within float32 rounding but breaks the bit-exactness contract.
        def _frozen(value: np.ndarray) -> np.ndarray:
            return np.array(value, dtype=np.float32, order="C", copy=True)

        head_weight = model.out_hidden.weight.data
        use_expand = bool(model.config.use_expand)
        pair_kernel = {
            "use_expand": use_expand,
            "w_first": _frozen(head_weight[:hidden]),
            "w_second": _frozen(head_weight[hidden : 2 * hidden]),
            "bias": _frozen(model.out_hidden.bias.data),
            "w_out": _frozen(model.out_final.weight.data),
            "b_out": _frozen(model.out_final.bias.data),
        }
        if use_expand:
            pair_kernel["w_diff"] = _frozen(head_weight[2 * hidden : 3 * hidden])
            pair_kernel["w_prod"] = _frozen(head_weight[3 * hidden :])

    plan = InferencePlan(
        model=model,
        dtype=dtype,
        slab_size=slab_size,
        tolerance=tolerance,
        steps=tuple(steps),
        constants=constants,
        first_slot=first_slot,
        second_slot=second_slot,
        output_slot=output_slot,
        templates=templates,
        alias_slots=frozenset(alias_slots),
        num_slots=tape.num_slots,
        encoder_weights=encoder_weights,
        pooling=model.config.pooling,
        compile_seconds=0.0,
        pair_kernel=pair_kernel,
    )

    # Self-check: the lowered program must reproduce the traced forward pass
    # on the marker inputs — exactly in float64, within rounding in float32.
    state = plan._state()
    plan._ensure(state, marker)
    np.copyto(state.views[first_slot], first.data)
    np.copyto(state.views[second_slot], second.data)
    replayed = np.asarray(plan._execute(state), dtype=np.float64)
    expected = traced.numpy()
    if dtype == np.float64:
        if not np.array_equal(replayed, expected):
            raise RuntimeError("compiled float64 plan diverged from the traced pass")
    elif not np.allclose(replayed, expected, rtol=1e-3, atol=1e-5):
        raise RuntimeError("compiled float32 plan diverged beyond float32 rounding")

    plan.compile_seconds = time.perf_counter() - started
    return plan
