"""Online estimation serving: cross-request batching and featurization caching.

The Cnt2Crd technique (Section 5) answers one query by scoring it against
every matching pool query in both containment directions, so a deployment
serving heavy traffic is dominated by redundant featurization and many small
forward passes.  This package amortizes that work across requests:

* :mod:`repro.serving.cache` -- :class:`FeaturizationCache` (query → feature
  vectors, memoized once per pool query, ever) and :class:`EncodingCache`
  (query → CRN ``Qvec`` per pair slot), both with LRU bounds and hit/miss
  accounting.
* :mod:`repro.serving.pool_index` -- :class:`PoolEncodingIndex`, per-FROM-
  signature contiguous pool-query encoding matrices (one per pair slot),
  maintained incrementally on :meth:`repro.core.queries_pool.QueriesPool.add`
  and owner-fenced like the encoding cache, so a request is scored as one
  vectorized whole-pool slab pass instead of ``2·E`` per-pair lookups.
* :mod:`repro.serving.planner` -- :class:`BatchPlanner`, which plans
  index-servable requests as slab references and flattens everything else's
  ``(Qnew, Qold)`` scoring pairs (both directions) into one deduplicated
  pair list executed as a few large fixed-shape forward passes.
* :mod:`repro.serving.service` -- :class:`EstimationService`, the engine with
  a named estimator registry (model generations bumped on every
  :meth:`~EstimationService.replace` hot swap), ``submit`` / ``submit_batch``,
  registry-level fallback for
  :class:`repro.core.cnt2crd.NoMatchingPoolQueryError`, per-request
  :class:`RequestOptions` (estimator, deadline, fallback policy, tags) and
  provenance-carrying :class:`EstimateResult` responses (resolution path,
  model generation, cache hits), and per-request latency / cache hit-rate
  statistics.  The deprecated :func:`build_crn_service` constructor lives
  here as a shim over :class:`ServingConfig`.
* :mod:`repro.serving.config` -- :class:`ServingConfig`, the frozen,
  validated, dict/JSON-round-trippable description of a whole deployment
  (estimator, pool/index, caches, dispatcher, feedback, adaptation
  sections).
* :mod:`repro.serving.inference_plan` -- :class:`InferencePlan` /
  :func:`compile_plan`, the frozen-model inference engine: a trained CRN's
  pair-head forward pass traced once into a flat sequence of fused
  NumPy/BLAS calls over preallocated scratch buffers (no ``Tensor``
  objects, no grad-mode checks), with an optional float32 slab layout
  negotiated with :class:`PoolEncodingIndex` under a documented q-error
  bound — enabled through :class:`InferenceConfig` (``mode: compiled``).
* :mod:`repro.serving.client` -- :class:`ServingClient`, the one-handle
  façade: builds everything a :class:`ServingConfig` enables, owns start and
  shutdown ordering, and exposes ``estimate`` / ``estimate_many`` /
  ``estimate_future`` / ``warm`` / ``record_feedback`` /
  ``trigger_adaptation`` plus one merged ``stats()`` snapshot.
* :mod:`repro.serving.errors` -- the :class:`ServingError` taxonomy
  (:class:`UnknownEstimatorError`, :class:`DeadlineExceededError`,
  :class:`DispatcherShutdownError`, with
  :class:`~repro.core.cnt2crd.NoMatchingPoolQueryError` re-exported as the
  fourth member).
* :mod:`repro.serving.dispatcher` -- :class:`ServingDispatcher`, the
  thread-safe micro-batching front-end: concurrent callers submit from many
  threads and get futures; one dispatcher thread coalesces their requests
  (``max_batch`` / ``max_wait_ms``) into shared service batches.
* :mod:`repro.serving.feedback` -- :class:`FeedbackCollector`, the bounded
  rolling window of ``(query, estimate, true cardinality)`` observations
  with per-estimator q-error quantiles — the signal the adaptation
  subsystem watches.
* :mod:`repro.serving.lifecycle` -- the adaptation subsystem:
  :class:`DriftMonitor` / :class:`DriftPolicy` decide when the serving model
  has gone stale (rolling q-error threshold, degradation vs. a baseline
  window, row-count delta), and :class:`AdaptationManager` retrains in the
  background (:class:`CRNRetrainer` over
  :mod:`repro.extensions.updates`, incremental escalating to full), gates
  the candidate on a held-out feedback slice, and hot-swaps it with
  ``replace()`` / ``rebind()`` while the dispatcher keeps serving.
* :mod:`repro.artifacts` (sibling package) -- the versioned artifact store
  wired in through :class:`ArtifactConfig`: every build and every accepted
  adaptation candidate persists as a checksummed snapshot generation, and
  :meth:`ServingClient.from_artifact` cold-boots a bit-identical stack from
  one without retraining (promote/rollback via ``scripts/artifact_tool.py``).
* :mod:`repro.cluster` (sibling package) -- the sharded multi-process
  serving cluster wired in through :class:`ClusterConfig`
  (``mode="cluster"``): worker processes each own the pool slice of their
  assigned FROM-signatures and serve a length-prefixed JSON wire protocol;
  an asyncio router routes by FROM-signature, fans out ``estimate_many``
  across shards, and turns worker death into bounded retries +
  :class:`WorkerUnavailableError`; a supervisor restarts dead workers from
  the promoted artifact generation (operator CLI:
  ``scripts/cluster_tool.py``).  Reference-mode estimates are bit-identical
  between the local and cluster paths.

The whole layer is safe under concurrent access: caches, stats, the
estimator registry (with :meth:`EstimationService.replace` for zero-downtime
hot swaps) and the queries pool all take fine-grained locks.

Batched serving is exact: the CRN inference path encodes each query in
isolation and runs the pair head in fixed-shape slabs
(:meth:`repro.core.crn.CRNModel.rates_from_encodings`), so served estimates
are bit-for-bit identical to the naive per-request loop — whether batched by
one caller or coalesced across threads by the dispatcher.  See
``docs/architecture.md`` and ``examples/serving_workflow.py``.
"""

from repro.serving.cache import CacheStats, EncodingCache, FeaturizationCache
from repro.serving.client import ServiceStack, ServingClient, build_service_stack
from repro.serving.config import (
    AdaptationConfig,
    ArtifactConfig,
    CacheConfig,
    ClusterConfig,
    DispatcherConfig,
    EstimatorConfig,
    FeedbackConfig,
    InferenceConfig,
    ObservabilityConfig,
    PoolConfig,
    ServingConfig,
    TracingConfig,
)
from repro.serving.inference_plan import InferencePlan, compile_plan
from repro.serving.dispatcher import DispatcherStats, ServingDispatcher
from repro.serving.errors import (
    ArtifactChecksumError,
    ArtifactError,
    ArtifactNotFoundError,
    ArtifactSchemaError,
    ClusterError,
    ClusterProtocolError,
    DeadlineExceededError,
    DispatcherShutdownError,
    NoMatchingPoolQueryError,
    ServingError,
    UnknownEstimatorError,
    WorkerUnavailableError,
)
from repro.serving.feedback import (
    FeedbackCollector,
    FeedbackObservation,
    FeedbackSummary,
)
from repro.serving.lifecycle import (
    AdaptationManager,
    AdaptationOutcome,
    CRNRetrainer,
    DriftMonitor,
    DriftPolicy,
    DriftVerdict,
    LifecycleStats,
)
from repro.serving.planner import BatchPlan, BatchPlanner, RequestPlan
from repro.serving.pool_index import IndexedSlab, PoolEncodingIndex, PoolIndexStats
from repro.serving.service import (
    EstimateResult,
    EstimationService,
    RequestOptions,
    ServedEstimate,
    ServiceStats,
    build_crn_service,
)

__all__ = [
    "AdaptationConfig",
    "AdaptationManager",
    "AdaptationOutcome",
    "ArtifactChecksumError",
    "ArtifactConfig",
    "ArtifactError",
    "ArtifactNotFoundError",
    "ArtifactSchemaError",
    "BatchPlan",
    "BatchPlanner",
    "CRNRetrainer",
    "CacheConfig",
    "CacheStats",
    "ClusterConfig",
    "ClusterError",
    "ClusterProtocolError",
    "DeadlineExceededError",
    "DispatcherConfig",
    "DispatcherShutdownError",
    "DispatcherStats",
    "DriftMonitor",
    "DriftPolicy",
    "DriftVerdict",
    "EncodingCache",
    "EstimateResult",
    "EstimationService",
    "EstimatorConfig",
    "FeaturizationCache",
    "FeedbackCollector",
    "FeedbackConfig",
    "FeedbackObservation",
    "FeedbackSummary",
    "IndexedSlab",
    "InferenceConfig",
    "InferencePlan",
    "LifecycleStats",
    "NoMatchingPoolQueryError",
    "ObservabilityConfig",
    "PoolConfig",
    "PoolEncodingIndex",
    "PoolIndexStats",
    "RequestOptions",
    "RequestPlan",
    "ServedEstimate",
    "ServiceStack",
    "ServiceStats",
    "ServingClient",
    "ServingConfig",
    "ServingDispatcher",
    "ServingError",
    "TracingConfig",
    "UnknownEstimatorError",
    "WorkerUnavailableError",
    "build_crn_service",
    "build_service_stack",
    "compile_plan",
]
