"""Adaptive model lifecycle: drift monitoring, background retraining, hot swaps.

The paper's Section 9 prescribes keeping CRN accurate under database change
via full or incremental retraining; :mod:`repro.extensions.updates`
implements both as offline functions.  This module closes the loop for a
*live* service: it watches the feedback window
(:class:`repro.serving.FeedbackCollector`), decides when the serving model
has drifted (:class:`DriftMonitor` over a :class:`DriftPolicy`), retrains in
the background while the dispatcher keeps serving, gates the candidate on a
held-out feedback slice, and promotes it with the zero-downtime swap
primitives (:meth:`repro.serving.EstimationService.replace`,
:meth:`repro.serving.EncodingCache.rebind`).

The adaptation cycle, end to end::

    feedback window ──DriftPolicy──▶ trigger
        │ (rolling p90 q-error / degradation vs baseline / row-count delta)
        ▼
    retrain (RetrainSession: incremental, escalating to full after
             repeated failures) + refresh_queries_pool
        ▼
    shadow-register candidate ──▶ validate on the most recent feedback
        │                          slice (post-update ground truth)
        ▼
    accept gate: candidate q-error ≤ accept_ratio × incumbent q-error
        ├── reject ──▶ unregister candidate, count it, cool down
        └── accept ──▶ rebind the shared encoding cache, pre-warm the
                       refreshed pool, replace() atomically, clear the
                       feedback window, re-baseline

Everything runs on one worker thread owned by :class:`AdaptationManager`
(started with :meth:`~AdaptationManager.start`); at most one retrain is in
flight at any time, policy-driven triggers respect a cooldown, and
:meth:`~AdaptationManager.trigger` / :meth:`~AdaptationManager.pause` give
operators manual control.  The swap itself never drops or corrupts an
in-flight request: in-flight batches finish on the estimator object they
resolved, and the encoding cache fences stale writers
(:meth:`repro.serving.EncodingCache.put` with ``owner=``), so the new model
can never be served an old model's encoding.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.cnt2crd import Cnt2CrdEstimator
from repro.core.crn import CRNEstimator
from repro.core.metrics import q_errors
from repro.core.queries_pool import QueriesPool
from repro.core.training import TrainingConfig, TrainingResult
from repro.db.database import Database
from repro.extensions.updates import (
    RetrainProgress,
    RetrainSession,
    refresh_queries_pool,
)
from repro.observability.events import (
    AcceptGateDecision,
    DriftTrip,
    ModelSwap,
    PlanCompiled,
    PlanSwap,
)
from repro.serving.cache import FeaturizationCache
from repro.serving.feedback import FeedbackCollector
from repro.serving.inference_plan import compile_plan
from repro.serving.service import EstimationService


@dataclass(frozen=True)
class DriftPolicy:
    """When is the serving model considered stale?

    Any enabled condition firing marks the model as drifted.  The feedback
    conditions (absolute threshold, degradation ratio) only arm once the
    window holds ``min_observations``; the row-count condition needs no
    feedback at all — it reacts to the data changing under the model.

    Attributes:
        quantile: which rolling q-error quantile the feedback conditions
            watch (0.9 = the p90 the paper's tables report).
        max_q_error: absolute threshold on the watched quantile (None
            disables).
        degradation_ratio: fires when the watched quantile reaches this
            multiple of the baseline window's value (None disables).  The
            baseline freezes automatically from the first full window and
            re-freezes after every accepted swap, so the condition is
            self-calibrating: it compares the model against its own healthy
            self, not against a hand-tuned constant.
        max_row_delta: fires when the database's total row count has changed
            by more than this fraction since the last refresh (None
            disables).
        min_observations: feedback observations required before the q-error
            conditions arm (also the auto-baseline size).
        cooldown_seconds: minimum time between policy-driven adaptation
            attempts (manual triggers bypass it).
    """

    quantile: float = 0.9
    max_q_error: float | None = 10.0
    degradation_ratio: float | None = 2.0
    max_row_delta: float | None = None
    min_observations: int = 20
    cooldown_seconds: float = 60.0

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile <= 1.0:
            raise ValueError("quantile must lie in (0, 1]")
        if self.max_q_error is not None and self.max_q_error < 1.0:
            raise ValueError("max_q_error must be >= 1 (q-errors never fall below 1)")
        if self.degradation_ratio is not None and self.degradation_ratio <= 1.0:
            raise ValueError("degradation_ratio must exceed 1")
        if self.max_row_delta is not None and self.max_row_delta <= 0.0:
            raise ValueError("max_row_delta must be positive")
        if self.min_observations <= 0:
            raise ValueError("min_observations must be positive")
        if self.cooldown_seconds < 0.0:
            raise ValueError("cooldown_seconds must be non-negative")


@dataclass(frozen=True)
class DriftVerdict:
    """One drift evaluation: did any policy condition fire, and why.

    Attributes:
        triggered: True when at least one condition fired.
        reasons: human-readable description of every fired condition.
        q_error: the watched rolling quantile (NaN with an empty window).
        baseline_q_error: the frozen baseline's quantile (NaN before the
            baseline exists).
        observations: feedback observations in the window.
        row_delta: fractional row-count change since the last refresh (NaN
            when unknown).
    """

    triggered: bool
    reasons: tuple[str, ...]
    q_error: float
    baseline_q_error: float
    observations: int
    row_delta: float


class DriftMonitor:
    """Evaluates a :class:`DriftPolicy` against a feedback window.

    The monitor owns the *baseline*: a frozen snapshot of the window's
    q-errors representing the model when it was last known healthy.  It
    freezes automatically the first time the window holds
    ``policy.min_observations`` and is cleared by :meth:`rebaseline` after a
    swap (freezing again from the new model's first full window).

    Thread-safety: evaluations may race recordings — the collector hands out
    consistent snapshots — and the baseline is guarded by the monitor lock,
    so the lifecycle worker and ad-hoc callers can share one monitor.

    Args:
        collector: the feedback window to watch.
        policy: the drift policy (defaults apply when omitted).
        estimator: restrict the watch to one registry name's observations
            (None watches everything).
    """

    def __init__(
        self,
        collector: FeedbackCollector,
        policy: DriftPolicy | None = None,
        estimator: str | None = None,
    ) -> None:
        self.collector = collector
        self.policy = policy or DriftPolicy()
        self.estimator = estimator
        if collector.max_observations < self.policy.min_observations:
            raise ValueError(
                f"the collector's window bound ({collector.max_observations}) is "
                f"smaller than the policy's min_observations "
                f"({self.policy.min_observations}): the q-error conditions could "
                f"never arm and the baseline would never freeze"
            )
        self._baseline_errors: tuple[float, ...] | None = None
        self._lock = threading.Lock()

    @property
    def baseline_frozen(self) -> bool:
        """Whether a baseline window is currently frozen."""
        with self._lock:
            return self._baseline_errors is not None

    def baseline_quantile(self, q: float | None = None) -> float:
        """The baseline's q-error quantile (policy quantile by default; NaN when unfrozen)."""
        with self._lock:
            errors = self._baseline_errors
        if not errors:
            return float("nan")
        quantile = q if q is not None else self.policy.quantile
        return float(np.quantile(np.asarray(errors, dtype=np.float64), quantile))

    def freeze_baseline(self) -> None:
        """Snapshot the current window as the healthy reference (no-op when empty)."""
        errors = self.collector.window_errors(self.estimator)
        if not errors:
            return
        with self._lock:
            self._baseline_errors = tuple(errors)

    def rebaseline(self) -> None:
        """Drop the frozen baseline (it re-freezes from the next full window)."""
        with self._lock:
            self._baseline_errors = None

    def evaluate(
        self,
        current_rows: int | None = None,
        rows_at_refresh: int | None = None,
    ) -> DriftVerdict:
        """Evaluate every enabled policy condition and explain the verdict.

        Args:
            current_rows: the database's total row count now (enables the
                row-delta condition together with ``rows_at_refresh``).
            rows_at_refresh: the total row count when the serving model was
                last (re)trained.
        """
        policy = self.policy
        errors = self.collector.window_errors(self.estimator)
        count = len(errors)
        observed = (
            float(np.quantile(np.asarray(errors, dtype=np.float64), policy.quantile))
            if count
            else float("nan")
        )
        # Never freeze a NaN-poisoned window as the healthy reference: a
        # diverged model emitting NaN estimates during the *first* full
        # window would otherwise bake a NaN baseline in forever (rebaseline
        # only runs after a swap, and a NaN baseline can never arm the
        # degradation condition that would cause one).
        if (
            count >= policy.min_observations
            and not np.isnan(observed)
            and not self.baseline_frozen
        ):
            self.freeze_baseline()
        baseline = self.baseline_quantile()
        label = f"p{policy.quantile * 100:.0f}"
        reasons: list[str] = []
        # A NaN quantile (empty window, or a NaN observation poisoning the
        # window — e.g. a diverged model emitting NaN estimates) is "no
        # signal", not "infinite error".  The q-error conditions require a
        # non-NaN reading *explicitly*: NaN comparisons happen to be False,
        # but a policy must not hinge on IEEE comparison semantics.
        if count >= policy.min_observations and not np.isnan(observed):
            if policy.max_q_error is not None and observed > policy.max_q_error:
                reasons.append(
                    f"rolling {label} q-error {observed:.2f} exceeds {policy.max_q_error:.2f}"
                )
            if (
                policy.degradation_ratio is not None
                and np.isfinite(baseline)
                and baseline > 0.0
                and observed >= policy.degradation_ratio * baseline
            ):
                reasons.append(
                    f"rolling {label} q-error {observed:.2f} degraded "
                    f"{observed / baseline:.2f}x vs baseline {baseline:.2f} "
                    f"(threshold {policy.degradation_ratio:.2f}x)"
                )
        row_delta = float("nan")
        if current_rows is not None and rows_at_refresh is not None and rows_at_refresh > 0:
            row_delta = abs(current_rows - rows_at_refresh) / rows_at_refresh
        if (
            policy.max_row_delta is not None
            and not np.isnan(row_delta)  # unknown row counts are "no signal"
            and row_delta > policy.max_row_delta
        ):
            reasons.append(
                f"row count changed {row_delta:.1%} since the last refresh "
                f"(threshold {policy.max_row_delta:.1%})"
            )
        return DriftVerdict(
            triggered=bool(reasons),
            reasons=tuple(reasons),
            q_error=observed,
            baseline_q_error=baseline,
            observations=count,
            row_delta=row_delta,
        )


class LifecycleStats:
    """Thread-safe counters describing the adaptation subsystem's activity.

    Counters are monotonic; the ``last_*`` / ``pre_swap`` / ``post_swap``
    fields are gauges describing the most recent event.  ``snapshot()``
    merges cleanly with :meth:`EstimationService.stats_snapshot` and
    :meth:`repro.serving.DispatcherStats.snapshot` for one coherent
    :func:`repro.evaluation.format_service_stats` report.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.evaluations = 0
        self.drift_triggers = 0
        self.manual_triggers = 0
        self.retrains = 0
        self.incremental_retrains = 0
        self.full_retrains = 0
        self.retrain_failures = 0
        self.promote_failures = 0
        self.escalations = 0
        self.candidates_rejected = 0
        self.swaps = 0
        self.total_retrain_seconds = 0.0
        self.last_retrain_seconds = 0.0
        self.pre_swap_q_error = float("nan")
        self.post_swap_q_error = float("nan")
        self.requests_between_swaps = 0
        self.model_generation = 0
        self.artifact_saves = 0
        self.artifact_save_failures = 0

    def record_evaluation(self, triggered: bool) -> None:
        """Count one drift evaluation (and whether the policy fired)."""
        with self._lock:
            self.evaluations += 1
            if triggered:
                self.drift_triggers += 1

    def record_manual_trigger(self) -> None:
        """Count one operator-forced adaptation cycle."""
        with self._lock:
            self.manual_triggers += 1

    def record_retrain(self, mode: str, seconds: float, failed: bool) -> None:
        """Count one retrain attempt of ``mode`` taking ``seconds``."""
        with self._lock:
            self.retrains += 1
            if mode == "full":
                self.full_retrains += 1
            else:
                self.incremental_retrains += 1
            self.total_retrain_seconds += seconds
            self.last_retrain_seconds = seconds
            if failed:
                self.retrain_failures += 1

    def record_promote_failure(self) -> None:
        """Count one swap that failed *after* a successful retrain."""
        with self._lock:
            self.promote_failures += 1

    def record_escalation(self) -> None:
        """Count one incremental→full escalation after repeated failures."""
        with self._lock:
            self.escalations += 1

    def record_rejection(self) -> None:
        """Count one candidate the accept gate turned away."""
        with self._lock:
            self.candidates_rejected += 1

    def record_artifact_save(self, failed: bool) -> None:
        """Count one post-swap artifact persistence attempt."""
        with self._lock:
            self.artifact_saves += 1
            if failed:
                self.artifact_save_failures += 1

    def record_swap(
        self,
        incumbent_q_error: float,
        candidate_q_error: float,
        requests: int,
        generation: int = 0,
    ) -> None:
        """Count one accepted hot swap with its gate readings.

        ``generation`` is the registry's post-swap model generation for the
        adapted entry (:meth:`repro.serving.EstimationService.generation`) —
        the same number stamped into every subsequent
        :attr:`repro.serving.EstimateResult.model_generation`, so serving
        metrics and responses attribute to the same model.
        """
        with self._lock:
            self.swaps += 1
            self.pre_swap_q_error = incumbent_q_error
            self.post_swap_q_error = candidate_q_error
            self.requests_between_swaps = requests
            self.model_generation = generation

    @property
    def mean_retrain_seconds(self) -> float:
        """Average duration of a retrain attempt."""
        with self._lock:
            if not self.retrains:
                return 0.0
            return self.total_retrain_seconds / self.retrains

    def snapshot(self) -> dict[str, float]:
        """A plain-dict view for :func:`repro.evaluation.format_service_stats`."""
        with self._lock:
            retrains = self.retrains
            return {
                "evaluations": float(self.evaluations),
                "drift_triggers": float(self.drift_triggers),
                "manual_triggers": float(self.manual_triggers),
                "retrains": float(retrains),
                "incremental_retrains": float(self.incremental_retrains),
                "full_retrains": float(self.full_retrains),
                "retrain_failures": float(self.retrain_failures),
                "promote_failures": float(self.promote_failures),
                "escalations": float(self.escalations),
                "candidates_rejected": float(self.candidates_rejected),
                "swaps": float(self.swaps),
                "mean_retrain_seconds": (
                    self.total_retrain_seconds / retrains if retrains else 0.0
                ),
                "last_retrain_seconds": self.last_retrain_seconds,
                "pre_swap_q_error": self.pre_swap_q_error,
                "post_swap_q_error": self.post_swap_q_error,
                "requests_between_swaps": float(self.requests_between_swaps),
                "model_generation": float(self.model_generation),
                "artifact_saves": float(self.artifact_saves),
                "artifact_save_failures": float(self.artifact_save_failures),
            }


class CRNRetrainer:
    """Builds retrained CRN candidates against the current database snapshot.

    The retrainer owns the mutable training state the lifecycle adapts:
    the last *accepted* :class:`TrainingResult`, the queries pool backing the
    serving estimator, and the database snapshot to label against.  When the
    operator applies a database update, :meth:`set_database` points the
    retrainer at the new snapshot; the drift policy then notices the model
    degrading (or the row count jumping) and the manager asks for candidates.

    Both retrain modes go through :class:`repro.extensions.RetrainSession`,
    so long retrains report per-epoch progress through ``on_progress``.
    Pair-generation seeds vary per attempt — a rejected candidate is not
    deterministically retried on the identical pair sample.

    Args:
        result: the currently-serving training result.
        database: the snapshot the serving model was trained against.
        pool: the queries pool backing the serving estimator.
        training_pairs: pairs generated per retrain attempt.
        incremental_epochs: epoch budget for incremental fine-tuning.
        full_epochs: epoch budget for a from-fresh-weights retrain.
        training_config: optimisation settings shared by both modes.
        seed: base pair-generation seed (varied per attempt).
        on_progress: per-epoch :class:`~repro.extensions.RetrainProgress`
            callback.
    """

    def __init__(
        self,
        result: TrainingResult,
        database: Database,
        pool: QueriesPool,
        training_pairs: int = 120,
        incremental_epochs: int = 4,
        full_epochs: int = 8,
        training_config: TrainingConfig | None = None,
        seed: int = 1,
        on_progress: Callable[[RetrainProgress], None] | None = None,
    ) -> None:
        if training_pairs <= 0:
            raise ValueError("training_pairs must be positive")
        if incremental_epochs <= 0 or full_epochs <= 0:
            raise ValueError("epoch budgets must be positive")
        self.training_pairs = training_pairs
        self.incremental_epochs = incremental_epochs
        self.full_epochs = full_epochs
        self.training_config = training_config
        self.on_progress = on_progress
        self._seed = seed
        self._attempts = 0
        self._result = result
        self._database = database
        self._pool = pool
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # accepted state

    @property
    def result(self) -> TrainingResult:
        """The currently-accepted training result."""
        with self._lock:
            return self._result

    @property
    def database(self) -> Database:
        """The current snapshot candidates are labelled against."""
        with self._lock:
            return self._database

    @property
    def pool(self) -> QueriesPool:
        """The currently-accepted queries pool."""
        with self._lock:
            return self._pool

    def set_database(self, database: Database) -> None:
        """Point the retrainer at an updated snapshot (the operator's hook)."""
        with self._lock:
            self._database = database

    def accept(self, result: TrainingResult, pool: QueriesPool) -> None:
        """Record a promoted candidate as the new accepted state."""
        with self._lock:
            self._result = result
            self._pool = pool

    # ------------------------------------------------------------------ #
    # candidate construction

    def incremental(self) -> TrainingResult:
        """Fine-tune the accepted weights on pairs from the current snapshot."""
        session = self._session(base_result=self.result)
        return session.run(self.incremental_epochs)

    def full(self) -> TrainingResult:
        """Train fresh weights (same architecture) on the current snapshot."""
        session = self._session(base_result=None)
        return session.run(self.full_epochs)

    def refresh_pool(self) -> QueriesPool:
        """Re-execute the accepted pool's queries on the current snapshot."""
        return refresh_queries_pool(self.pool, self.database)

    def _session(self, base_result: TrainingResult | None) -> RetrainSession:
        with self._lock:
            self._attempts += 1
            attempt = self._attempts
        return RetrainSession(
            self.database,
            base_result=base_result,
            training_pairs=self.training_pairs,
            crn_config=self.result.model.config,
            training_config=self.training_config,
            seed=self._seed + attempt,
            on_progress=self.on_progress,
        )


@dataclass(frozen=True)
class AdaptationOutcome:
    """What one adaptation cycle did.

    ``action`` is one of ``"idle"`` (policy quiet), ``"paused"``,
    ``"cooldown"``, ``"retrain-failed"``, ``"rejected"`` (the gate turned the
    candidate away), ``"promote-failed"`` (the swap itself failed; the
    incumbent keeps serving with its cache restored), ``"swapped"``, or
    ``"stopped"`` (the manager was stopped before a pending manual trigger's
    cycle could run).
    """

    action: str
    mode: str | None
    verdict: DriftVerdict | None
    incumbent_q_error: float = float("nan")
    candidate_q_error: float = float("nan")
    retrain_seconds: float = 0.0

    @property
    def swapped(self) -> bool:
        """Whether the cycle promoted a new model."""
        return self.action == "swapped"


class _ManualTrigger:
    """A pending operator trigger travelling to the worker thread."""

    def __init__(self) -> None:
        self.event = threading.Event()
        self.outcome: AdaptationOutcome | None = None


class AdaptationManager:
    """The background worker that keeps a serving CRN estimator fresh.

    Wires a :class:`DriftMonitor` (over a :class:`FeedbackCollector`), a
    :class:`CRNRetrainer`, and an :class:`EstimationService` into the
    self-correcting loop described in the module docstring.  ``start()``
    spawns one worker thread that evaluates the drift policy every
    ``poll_interval_seconds``; at most one adaptation cycle runs at any time
    (worker and manual triggers serialize on the cycle lock).

    Candidate validation is a *shadow deployment*: the candidate is
    registered under ``"<name>-candidate"``, served the most recent feedback
    slice through the ordinary batched path, compared against the incumbent's
    recorded errors on exactly those queries, then unregistered — promoted
    via :meth:`EstimationService.replace` only if it passes the gate.  With
    an empty window (e.g. a manual trigger before any feedback) the gate is
    skipped and the candidate promotes unconditionally.

    Failures never kill the worker: retrain, validation, and promote errors
    are counted in :attr:`stats`, the most recent exception is kept on
    :attr:`last_error`, and the incumbent keeps serving (a failure *during*
    the promote re-binds the shared encoding cache to the incumbent model so
    it is not left fenced out of its own cache).

    Args:
        service: the live estimation service.
        collector: the feedback window ground truth flows into.
        retrainer: builds candidates (and owns the accepted state).
        policy: drift policy (ignored when ``monitor`` is supplied).
        monitor: a pre-built monitor (built from ``policy`` when omitted).
        estimator_name: the registry entry to keep fresh (the service
            default when omitted); must resolve to a
            :class:`~repro.core.cnt2crd.Cnt2CrdEstimator` over a CRN.
        poll_interval_seconds: how often the worker evaluates the policy.
        holdout_size: most-recent observations used by the accept gate.
        accept_ratio: the candidate ships when its median holdout q-error is
            at most this multiple of the incumbent's (1.0 = must not be
            worse).
        max_incremental_failures: consecutive failed/rejected incremental
            attempts before escalating to a full retrain.
        warm_on_swap: pre-featurize/encode the refreshed pool through the
            shared caches before the swap, so the first post-swap requests
            hit warm caches.
    """

    def __init__(
        self,
        service: EstimationService,
        collector: FeedbackCollector,
        retrainer: CRNRetrainer,
        policy: DriftPolicy | None = None,
        monitor: DriftMonitor | None = None,
        estimator_name: str | None = None,
        poll_interval_seconds: float = 1.0,
        holdout_size: int = 16,
        accept_ratio: float = 1.0,
        max_incremental_failures: int = 2,
        warm_on_swap: bool = True,
    ) -> None:
        if poll_interval_seconds <= 0:
            raise ValueError("poll_interval_seconds must be positive")
        if holdout_size <= 0:
            raise ValueError("holdout_size must be positive")
        if accept_ratio <= 0:
            raise ValueError("accept_ratio must be positive")
        if max_incremental_failures < 0:
            raise ValueError("max_incremental_failures must be non-negative")
        self.service = service
        self.collector = collector
        self.retrainer = retrainer
        self.estimator_name = (
            estimator_name if estimator_name is not None else service.default_estimator
        )
        # The default monitor watches only the adapted estimator's feedback:
        # with several registry entries sharing one collector, another
        # estimator's errors must not fire (or mask) this estimator's drift.
        self.monitor = monitor or DriftMonitor(
            collector, policy, estimator=self.estimator_name
        )
        self.poll_interval_seconds = poll_interval_seconds
        self.holdout_size = holdout_size
        self.accept_ratio = accept_ratio
        self.max_incremental_failures = max_incremental_failures
        self.warm_on_swap = warm_on_swap
        self.stats = LifecycleStats()
        # Seed the generation gauge from the live registry so pre-swap
        # snapshots agree with the generation stamped on every response
        # (it would otherwise read 0 until the first swap).
        self.stats.model_generation = self.service.generation(self.estimator_name)
        self.last_outcome: AdaptationOutcome | None = None
        self.last_error: BaseException | None = None
        self.artifact_store = None
        self.artifact_config_mapping: dict | None = None
        self.artifact_promote_on_save = True
        self._rows_at_refresh = retrainer.database.total_rows
        self._consecutive_failures = 0
        self._cooldown_until = 0.0
        self._clear_pending = False
        self._cycle_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._wake = threading.Event()
        self._stopped = False
        self._paused = False
        self._pending: list[_ManualTrigger] = []
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    # lifecycle of the lifecycle

    def start(self) -> "AdaptationManager":
        """Spawn the background worker (idempotent while running)."""
        with self._state_lock:
            if self._stopped:
                raise RuntimeError("adaptation manager has been stopped")
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, name="adaptation-manager", daemon=True
                )
                self._thread.start()
        return self

    def stop(self, wait: bool = True) -> None:
        """Stop the worker after its current cycle completes.  Idempotent."""
        with self._state_lock:
            self._stopped = True
            self._wake.set()
            thread = self._thread
        if wait and thread is not None:
            thread.join()

    def __enter__(self) -> "AdaptationManager":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(wait=True)

    # ------------------------------------------------------------------ #
    # operator controls

    def attach_artifact_store(
        self, store, config_mapping, promote_on_save: bool = True
    ) -> None:
        """Persist every accepted candidate as a new artifact generation.

        After each successful hot swap the manager writes the promoted
        model + refreshed pool to ``store`` (an
        :class:`repro.artifacts.ArtifactStore`) under the swap's registry
        generation number, so the adapted model survives a client shutdown
        — a restart via :meth:`repro.serving.ServingClient.from_artifact`
        serves the promoted generation, not the originally-trained one.
        ``config_mapping`` is the serving config the bundle embeds
        (:meth:`repro.serving.ServingConfig.to_mapping`); with
        ``promote_on_save`` the store's ``latest`` pointer advances to each
        saved generation (leaving the prior one as the rollback target).

        A persistence failure is recorded (``artifact_save_failures``,
        :attr:`last_error`) but never fails the already-completed swap —
        the in-memory promote is authoritative; the snapshot is durability.
        """
        self.artifact_store = store
        self.artifact_config_mapping = dict(config_mapping)
        self.artifact_promote_on_save = bool(promote_on_save)

    def pause(self) -> None:
        """Suspend policy-driven adaptation (manual triggers still run)."""
        with self._state_lock:
            self._paused = True

    def resume(self) -> None:
        """Resume policy-driven adaptation."""
        with self._state_lock:
            self._paused = False

    @property
    def paused(self) -> bool:
        """Whether policy-driven adaptation is suspended."""
        with self._state_lock:
            return self._paused

    def trigger(
        self, wait: bool = True, timeout: float | None = None
    ) -> AdaptationOutcome | None:
        """Force one adaptation cycle, bypassing policy, cooldown, and pause.

        With a running worker the cycle executes on the worker thread
        (``wait=True`` blocks until it finishes and returns its outcome;
        ``wait=False`` returns None immediately).  Without one — the manager
        was never started, or already stopped — the cycle runs synchronously
        on the calling thread.

        Raises:
            TimeoutError: when ``wait`` expires before the cycle completes.
        """
        self.stats.record_manual_trigger()
        with self._state_lock:
            running = self._thread is not None and self._thread.is_alive() and not self._stopped
            if running:
                pending = _ManualTrigger()
                self._pending.append(pending)
                self._wake.set()
        if not running:
            return self.run_cycle(force=True)
        if not wait:
            return None
        if not pending.event.wait(timeout):
            raise TimeoutError("adaptation cycle did not complete within the timeout")
        return pending.outcome

    # ------------------------------------------------------------------ #
    # the adaptation cycle

    def run_cycle(self, force: bool = False) -> AdaptationOutcome:
        """Run one evaluate→retrain→validate→swap cycle synchronously.

        The cycle lock guarantees a single in-flight retrain: concurrent
        callers (worker plus manual) serialize here.  ``force`` skips the
        policy gate, the cooldown, and the pause flag.
        """
        with self._cycle_lock:
            outcome = self._cycle_locked(force)
        self.last_outcome = outcome
        return outcome

    def _cycle_locked(self, force: bool) -> AdaptationOutcome:
        if self._clear_pending:
            # Second sweep after a swap: feedback for estimates that were in
            # flight on the outgoing model can land *after* the swap-time
            # clear (replace() lets those batches finish).  Clearing again on
            # the next cycle — one poll interval later — keeps the stale
            # errors out of the new model's window and its auto-frozen
            # baseline.
            self.collector.clear()
            self._clear_pending = False
        verdict = self.monitor.evaluate(
            current_rows=self.retrainer.database.total_rows,
            rows_at_refresh=self._rows_at_refresh,
        )
        self.stats.record_evaluation(verdict.triggered)
        recorder = self.service.recorder
        if recorder is not None and verdict.triggered:
            recorder.emit(
                DriftTrip(
                    estimator_name=self.estimator_name,
                    q_error=verdict.q_error,
                    baseline_q_error=verdict.baseline_q_error,
                    observations=verdict.observations,
                    row_delta=verdict.row_delta,
                    reasons=verdict.reasons,
                )
            )
        if not force:
            if self.paused:
                return AdaptationOutcome("paused", None, verdict)
            if not verdict.triggered:
                return AdaptationOutcome("idle", None, verdict)
            if time.monotonic() < self._cooldown_until:
                return AdaptationOutcome("cooldown", None, verdict)
        return self._adapt(verdict)

    def _adapt(self, verdict: DriftVerdict) -> AdaptationOutcome:
        policy = self.monitor.policy
        escalate = self._consecutive_failures >= self.max_incremental_failures
        mode = "full" if escalate else "incremental"
        if escalate:
            self.stats.record_escalation()
        started = time.perf_counter()
        try:
            candidate = self.retrainer.full() if escalate else self.retrainer.incremental()
            refreshed_pool = self.retrainer.refresh_pool()
            incumbent = self.service.get(self.estimator_name)
            shadow = self._build_estimator(candidate, refreshed_pool, incumbent, shared=False)
        except Exception as error:
            self.last_error = error
            seconds = time.perf_counter() - started
            self._consecutive_failures += 1
            self.stats.record_retrain(mode, seconds, failed=True)
            self._cooldown_until = time.monotonic() + policy.cooldown_seconds
            return AdaptationOutcome("retrain-failed", mode, verdict, retrain_seconds=seconds)
        seconds = time.perf_counter() - started
        self.stats.record_retrain(mode, seconds, failed=False)

        incumbent_q, candidate_q, accepted, holdout_count = self._validate(shadow)
        recorder = self.service.recorder
        # holdout_count == 0 means the gate was skipped (empty window):
        # an unconditional promotion is not a gate decision, so no event.
        if recorder is not None and holdout_count:
            recorder.emit(
                AcceptGateDecision(
                    estimator_name=self.estimator_name,
                    accepted=accepted,
                    incumbent_q_error=incumbent_q,
                    candidate_q_error=candidate_q,
                    holdout_size=holdout_count,
                    mode=mode,
                )
            )
        if not accepted:
            self._consecutive_failures += 1
            self.stats.record_rejection()
            self._cooldown_until = time.monotonic() + policy.cooldown_seconds
            return AdaptationOutcome(
                "rejected", mode, verdict, incumbent_q, candidate_q, seconds
            )

        try:
            self._promote(candidate, refreshed_pool, incumbent)
        except Exception as error:
            # The promote path touches the shared encoding cache *before* the
            # registry swap; a failure in between (e.g. the estimator was
            # unregistered mid-cycle) must not leave the still-serving
            # incumbent fenced out of its own cache.  Re-bind it, count the
            # failure, and keep the worker alive.
            self.last_error = error
            if isinstance(incumbent.containment_estimator, CRNEstimator):
                if self.service.encoding_cache is not None:
                    self.service.encoding_cache.rebind(
                        incumbent.containment_estimator.model
                    )
                if self.service.pool_index is not None:
                    # Symmetric recovery: the index was already rebound to
                    # the candidate; hand it back (with the incumbent's pool)
                    # so the still-serving incumbent is not fenced out of its
                    # own fast path.  Slabs rebuild lazily from the cache.
                    self.service.pool_index.rebind(
                        incumbent.containment_estimator.model, pool=incumbent.pool
                    )
                incumbent_plan = getattr(
                    incumbent.containment_estimator, "inference_plan", None
                )
                if recorder is not None and incumbent_plan is not None:
                    # The incumbent's plan was never detached, so there is
                    # nothing to re-attach — the event records that the
                    # candidate's freshly compiled plan did NOT go live.
                    recorder.emit(
                        PlanSwap(
                            estimator_name=self.estimator_name,
                            generation=self.service.generation(self.estimator_name),
                            dtype=incumbent_plan.dtype.name,
                            outcome="rollback",
                        )
                    )
            self._consecutive_failures += 1
            self.stats.record_promote_failure()
            self._cooldown_until = time.monotonic() + policy.cooldown_seconds
            return AdaptationOutcome(
                "promote-failed", mode, verdict, incumbent_q, candidate_q, seconds
            )
        drained = self.service.drain_stats()
        # The drained interval includes the shadow validation's own
        # submissions; subtract them so the gauge attributes only real
        # traffic to the outgoing generation.
        generation = self.service.generation(self.estimator_name)
        requests_between = max(int(drained["requests"]) - holdout_count, 0)
        self.stats.record_swap(
            incumbent_q,
            candidate_q,
            requests_between,
            generation=generation,
        )
        if recorder is not None:
            recorder.emit(
                ModelSwap(
                    estimator_name=self.estimator_name,
                    generation=generation,
                    pre_swap_q_error=incumbent_q,
                    post_swap_q_error=candidate_q,
                    requests_between_swaps=requests_between,
                    mode=mode,
                    retrain_seconds=seconds,
                )
            )
            promoted = self.service.get(self.estimator_name)
            promoted_plan = getattr(
                promoted.containment_estimator, "inference_plan", None
            )
            if promoted_plan is not None:
                recorder.emit(
                    PlanSwap(
                        estimator_name=self.estimator_name,
                        generation=generation,
                        dtype=promoted_plan.dtype.name,
                        outcome="promoted",
                    )
                )
        if self.artifact_store is not None and self.artifact_config_mapping is not None:
            # Durability, not correctness: the swap already completed, so a
            # failed save is counted and kept for the operator but must not
            # convert a successful promote into a failed cycle.
            try:
                self.artifact_store.save(
                    model=candidate.model,
                    pool=refreshed_pool,
                    config_mapping=self.artifact_config_mapping,
                    generation=generation,
                    source="promote",
                    pool_index=self.service.pool_index,
                    promote=self.artifact_promote_on_save,
                )
            except Exception as error:
                self.last_error = error
                self.stats.record_artifact_save(failed=True)
            else:
                self.stats.record_artifact_save(failed=False)
        self._consecutive_failures = 0
        self._rows_at_refresh = self.retrainer.database.total_rows
        self._cooldown_until = time.monotonic() + policy.cooldown_seconds
        self.collector.clear()
        self._clear_pending = True
        self.monitor.rebaseline()
        return AdaptationOutcome(
            "swapped", mode, verdict, incumbent_q, candidate_q, seconds
        )

    def _validate(self, shadow: Cnt2CrdEstimator) -> tuple[float, float, bool, int]:
        """Shadow-deploy the candidate over the freshest feedback slice.

        Returns ``(incumbent q-error, candidate q-error, accepted, holdout
        size)``; both q-errors are NaN (and the gate is skipped) on an empty
        window.  The gate compares **median** holdout q-errors: on a small
        slice the arithmetic mean is owned by whichever near-zero-truth
        query happens to land in it, turning the accept decision into tail
        noise — the median compares how the two models serve the typical
        query.
        """
        # Only the adapted estimator's own observations grade the pair:
        # another registry entry's errors in the slice would corrupt the
        # incumbent's score (and could wave through a worse candidate).
        holdout = self.collector.holdout(
            self.holdout_size, estimator=self.estimator_name
        )
        if not holdout:
            return float("nan"), float("nan"), True, 0
        shadow_name = f"{self.estimator_name}-candidate"
        self.service.register(shadow_name, shadow)
        try:
            served = self.service.submit_batch(
                [item.query for item in holdout], estimator=shadow_name
            )
        except Exception as error:
            # A candidate that cannot even serve the holdout is rejected;
            # the exception is kept for the operator (last_error contract).
            self.last_error = error
            return float("nan"), float("nan"), False, len(holdout)
        finally:
            self.service.unregister(shadow_name)
        truths = [item.true_cardinality for item in holdout]
        candidate_q = float(
            np.median(
                q_errors(
                    [item.estimate for item in served],
                    truths,
                    epsilon=self.collector.epsilon,
                )
            )
        )
        incumbent_q = float(np.median([item.q_error for item in holdout]))
        if np.isnan(candidate_q) or np.isnan(incumbent_q):
            # NaN medians (NaN estimates from a diverged candidate, or NaN
            # observations in the window) are "no signal": reject explicitly
            # instead of letting the always-False NaN comparison decide —
            # which would also, by accident, reject on a NaN *incumbent*
            # where promoting a finite candidate might look tempting but
            # would ship a model validated against nothing.
            return incumbent_q, candidate_q, False, len(holdout)
        accepted = candidate_q <= self.accept_ratio * incumbent_q
        return incumbent_q, candidate_q, accepted, len(holdout)

    def _build_estimator(
        self,
        candidate: TrainingResult,
        pool: QueriesPool,
        incumbent,
        shared: bool,
    ) -> Cnt2CrdEstimator:
        """Assemble a serving estimator around ``candidate``.

        Mirrors the incumbent's configuration (final function, epsilon guard,
        slab size, built-in fallback).  ``shared=False`` builds against
        private caches for shadow validation; ``shared=True`` is the promote
        path — it rebinds the service's encoding cache to the candidate model
        (fencing stale writers from the outgoing model) and reuses it.
        """
        if not isinstance(incumbent, Cnt2CrdEstimator):
            raise TypeError(
                f"the adaptation manager can only refresh Cnt2Crd estimators; "
                f"{self.estimator_name!r} is {type(incumbent).__name__}"
            )
        containment = incumbent.containment_estimator
        batch_size = containment.batch_size if isinstance(containment, CRNEstimator) else 256
        # Carry the incumbent cache's LRU bound forward: a swap must not
        # silently turn an operator-bounded cache into an unbounded one.
        featurization_cache = FeaturizationCache(
            candidate.featurizer,
            max_entries=getattr(
                getattr(containment, "featurizer", None), "max_entries", None
            ),
        )
        encoding_cache = None
        if shared and self.service.encoding_cache is not None:
            self.service.encoding_cache.rebind(candidate.model)
            encoding_cache = self.service.encoding_cache
        pool_index = None
        if shared and self.service.pool_index is not None:
            # Same fence discipline as the encoding cache: drop the outgoing
            # model's slabs and retarget the refreshed pool atomically, so
            # in-flight old-model requests degrade to the legacy path instead
            # of ever reading rows the candidate will own.
            self.service.pool_index.rebind(candidate.model, pool=pool)
            pool_index = self.service.pool_index
        crn = CRNEstimator(
            candidate.model,
            featurization_cache,
            batch_size=batch_size,
            encoding_cache=encoding_cache,
        )
        incumbent_plan = getattr(containment, "inference_plan", None)
        if shared and incumbent_plan is not None:
            # Plans freeze their weights at compile time, so the incumbent's
            # plan cannot serve the candidate model: recompile with the same
            # dtype/slab/tolerance contract and attach *before* the registry
            # swap ever exposes the new estimator — the first post-swap
            # request must already run the compiled path.  Shadow builds
            # (shared=False) stay on the reference path: a rejected candidate
            # should not pay for a compile.
            plan = compile_plan(
                candidate.model,
                dtype=incumbent_plan.dtype,
                slab_size=batch_size,
                tolerance=incumbent_plan.tolerance,
            )
            crn.attach_plan(plan)
            recorder = self.service.recorder
            if recorder is not None:
                recorder.emit(
                    PlanCompiled(
                        estimator_name=self.estimator_name,
                        # replace() bumps the generation; this plan serves
                        # the candidate's generation, not the incumbent's.
                        generation=self.service.generation(self.estimator_name) + 1,
                        dtype=plan.dtype.name,
                        nodes=plan.num_nodes,
                        constants=plan.num_constants,
                        compile_seconds=plan.compile_seconds,
                    )
                )
        return Cnt2CrdEstimator(
            crn,
            pool,
            final_function=incumbent.final_function,
            epsilon=incumbent.epsilon,
            fallback=incumbent.fallback,
            pool_index=pool_index,
        )

    def _promote(
        self,
        candidate: TrainingResult,
        pool: QueriesPool,
        incumbent: Cnt2CrdEstimator,
    ) -> None:
        """Atomically swap the candidate in; the dispatcher keeps serving.

        Order matters: the shared encoding cache is rebound (cleared + fenced
        against the outgoing model's in-flight writers) *before* the new
        estimator is built on it, the refreshed pool is pre-warmed through
        the shared caches, and only then does :meth:`EstimationService.replace`
        make the candidate visible — in-flight batches finish on the
        incumbent object, every later submission resolves the candidate.
        """
        tracer = self.service.tracer
        span = (
            tracer.begin("model_swap", estimator_name=self.estimator_name)
            if tracer is not None
            else None
        )
        try:
            estimator = self._build_estimator(candidate, pool, incumbent, shared=True)
            containment = estimator.containment_estimator
            if self.warm_on_swap:
                containment.warm(entry.query for entry in pool)
                if estimator.pool_index is not None:
                    # Rebuild the whole-pool encoding matrices with the
                    # candidate model *before* the registry swap: the first
                    # post-swap request then scores against warm slabs
                    # instead of paying a full per-signature re-encoding
                    # stall.
                    estimator.pool_index.warm(estimator)
            self.service.replace(self.estimator_name, estimator)
        finally:
            if span is not None:
                tracer.end(
                    span,
                    generation=self.service.generation(self.estimator_name),
                    warmed=self.warm_on_swap,
                )
        # The containment estimator's featurizer IS the new FeaturizationCache
        # (built in _build_estimator); point the service's reporting handle at it.
        self.service.featurization_cache = containment.featurizer
        self.retrainer.accept(candidate, pool)

    # ------------------------------------------------------------------ #
    # worker thread

    def _run(self) -> None:
        while True:
            self._wake.wait(self.poll_interval_seconds)
            self._wake.clear()
            with self._state_lock:
                stopped = self._stopped
                pending, self._pending = self._pending, []
            if stopped:
                # Never leave a waiting trigger() hanging across stop() —
                # and keep its documented always-an-outcome contract.
                for item in pending:
                    item.outcome = AdaptationOutcome("stopped", None, None)
                    item.event.set()
                return
            if pending:
                try:
                    outcome = self.run_cycle(force=True)
                    for item in pending:
                        item.outcome = outcome
                except Exception as error:  # pragma: no cover - defensive
                    self.last_error = error
                finally:
                    # A cycle bug must neither strand trigger(wait=True)
                    # callers nor kill the worker.
                    for item in pending:
                        item.event.set()
                continue
            if not self.paused:
                try:
                    self.run_cycle(force=False)
                except Exception as error:  # pragma: no cover - defensive
                    # _adapt guards its own failure modes; anything reaching
                    # here is a cycle bug.  Record it and keep adapting —
                    # a dead worker would silently freeze the lifecycle.
                    self.last_error = error
