"""Cross-request caches for the estimation service's featurization hot path.

The Cnt2Crd technique scores one incoming query against *every* matching pool
query in both containment directions, so under sustained traffic the same
pool queries are featurized and encoded over and over.  Both stages are pure
functions of the query (see :meth:`repro.core.crn.CRNModel.encode_set`), which
makes them safely memoizable:

* :class:`FeaturizationCache` memoizes the query → set-of-feature-vectors
  step (:meth:`repro.core.featurization.QueryFeaturizer.featurize`);
* :class:`EncodingCache` memoizes the featurized query → ``Qvec`` step of the
  CRN set encoders, keyed by ``(query, pair slot)``.

Queries are immutable and hash structurally (:mod:`repro.sql.query`), so the
query itself is the cache key; :meth:`QueryFeaturizer.cache_key` additionally
scopes keys to the database snapshot the featurizer is bound to.  Both caches
keep LRU order and support a ``max_entries`` bound for long-running services.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.featurization import QueryFeaturizer
from repro.sql.query import Query


@dataclass
class CacheStats:
    """Hit/miss accounting of one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of cache lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never used)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def snapshot(self) -> dict[str, float]:
        """A plain-dict view for reports (:func:`repro.evaluation.format_service_stats`)."""
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "hit_rate": self.hit_rate,
        }


class _LRUStore:
    """A tiny LRU map with shared stats accounting."""

    def __init__(self, max_entries: int | None, stats: CacheStats) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive (or None for unbounded)")
        self._store: OrderedDict = OrderedDict()
        self._max_entries = max_entries
        self._stats = stats

    def get(self, key):
        if key in self._store:
            self._stats.hits += 1
            self._store.move_to_end(key)
            return self._store[key]
        self._stats.misses += 1
        return None

    def put(self, key, value) -> None:
        self._store[key] = value
        self._store.move_to_end(key)
        if self._max_entries is not None and len(self._store) > self._max_entries:
            self._store.popitem(last=False)
            self._stats.evictions += 1

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        self._store.clear()


class FeaturizationCache:
    """A memoizing drop-in replacement for :class:`QueryFeaturizer`.

    Wraps a featurizer and caches :meth:`featurize` results per query, so a
    pool query scored by thousands of requests is featurized once, ever.  The
    read-side surface of the featurizer (``vector_size``, ``layout``,
    ``pad_sets``, ``featurize_batch``, ``normalize_value``) is forwarded, so
    the cache can be passed anywhere a featurizer is expected — in particular
    to :class:`repro.core.crn.CRNEstimator`.

    Args:
        featurizer: the wrapped featurizer.
        max_entries: optional LRU bound on cached queries (None = unbounded).
    """

    def __init__(self, featurizer: QueryFeaturizer, max_entries: int | None = None) -> None:
        self.featurizer = featurizer
        self.stats = CacheStats()
        self._store = _LRUStore(max_entries, self.stats)

    # ------------------------------------------------------------------ #
    # cached featurization

    def featurize(self, query: Query) -> np.ndarray:
        """Memoized :meth:`QueryFeaturizer.featurize`."""
        key = self.featurizer.cache_key(query)
        cached = self._store.get(key)
        if cached is not None:
            return cached
        features = self.featurizer.featurize(query)
        self._store.put(key, features)
        return features

    def featurize_batch(self, queries: list[Query]) -> tuple[np.ndarray, np.ndarray]:
        """Featurize (through the cache) and pad a batch of queries."""
        return self.pad_sets([self.featurize(query) for query in queries])

    def warm(self, queries) -> None:
        """Featurize ``queries`` ahead of time (e.g. the whole queries pool)."""
        for query in queries:
            self.featurize(query)

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        """Drop all cached featurizations (keeps the stats)."""
        self._store.clear()

    # ------------------------------------------------------------------ #
    # featurizer passthrough

    @property
    def vector_size(self) -> int:
        """The wrapped featurizer's vector dimension ``L``."""
        return self.featurizer.vector_size

    @property
    def layout(self):
        """The wrapped featurizer's segment layout."""
        return self.featurizer.layout

    @property
    def database(self):
        """The database snapshot the wrapped featurizer is bound to."""
        return self.featurizer.database

    def pad_sets(self, sets: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
        """Forwarded to :meth:`QueryFeaturizer.pad_sets`."""
        return self.featurizer.pad_sets(sets)

    def normalize_value(self, qualified_column: str, value: float) -> float:
        """Forwarded to :meth:`QueryFeaturizer.normalize_value`."""
        return self.featurizer.normalize_value(qualified_column, value)

    def cache_key(self, query: Query):
        """Forwarded to :meth:`QueryFeaturizer.cache_key`."""
        return self.featurizer.cache_key(query)


class EncodingCache:
    """A ``(query, pair slot) -> Qvec`` cache for the CRN set encoders.

    The CRN uses a different encoder per pair position (``MLP1`` / ``MLP2``),
    so the slot is part of the key: a pool query serving as containment
    source *and* target caches two encodings.  Entries are ``(H,)`` float64
    arrays — a few hundred bytes each — so even a million cached queries fit
    comfortably in memory.

    Encodings are a function of the model's weights, so a cache is tied to
    exactly one model: :class:`repro.core.crn.CRNEstimator` calls
    :meth:`bind` on attach, and binding the same cache to a second model
    raises instead of silently serving the first model's encodings.  Note
    that binding tracks object identity only — retraining the bound model
    *in place* invalidates the cached encodings, so call :meth:`clear`
    after updating weights.

    Args:
        max_entries: optional LRU bound on cached encodings (None = unbounded).
    """

    def __init__(self, max_entries: int | None = None) -> None:
        self.stats = CacheStats()
        self._store = _LRUStore(max_entries, self.stats)
        self._owner: object | None = None

    def bind(self, owner: object) -> None:
        """Tie this cache to the model producing its encodings."""
        if self._owner is None:
            self._owner = owner
        elif self._owner is not owner:
            raise ValueError(
                "EncodingCache is already bound to a different model; encodings "
                "are model-specific, use one cache per model"
            )

    def get(self, query: Query, position: int) -> np.ndarray | None:
        """The cached encoding for ``(query, position)``, or None on a miss."""
        return self._store.get((query, position))

    def put(self, query: Query, position: int, encoding: np.ndarray) -> None:
        """Record an encoding (evicting the least recently used if bounded)."""
        self._store.put((query, position), encoding)

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        """Drop all cached encodings (keeps the stats)."""
        self._store.clear()
