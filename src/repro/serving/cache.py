"""Cross-request caches for the estimation service's featurization hot path.

The Cnt2Crd technique scores one incoming query against *every* matching pool
query in both containment directions, so under sustained traffic the same
pool queries are featurized and encoded over and over.  Both stages are pure
functions of the query (see :meth:`repro.core.crn.CRNModel.encode_set`), which
makes them safely memoizable:

* :class:`FeaturizationCache` memoizes the query → set-of-feature-vectors
  step (:meth:`repro.core.featurization.QueryFeaturizer.featurize`);
* :class:`EncodingCache` memoizes the featurized query → ``Qvec`` step of the
  CRN set encoders, keyed by ``(snapshot scope, query, pair slot)``.

Queries are immutable and hash structurally (:mod:`repro.sql.query`), so the
query itself is the cache key; :meth:`QueryFeaturizer.cache_key` additionally
scopes keys to the database snapshot the featurizer is bound to, and the
encoding cache carries the same scope so a featurizer rebound after a
database update (:mod:`repro.extensions.updates`) can never serve stale
encodings.  Both caches keep LRU order and support a ``max_entries`` bound
for long-running services.

Thread safety: both caches are safe under concurrent access.  Counter updates
in :class:`CacheStats` are atomic (guarded by a per-stats lock) and every
:class:`_LRUStore` operation holds a fine-grained per-store lock, so many
serving threads — or the :class:`repro.serving.ServingDispatcher` thread plus
direct callers — can share one cache.  Value computation happens *outside*
the store lock: two threads missing on the same key may both compute the
value (featurization is pure, so the duplicate work is benign), and the
second ``put`` simply overwrites the first.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.featurization import QueryFeaturizer
from repro.sql.query import Query


@dataclass
class CacheStats:
    """Hit/miss accounting of one cache (counter updates are atomic)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record_hit(self) -> None:
        """Atomically count one cache hit."""
        with self._lock:
            self.hits += 1

    def record_miss(self) -> None:
        """Atomically count one cache miss."""
        with self._lock:
            self.misses += 1

    def record_eviction(self) -> None:
        """Atomically count one LRU eviction."""
        with self._lock:
            self.evictions += 1

    @property
    def lookups(self) -> int:
        """Total number of cache lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never used)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def reset(self) -> None:
        """Zero all counters."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def snapshot(self) -> dict[str, float]:
        """A plain-dict view for reports (:func:`repro.evaluation.format_service_stats`)."""
        with self._lock:
            hits, misses, evictions = self.hits, self.misses, self.evictions
        lookups = hits + misses
        return {
            "hits": float(hits),
            "misses": float(misses),
            "evictions": float(evictions),
            "hit_rate": hits / lookups if lookups else 0.0,
        }


class _LRUStore:
    """A tiny LRU map with shared stats accounting and a per-store lock."""

    def __init__(self, max_entries: int | None, stats: CacheStats) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive (or None for unbounded)")
        self._store: OrderedDict = OrderedDict()
        self._max_entries = max_entries
        self._stats = stats
        self._lock = threading.Lock()

    def get(self, key):
        with self._lock:
            if key in self._store:
                self._stats.record_hit()
                self._store.move_to_end(key)
                return self._store[key]
        self._stats.record_miss()
        return None

    def put(self, key, value) -> None:
        with self._lock:
            self._store[key] = value
            self._store.move_to_end(key)
            if self._max_entries is not None and len(self._store) > self._max_entries:
                self._store.popitem(last=False)
                self._stats.record_eviction()

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def clear(self) -> None:
        with self._lock:
            self._store.clear()


class FeaturizationCache:
    """A memoizing drop-in replacement for :class:`QueryFeaturizer`.

    Wraps a featurizer and caches :meth:`featurize` results per query, so a
    pool query scored by thousands of requests is featurized once, ever.  The
    read-side surface of the featurizer (``vector_size``, ``layout``,
    ``pad_sets``, ``featurize_batch``, ``normalize_value``, ``fingerprint``)
    is forwarded, so the cache can be passed anywhere a featurizer is
    expected — in particular to :class:`repro.core.crn.CRNEstimator`.

    Args:
        featurizer: the wrapped featurizer.
        max_entries: optional LRU bound on cached queries (None = unbounded).
    """

    def __init__(self, featurizer: QueryFeaturizer, max_entries: int | None = None) -> None:
        self.featurizer = featurizer
        self.stats = CacheStats()
        self._store = _LRUStore(max_entries, self.stats)

    # ------------------------------------------------------------------ #
    # cached featurization

    def featurize(self, query: Query) -> np.ndarray:
        """Memoized :meth:`QueryFeaturizer.featurize`."""
        key = self.featurizer.cache_key(query)
        cached = self._store.get(key)
        if cached is not None:
            return cached
        features = self.featurizer.featurize(query)
        self._store.put(key, features)
        return features

    def featurize_batch(self, queries: list[Query]) -> tuple[np.ndarray, np.ndarray]:
        """Featurize (through the cache) and pad a batch of queries."""
        return self.pad_sets([self.featurize(query) for query in queries])

    def warm(self, queries) -> None:
        """Featurize ``queries`` ahead of time (e.g. the whole queries pool)."""
        for query in queries:
            self.featurize(query)

    def __len__(self) -> int:
        return len(self._store)

    @property
    def max_entries(self) -> int | None:
        """The LRU bound this cache was built with (None = unbounded)."""
        return self._store._max_entries

    def clear(self) -> None:
        """Drop all cached featurizations (keeps the stats)."""
        self._store.clear()

    # ------------------------------------------------------------------ #
    # featurizer passthrough

    @property
    def vector_size(self) -> int:
        """The wrapped featurizer's vector dimension ``L``."""
        return self.featurizer.vector_size

    @property
    def layout(self):
        """The wrapped featurizer's segment layout."""
        return self.featurizer.layout

    @property
    def database(self):
        """The database snapshot the wrapped featurizer is bound to."""
        return self.featurizer.database

    @property
    def fingerprint(self) -> int:
        """The wrapped featurizer's snapshot fingerprint (scopes cache keys)."""
        return self.featurizer.fingerprint

    def pad_sets(self, sets: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
        """Forwarded to :meth:`QueryFeaturizer.pad_sets`."""
        return self.featurizer.pad_sets(sets)

    def normalize_value(self, qualified_column: str, value: float) -> float:
        """Forwarded to :meth:`QueryFeaturizer.normalize_value`."""
        return self.featurizer.normalize_value(qualified_column, value)

    def cache_key(self, query: Query):
        """Forwarded to :meth:`QueryFeaturizer.cache_key`."""
        return self.featurizer.cache_key(query)


class EncodingCache:
    """A ``(scope, query, pair slot) -> Qvec`` cache for the CRN set encoders.

    The CRN uses a different encoder per pair position (``MLP1`` / ``MLP2``),
    so the slot is part of the key: a pool query serving as containment
    source *and* target caches two encodings.  The ``scope`` component is the
    featurizer's database-snapshot fingerprint
    (:attr:`repro.core.featurization.QueryFeaturizer.fingerprint`): an
    encoding is a function of the *featurized* query, so when the database is
    mutated and the estimator's featurizer is rebound to the new snapshot
    (:mod:`repro.extensions.updates`), the old snapshot's encodings must not
    be served for the new one.  Keying by scope makes correctness automatic:
    stale entries simply stop matching.  They are *reclaimed* by the LRU
    bound (old-scope entries stop being touched, so they are the first
    evicted) — an unbounded cache keeps them until :meth:`clear`, so
    long-running services whose database updates should either set
    ``max_entries`` or clear after a snapshot change.  Entries are ``(H,)``
    float64 arrays — a few hundred bytes each — so even a million cached
    queries fit comfortably in memory.

    Encodings are a function of the model's weights, so a cache is tied to
    exactly one model: :class:`repro.core.crn.CRNEstimator` calls
    :meth:`bind` on attach, and binding the same cache to a second model
    raises instead of silently serving the first model's encodings.  To hot
    swap a *retrained* model into a running service without downtime, call
    :meth:`rebind` first: it drops every cached encoding and ties the cache
    to the new model in one atomic step.  Note that binding tracks object
    identity only — retraining the bound model *in place* invalidates the
    cached encodings, so call :meth:`clear` after updating weights.

    Args:
        max_entries: optional LRU bound on cached encodings (None = unbounded).
    """

    def __init__(self, max_entries: int | None = None) -> None:
        self.stats = CacheStats()
        self._store = _LRUStore(max_entries, self.stats)
        self._owner: object | None = None
        self._bind_lock = threading.Lock()

    def bind(self, owner: object) -> None:
        """Tie this cache to the model producing its encodings."""
        with self._bind_lock:
            if self._owner is None:
                self._owner = owner
            elif self._owner is not owner:
                raise ValueError(
                    "EncodingCache is already bound to a different model; encodings "
                    "are model-specific, use one cache per model (or rebind() to "
                    "hot-swap a retrained model)"
                )

    def rebind(self, owner: object) -> None:
        """Atomically clear the cache and tie it to a new (retrained) model.

        This is the hot-swap path: build the replacement estimator against
        the same cache by calling ``cache.rebind(new_model)`` first, then
        register it with :meth:`repro.serving.EstimationService.replace`.
        Writers that identify themselves (the ``owner=`` argument of
        :meth:`put`) are fenced by the rebind: an in-flight request still
        running on the *old* model cannot re-poison the cleared cache, so the
        swap can happen mid-traffic without ever serving the new model an old
        model's encoding.
        """
        with self._bind_lock:
            self._store.clear()
            self._owner = owner

    def get(self, query: Query, position: int, scope=None, owner=None) -> np.ndarray | None:
        """The cached encoding for ``(scope, query, position)``, or None on a miss.

        ``owner`` (the calling estimator's model) turns the lookup into a
        guaranteed miss when it no longer matches the bound model — a reader
        racing a :meth:`rebind` simply recomputes instead of observing the
        swap partially.  The check and the store read happen under the bind
        lock as one unit: checked-then-read without it, a reader could pass
        the fence, lose the CPU to a rebind-plus-warm, and then *hit* on the
        new model's encoding under the same key (two models over the same
        snapshot share the scope fingerprint) — handing the old model's pair
        head the new model's encoding.
        """
        if owner is None:
            return self._store.get((scope, query, position))
        with self._bind_lock:
            if owner is not self._owner:
                self.stats.record_miss()
                return None
            return self._store.get((scope, query, position))

    def put(self, query: Query, position: int, encoding: np.ndarray, scope=None, owner=None) -> None:
        """Record an encoding (evicting the least recently used if bounded).

        ``owner`` makes the write conditional on still being the bound model,
        atomically with respect to :meth:`rebind`.  Without it, a request
        in flight on the old model during a same-featurizer hot swap could
        insert an old-weights encoding *after* the rebind cleared the store —
        under a key the new model would then read (the snapshot scope alone
        cannot distinguish two models trained on the same database).  Callers
        that identify themselves can never serve the swapped-in model a torn
        mix of old and new encodings.
        """
        if owner is None:
            self._store.put((scope, query, position), encoding)
            return
        with self._bind_lock:
            if owner is not self._owner:
                return  # stale writer: the model was swapped away mid-request
            self._store.put((scope, query, position), encoding)

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        """Drop all cached encodings (keeps the stats)."""
        self._store.clear()
