"""A request-coalescing dispatcher: many threads in, few shared batches out.

:class:`repro.serving.EstimationService.submit_batch` already turns one
*caller's* batch into a few large deduplicated forward passes — but under
concurrent traffic every caller arrives with a batch of one, and per-request
inference throws that advantage away.  :class:`ServingDispatcher` closes the
gap with micro-batching: callers :meth:`~ServingDispatcher.submit` from any
number of threads and immediately get a future; a single dispatcher thread
drains the shared request queue under a ``max_batch`` / ``max_wait_ms``
policy, funnels the coalesced queries through the service's
:class:`repro.serving.BatchPlanner` path, and resolves each caller's future
with its :class:`repro.serving.EstimateResult`.  Per-request
:class:`repro.serving.RequestOptions` ride along (estimator, fallback
policy, deadline, tags); a caller whose deadline expires abandons its
request — cancelled before execution when possible and counted under the
``timed_out`` stat.

Coalescing does not change a single bit of any estimate: the CRN inference
path encodes each query in isolation and runs the pair head in fixed-shape
slabs (:meth:`repro.core.crn.CRNModel.rates_from_encodings`), so an estimate
is identical whether a query was served alone, inside one caller's batch, or
coalesced with strangers' requests from other threads.  PR 1 proved that
invariance across batch compositions; the dispatcher extends it across
*threads* (asserted by ``tests/test_serving_dispatcher.py`` and
``benchmarks/bench_concurrent_serving.py``).

Failure isolation: when a coalesced batch fails as a whole (for example one
request has no matching pool query and the service has no fallback), the
dispatcher retries the batch's requests one by one, so exactly the poison
request's future receives the exception and every other caller still gets
its estimate.

Lifecycle: :meth:`start` spawns the dispatcher thread, :meth:`shutdown`
stops accepting new requests and (by default) drains everything already
queued before returning, and the context-manager form brackets both.
Requests may be enqueued before :meth:`start`; they are served as soon as
the thread runs.

Liveness: an accepted future always resolves.  On a clean shutdown every
queued request is served before the thread exits; if the thread ever dies of
a dispatcher bug instead, it closes the dispatcher (further submissions
raise), fails the in-progress batch and everything still queued with the
error, and records it on :attr:`ServingDispatcher.last_error` — a caller
blocked on ``future.result()`` sees the exception, never a hang.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, replace
from typing import Sequence

from repro.observability.histogram import LatencyHistogram
from repro.serving.errors import DeadlineExceededError, DispatcherShutdownError
from repro.serving.service import EstimateResult, EstimationService, RequestOptions
from repro.sql.query import Query

__all__ = [
    "DispatcherShutdownError",
    "DispatcherStats",
    "ServingDispatcher",
]

#: Queue marker that wakes the dispatcher thread for shutdown.
_SENTINEL = object()


@dataclass
class _PendingRequest:
    """One caller's request travelling through the dispatch queue."""

    query: Query
    estimator: str | None
    future: Future
    options: RequestOptions | None = None
    #: ``time.perf_counter()`` at enqueue; queue wait = pickup - enqueued_at.
    enqueued_at: float = 0.0
    #: Measured at batch pickup, stamped onto the result's provenance.
    queue_wait_seconds: float = 0.0
    #: The request's open :class:`repro.observability.RequestTrace` (None
    #: when tracing is off).
    trace: object | None = None


class DispatcherStats:
    """Thread-safe counters describing the dispatcher's coalescing behaviour.

    Attributes (all monotonic unless :meth:`reset`):
        submitted: requests accepted by :meth:`ServingDispatcher.submit`.
        completed: futures resolved with an :class:`EstimateResult`.
        failed: futures resolved with an exception.
        timed_out: requests abandoned by their caller — the deadline of
            :meth:`ServingDispatcher.estimate` expired and the future was
            cancelled.  A request cancelled before batch pickup is skipped
            (never executed, not counted as completed); one already running
            finishes but its caller is gone either way.
        batches: coalesced batches drained from the queue.
        coalesced_requests: requests that shared a batch with at least one
            other request (the work the dispatcher amortized).
        max_queue_depth: deepest the request queue ever got.
        queue_wait: a fixed-memory
            :class:`repro.observability.LatencyHistogram` of enqueue→pickup
            times — the dispatcher's share of end-to-end latency, previously
            folded invisibly into wall time.  Rendered as the
            ``queue_wait_p*_ms`` gauges in :meth:`snapshot`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.timed_out = 0
        self.batches = 0
        self.coalesced_requests = 0
        self.max_queue_depth = 0
        self._occupancy_total = 0
        self.queue_wait = LatencyHistogram()

    def record_submit(self, queue_depth: int) -> None:
        """Count one accepted request and track the observed queue depth."""
        with self._lock:
            self.submitted += 1
            if queue_depth > self.max_queue_depth:
                self.max_queue_depth = queue_depth

    def record_batch(self, size: int) -> None:
        """Count one drained batch of ``size`` coalesced requests."""
        with self._lock:
            self.batches += 1
            self._occupancy_total += size
            if size > 1:
                self.coalesced_requests += size

    def record_completed(self, count: int = 1) -> None:
        """Count ``count`` futures resolved with an estimate."""
        with self._lock:
            self.completed += count

    def record_failed(self, count: int = 1) -> None:
        """Count ``count`` futures resolved with an exception."""
        with self._lock:
            self.failed += count

    def record_timed_out(self, count: int = 1) -> None:
        """Count ``count`` requests whose caller abandoned them on a deadline."""
        with self._lock:
            self.timed_out += count

    def record_queue_wait(self, seconds: float) -> None:
        """Record one request's enqueue→pickup wait (histogram has its own lock)."""
        self.queue_wait.record(seconds)

    @property
    def mean_batch_size(self) -> float:
        """Average number of requests per coalesced batch."""
        if not self.batches:
            return 0.0
        return self._occupancy_total / self.batches

    def reset(self) -> None:
        """Zero all counters."""
        with self._lock:
            self.submitted = 0
            self.completed = 0
            self.failed = 0
            self.timed_out = 0
            self.batches = 0
            self.coalesced_requests = 0
            self.max_queue_depth = 0
            self._occupancy_total = 0
        self.queue_wait.reset()

    def snapshot(self) -> dict[str, float]:
        """A plain-dict view, renderable by
        :func:`repro.evaluation.format_service_stats` (merge it with the
        service's own :meth:`~EstimationService.stats_snapshot`)."""
        with self._lock:
            batches = self.batches
            snapshot = {
                "submitted": float(self.submitted),
                "completed": float(self.completed),
                "failed": float(self.failed),
                "timed_out": float(self.timed_out),
                "coalesced_batches": float(batches),
                "coalesced_requests": float(self.coalesced_requests),
                "mean_batch_size": (
                    self._occupancy_total / batches if batches else 0.0
                ),
                "max_queue_depth": float(self.max_queue_depth),
            }
        waits = self.queue_wait.snapshot()
        if waits.count:
            snapshot["queue_wait_p50_ms"] = waits.quantile(0.5) * 1000.0
            snapshot["queue_wait_p99_ms"] = waits.quantile(0.99) * 1000.0
            snapshot["queue_wait_max_ms"] = waits.max_seen * 1000.0
        return snapshot


class ServingDispatcher:
    """A thread-safe micro-batching front-end for an :class:`EstimationService`.

    Args:
        service: the (thread-safe) estimation service executing the batches.
        max_batch: most requests coalesced into one service submission.
        max_wait_ms: how long the dispatcher waits for stragglers after the
            first request of a batch arrives.  ``0`` coalesces only requests
            that are already queued — minimum latency, less coalescing.

    Usage::

        with ServingDispatcher(service, max_batch=64, max_wait_ms=2.0) as d:
            futures = [d.submit(query) for query in burst]   # any thread(s)
            estimates = [f.result() for f in futures]
    """

    def __init__(
        self,
        service: EstimationService,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
    ) -> None:
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        self.service = service
        self.max_batch = max_batch
        self.max_wait_seconds = max_wait_ms / 1000.0
        self.stats = DispatcherStats()
        #: The exception that killed the dispatcher thread, if one ever did
        #: (a dispatcher bug outside the per-batch isolation).  The thread
        #: fails every pending future and refuses new submissions before
        #: exiting, so callers observe the error instead of hanging.
        self.last_error: BaseException | None = None
        self._queue: queue.Queue = queue.Queue()
        self._state_lock = threading.Lock()
        self._closed = False
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    # lifecycle

    def start(self) -> "ServingDispatcher":
        """Spawn the dispatcher thread (idempotent while running)."""
        with self._state_lock:
            if self._closed:
                raise DispatcherShutdownError("dispatcher has been shut down")
            self._spawn_locked()
        return self

    def _spawn_locked(self) -> None:
        """Spawn the dispatcher thread; caller holds ``_state_lock``."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="serving-dispatcher", daemon=True
            )
            self._thread.start()

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting requests; drain what is already queued.

        Every request accepted before this call is still served (the
        dispatcher thread works through the queue before exiting — it is
        spawned here if :meth:`start` was never called, so requests enqueued
        before start are not abandoned either), and a clean shutdown never
        leaves a future unresolved.  With ``wait=True`` (the default) the
        call returns only after the drain completes; with ``wait=False`` it
        returns immediately while the thread finishes in the background.
        Idempotent.
        """
        with self._state_lock:
            if not self._closed:
                self._closed = True
                self._queue.put(_SENTINEL)
                # A never-started dispatcher may still hold queued requests;
                # spawn the thread so their futures resolve before the join.
                self._spawn_locked()
            thread = self._thread
        if wait and thread is not None:
            thread.join()

    def __enter__(self) -> "ServingDispatcher":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    # submission

    def submit(
        self,
        query: Query,
        estimator: str | None = None,
        options: RequestOptions | None = None,
    ) -> Future:
        """Enqueue one request; returns a future of an :class:`EstimateResult`.

        Safe to call from any number of threads.  The future resolves with
        the estimate, or with the exception the request would have raised on
        the sequential path (e.g.
        :class:`repro.core.cnt2crd.NoMatchingPoolQueryError` when the service
        has no fallback).  ``options`` rides with the request: its estimator
        name and fallback policy decide which coalesced group serves it, and
        its tags are stamped onto the result.
        """
        future: Future = Future()
        tracer = self.service.tracer
        trace = tracer.start_request() if tracer is not None else None
        request = _PendingRequest(
            query,
            estimator,
            future,
            options,
            enqueued_at=time.perf_counter(),
            trace=trace,
        )
        with self._state_lock:
            if self._closed:
                if trace is not None:
                    trace.abandon()
                raise DispatcherShutdownError(
                    "dispatcher has been shut down; no new requests accepted"
                )
            self._queue.put(request)
        self.stats.record_submit(self._queue.qsize())
        return future

    def estimate(
        self,
        query: Query,
        estimator: str | None = None,
        timeout: float | None = None,
        options: RequestOptions | None = None,
    ) -> EstimateResult:
        """Blocking convenience wrapper: ``submit(...).result(timeout)``.

        ``timeout`` defaults to ``options.timeout_seconds``.  When the
        deadline expires the request is **abandoned**: the future is
        cancelled — a request not yet picked up is skipped instead of
        occupying a batch slot and being counted as served — the ``timed_out``
        stat is bumped, and :class:`repro.serving.DeadlineExceededError`
        (a ``TimeoutError``) is raised.
        """
        if timeout is None and options is not None:
            timeout = options.timeout_seconds
        future = self.submit(query, estimator=estimator, options=options)
        try:
            return future.result(timeout)
        except TimeoutError as error:
            # Distinguish "the wait expired" from "the request itself failed
            # with a TimeoutError" (e.g. an estimator hitting a statement
            # timeout): result() re-raises the stored exception *object*, so
            # identity tells them apart.  The request's own error must
            # propagate untranslated and uncounted.
            if future.done() and not future.cancelled() and future.exception() is error:
                raise
            future.cancel()
            self.stats.record_timed_out()
            raise DeadlineExceededError(
                f"request was not served within {timeout}s; it has been "
                f"abandoned (cancelled before execution when possible)"
            ) from None

    def queue_depth(self) -> int:
        """Requests currently waiting to be coalesced (approximate)."""
        return self._queue.qsize()

    # ------------------------------------------------------------------ #
    # dispatcher thread

    def _run(self) -> None:
        # The liveness contract: this thread never exits while a submitted
        # future could still be unresolved.  The body keeps `batch` in scope
        # so even an exception raised *between* serve calls — mid-coalesce,
        # in stats recording — cannot strand the requests already pulled off
        # the queue, and the finally block closes the dispatcher and fails
        # whatever is still queued before the thread is allowed to die.
        error: BaseException | None = None
        batch: list[_PendingRequest] = []
        try:
            while True:
                item = self._queue.get()
                if item is _SENTINEL:
                    return
                batch = [item]
                saw_sentinel = self._coalesce(batch)
                try:
                    self._serve(batch)
                except BaseException as serve_error:  # pragma: no cover - defensive
                    # _serve isolates per-request errors; anything reaching
                    # here is a dispatcher bug.  Fail the batch's futures
                    # rather than leaving callers blocked forever, and keep
                    # the thread alive.
                    for request in batch:
                        if not request.future.done():
                            request.future.set_exception(serve_error)
                    self.stats.record_failed(len(batch))
                batch = []
                if saw_sentinel:
                    return
        except BaseException as run_error:
            # A bug outside the per-batch isolation (e.g. in _coalesce).
            # Without the cleanup below the thread would die silently: the
            # partial batch's futures would hang forever, and — worse — the
            # dispatcher would keep *accepting* requests into a queue nobody
            # drains.  Record the error and fall through to the drain.
            error = run_error
            self.last_error = run_error
        finally:
            self._fail_pending(batch, error)

    def _fail_pending(
        self, batch: list[_PendingRequest], error: BaseException | None
    ) -> None:
        """Close the dispatcher and resolve every still-pending future.

        Runs on every thread exit.  After a clean drain (sentinel) the
        dispatcher is already closed and the queue empty, so this is a
        no-op; after a crash it (1) closes the dispatcher *first* — once any
        future resolves with the error, callers must deterministically see
        new submissions refused rather than swallowed by a dead queue — then
        (2) fails the partially-coalesced batch and everything still queued.
        """
        with self._state_lock:
            self._closed = True
        failed = 0
        pending = list(batch)
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SENTINEL:
                pending.append(item)
        for request in pending:
            if not request.future.done():
                request.future.set_exception(
                    error
                    if error is not None
                    else DispatcherShutdownError(
                        "dispatcher thread exited before serving this request"
                    )
                )
                failed += 1
        if failed:
            self.stats.record_failed(failed)

    def _coalesce(self, batch: list[_PendingRequest]) -> bool:
        """Gather up to ``max_batch`` requests within the ``max_wait`` window.

        Appends onto the caller's ``batch`` (seeded with the first request)
        so the requests stay reachable for cleanup even if this method
        raises; returns whether the shutdown sentinel was consumed.
        """
        deadline = time.monotonic() + self.max_wait_seconds
        while len(batch) < self.max_batch:
            remaining = deadline - time.monotonic()
            try:
                if remaining > 0:
                    item = self._queue.get(timeout=remaining)
                else:
                    # The window closed: still sweep up whatever is already
                    # queued, but do not wait for more.
                    item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SENTINEL:
                return True
            batch.append(item)
        return False

    @staticmethod
    def _group_key(request: _PendingRequest) -> tuple[str | None, str]:
        """The coalescing group a request belongs to.

        Requests picking different registry entries cannot share a forward
        pass, and requests with different fallback policies cannot share a
        service submission (the policy applies batch-wide); tags never split
        a group — they are stamped per request after serving.
        """
        options = request.options
        name = request.estimator
        policy = "registry"
        if options is not None:
            if options.estimator is not None:
                name = options.estimator
            policy = options.fallback_policy
        return name, policy

    @staticmethod
    def _finalize(request: _PendingRequest, item: EstimateResult) -> EstimateResult:
        """Re-stamp a caller's own tags and measured queue wait onto its result.

        The batch-level submission carried the group's (tag-less) options,
        so per-caller provenance — tags, and the enqueue→pickup wait measured
        at batch pickup — is applied here, on the way back out.
        """
        tags = (
            request.options.tags
            if request.options is not None and request.options.tags
            else None
        )
        if tags is None and not request.queue_wait_seconds:
            return item
        return replace(
            item,
            queue_wait_seconds=request.queue_wait_seconds,
            **({"tags": tags} if tags is not None else {}),
        )

    def _resolve(self, request: _PendingRequest, item: EstimateResult) -> None:
        """Resolve one caller's future and finish its trace (if any)."""
        item = self._finalize(request, item)
        request.future.set_result(item)
        if request.trace is not None:
            request.trace.finish(
                latency_seconds=item.latency_seconds,
                estimator=item.estimator_name,
                resolution=item.resolution,
                queue_wait_seconds=item.queue_wait_seconds,
            )

    def _serve(self, batch: list[_PendingRequest]) -> None:
        self.stats.record_batch(len(batch))
        groups: dict[tuple[str | None, str], list[_PendingRequest]] = {}
        cancelled = 0
        for request in batch:
            if request.future.cancelled():
                # The caller abandoned the request (a deadline expired, or an
                # explicit cancel) before pickup: skip the work entirely —
                # it must not occupy a batch slot or be counted as served.
                cancelled += 1
                if request.trace is not None:
                    request.trace.abandon()
                continue
            groups.setdefault(self._group_key(request), []).append(request)
        recorder = self.service.recorder
        if recorder is not None:
            from repro.observability.events import DispatcherBatch

            recorder.emit(
                DispatcherBatch(
                    size=len(batch),
                    groups=len(groups),
                    cancelled=cancelled,
                    queue_depth=self._queue.qsize(),
                )
            )
        tracer = self.service.tracer
        batch_span = (
            tracer.begin("dispatcher_batch", members=len(batch))
            if tracer is not None
            else None
        )
        try:
            for (estimator, policy), requests in groups.items():
                group_options = RequestOptions(
                    estimator=estimator, fallback_policy=policy
                )
                # Promote to RUNNING only now, immediately before this group
                # executes: a deadline expiring while an *earlier* group of
                # the same batch is still running can then still cancel the
                # request instead of merely being noted after the fact.
                runnable = []
                pickup = time.perf_counter()
                for request in requests:
                    if not request.future.set_running_or_notify_cancel():
                        if request.trace is not None:
                            request.trace.abandon()
                        continue
                    wait = max(pickup - request.enqueued_at, 0.0)
                    request.queue_wait_seconds = wait
                    self.stats.record_queue_wait(wait)
                    if request.trace is not None:
                        # queue_wait is request-owned time (nobody shares
                        # it), so it is a span under the request's root —
                        # unlike the batch spans, which are linked.
                        request.trace.add_span("queue_wait", wait)
                        request.trace.link(batch_span, 0.0, link_kind="context")
                    runnable.append(request)
                if not runnable:
                    continue
                traces = (
                    [request.trace for request in runnable]
                    if tracer is not None
                    else None
                )
                try:
                    served = self.service.submit_batch(
                        [request.query for request in runnable],
                        options=group_options,
                        traces=traces,
                    )
                except Exception:
                    self._serve_individually(runnable, group_options)
                else:
                    for request, item in zip(runnable, served):
                        self._resolve(request, item)
                    self.stats.record_completed(len(runnable))
        finally:
            if batch_span is not None:
                tracer.end(
                    batch_span,
                    size=len(batch),
                    groups=len(groups),
                    cancelled=cancelled,
                )

    def _serve_individually(
        self, requests: Sequence[_PendingRequest], options: RequestOptions
    ) -> None:
        """Fallback when a coalesced batch fails as a whole.

        Retrying one by one confines the failure to the poison request(s):
        every other caller still receives its estimate, and each failing
        future carries the exception its request would have raised on the
        sequential path.
        """
        for request in requests:
            traces = [request.trace] if request.trace is not None else None
            try:
                served = self.service.submit_batch(
                    [request.query], options=options, traces=traces
                )[0]
            except Exception as error:
                request.future.set_exception(error)
                self.stats.record_failed()
                if request.trace is not None:
                    request.trace.fail(error)
            else:
                self._resolve(request, served)
                self.stats.record_completed()
