"""The online cardinality-estimation service façade.

:class:`EstimationService` is the piece that turns the paper's estimators into
serving infrastructure: it owns a registry of named cardinality estimators
(Cnt2Crd over CRN, improved baselines, plain baselines, ...), batches the
Cnt2Crd scoring work of concurrent requests through the
:class:`repro.serving.BatchPlanner`, shares the featurization / encoding
caches across requests, and records per-request latency plus service-level
hit-rate statistics (rendered by
:func:`repro.evaluation.reporting.format_service_stats` and timed by
:func:`repro.evaluation.timing.time_service`).

The batched path is exact, not approximate: planning only deduplicates which
ordered pairs are scored (and routes index-servable requests through the
:class:`repro.serving.PoolEncodingIndex`'s whole-pool slabs), and the rates
flow back through the estimator's own
:meth:`repro.core.cnt2crd.Cnt2CrdEstimator.estimate_values_from_rates` and
:meth:`repro.core.cnt2crd.Cnt2CrdEstimator.collapse_values` — the vectorized
bit-equal twins of ``estimates_from_rates`` / ``collapse`` — so a served
estimate is bit-for-bit identical to calling ``estimate_cardinality`` per
request.
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass, replace
from typing import Iterable, Mapping, Sequence

from repro.core.cnt2crd import Cnt2CrdEstimator, NoMatchingPoolQueryError
from repro.core.crn import CRNEstimator, CRNModel
from repro.core.estimators import CardinalityEstimator
from repro.core.featurization import QueryFeaturizer
from repro.core.final_functions import FinalFunction
from repro.core.queries_pool import QueriesPool
from repro.observability.events import BatchServed, RequestServed, StatsDrained
from repro.observability.histogram import LatencyHistogram
from repro.serving.cache import EncodingCache, FeaturizationCache
from repro.serving.errors import UnknownEstimatorError
from repro.serving.planner import (
    RESOLUTION_PAIR_BATCH,
    BatchPlanner,
    RequestPlan,
)
from repro.serving.pool_index import PoolEncodingIndex
from repro.sql.query import Query

#: Resolution stamp: the request's primary had no answer and the estimator's
#: own built-in fallback produced the estimate.
RESOLUTION_ESTIMATOR_FALLBACK = "estimator_fallback"
#: Resolution stamp: the registry-level fallback entry produced the estimate.
RESOLUTION_REGISTRY_FALLBACK = "registry_fallback"
#: Resolution stamp: a non-Cnt2Crd estimator answered through its own
#: per-query interface (no batch planning involved).
RESOLUTION_DIRECT = "direct"

#: The per-request fallback policies accepted by :class:`RequestOptions`.
FALLBACK_POLICIES = ("registry", "estimator", "none")


@dataclass(frozen=True)
class ServedEstimate:
    """One answered estimation request.

    Attributes:
        query: the estimated query.
        estimate: the estimated cardinality.
        estimator_name: the registry name that produced the estimate (the
            fallback's name when the primary had no matching pool query).
        latency_seconds: wall-clock time attributed to this request.  Exact
            for :meth:`EstimationService.submit`; for batched submissions it
            is the batch's elapsed time divided by the batch size.
        pool_matches: eligible pool entries the query was scored against.
        pairs_scored: containment pairs the request contributed to the plan.
        used_fallback: True when the registry fallback answered the request.
    """

    query: Query
    estimate: float
    estimator_name: str
    latency_seconds: float
    pool_matches: int
    pairs_scored: int
    used_fallback: bool

    @property
    def latency_milliseconds(self) -> float:
        """Attributed latency in milliseconds."""
        return self.latency_seconds * 1000.0


@dataclass(frozen=True)
class RequestOptions:
    """Per-request knobs, threaded from the client through dispatcher and service.

    Attributes:
        estimator: the registry entry to serve from (the service default when
            None).  Takes precedence over the positional ``estimator``
            argument of the legacy ``submit`` / ``submit_batch`` surface.
        timeout_seconds: the caller's deadline.  Honored on the
            dispatcher-backed paths (:meth:`repro.serving.ServingClient.estimate`,
            :meth:`repro.serving.ServingDispatcher.estimate`): when it expires
            the caller gets :class:`repro.serving.DeadlineExceededError`, the
            abandoned request is cancelled at batch pickup when possible, and
            the dispatcher counts it under ``timed_out``.
        fallback_policy: what may answer when the chosen estimator cannot —
            ``"registry"`` (the default, today's behaviour: the estimator's
            built-in fallback first, then the registry fallback entry),
            ``"estimator"`` (built-in only), or ``"none"`` (neither; the
            request raises
            :class:`repro.core.cnt2crd.NoMatchingPoolQueryError`).  On the
            synchronous batch surface (``submit_batch`` / ``estimate_many``)
            that raise fails the whole batch — the long-standing semantics of
            a no-fallback batch — while the dispatcher isolates it to the
            poison request's future.
        tags: caller-supplied key/value labels, stamped verbatim onto the
            request's :class:`EstimateResult` (accepted as a mapping or an
            iterable of pairs; normalized to a sorted tuple of pairs).
    """

    estimator: str | None = None
    timeout_seconds: float | None = None
    fallback_policy: str = "registry"
    tags: Mapping[str, str] | tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.fallback_policy not in FALLBACK_POLICIES:
            raise ValueError(
                f"fallback_policy must be one of {FALLBACK_POLICIES}, "
                f"got {self.fallback_policy!r}"
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError(
                f"timeout_seconds must be positive, got {self.timeout_seconds!r}"
            )
        items = (
            self.tags.items() if isinstance(self.tags, Mapping) else self.tags
        )
        normalized = tuple(sorted((str(key), str(value)) for key, value in items))
        object.__setattr__(self, "tags", normalized)


#: The options applied when a caller passes none.
_DEFAULT_OPTIONS = RequestOptions()


@dataclass(frozen=True)
class EstimateResult(ServedEstimate):
    """A :class:`ServedEstimate` enriched with provenance.

    Every serving path (``submit`` / ``submit_batch``, the dispatcher, the
    client) now returns these, so a response says *how* it was produced —
    which resolution path ran, which model generation answered (bumped by
    every :meth:`EstimationService.replace` hot swap, so a post-swap response
    is attributable to the exact model that produced it), and how much of the
    work came out of the shared caches.

    Attributes:
        resolution: ``"indexed_slab"`` (whole-pool slab scoring through the
            :class:`repro.serving.PoolEncodingIndex`), ``"pair_batch"`` (the
            deduplicated pair list), ``"estimator_fallback"`` (the
            estimator's built-in fallback), ``"registry_fallback"`` (the
            registry fallback entry), or ``"direct"`` (a non-Cnt2Crd
            estimator's own per-query interface).
        model_generation: the registry generation of the estimator that
            answered (1 on first registration, +1 per ``replace()``; 0 when
            the name was never registered through the generation-tracking
            surface).
        featurization_cache_hits: featurization-cache hits recorded during
            the batch that served this request (batch-attributed, like
            ``latency_seconds``; 0 without a cache).
        encoding_cache_hits: encoding-cache hits recorded during the batch
            that served this request (batch-attributed; 0 without a cache).
        tags: the caller's :attr:`RequestOptions.tags`, echoed back.
        queue_wait_seconds: time the request spent in the dispatcher queue
            between enqueue and batch pickup — previously folded invisibly
            into end-to-end wall time, now stamped separately (0.0 on the
            synchronous paths, which have no queue).  **Not** part of
            ``latency_seconds``, which remains pure service time.
    """

    resolution: str = RESOLUTION_PAIR_BATCH
    model_generation: int = 0
    featurization_cache_hits: int = 0
    encoding_cache_hits: int = 0
    tags: tuple[tuple[str, str], ...] = ()
    queue_wait_seconds: float = 0.0


@dataclass
class ServiceStats:
    """Cumulative service-level counters.

    The owning :class:`EstimationService` guards every mutation with its
    stats lock, so the counters stay consistent under concurrent
    submissions; plain reads of individual fields are safe from any thread.
    To reset, go through :meth:`EstimationService.reset_stats` (or
    :meth:`EstimationService.drain_stats` for an atomic snapshot-and-reset) —
    calling :meth:`reset` directly from another thread bypasses that lock.
    """

    requests: int = 0
    batches: int = 0
    planned_pairs: int = 0
    scored_pairs: int = 0
    fallbacks: int = 0
    total_seconds: float = 0.0

    @property
    def deduplicated_pairs(self) -> int:
        """Pair computations avoided by cross-request planning."""
        return self.planned_pairs - self.scored_pairs

    @property
    def mean_latency_seconds(self) -> float:
        """Average attributed per-request latency."""
        if not self.requests:
            return 0.0
        return self.total_seconds / self.requests

    @property
    def throughput_qps(self) -> float:
        """Requests served per second of service time."""
        if self.total_seconds <= 0.0:
            return 0.0
        return self.requests / self.total_seconds

    def reset(self) -> None:
        """Zero all counters."""
        self.requests = 0
        self.batches = 0
        self.planned_pairs = 0
        self.scored_pairs = 0
        self.fallbacks = 0
        self.total_seconds = 0.0


class EstimationService:
    """An online, batching, caching front-end over the paper's estimators.

    The service is thread-safe: the registry is guarded by a lock (so
    :meth:`register` / :meth:`replace` can hot-swap estimators while other
    threads submit), stats updates are atomic, and the caches and the
    queries pool take their own fine-grained locks.  Model forward passes
    themselves only *read* shared state, so concurrent ``submit_batch``
    calls do not serialize on the scoring work — but each call still pays
    its own planning and featurization.  For high-concurrency traffic,
    front the service with a :class:`repro.serving.ServingDispatcher`, which
    coalesces many callers' requests into few shared batches.

    Args:
        fallback: optional registry name answering requests for which the
            primary estimator raises :class:`NoMatchingPoolQueryError` (see
            the recovery strategies in :mod:`repro.core.cnt2crd`).
        featurization_cache: the cache shared by the registered estimators'
            featurizers, reported in :meth:`stats_snapshot` (optional).
        encoding_cache: the CRN encoding cache shared across requests,
            reported in :meth:`stats_snapshot` (optional).
        pool_index: the shared :class:`repro.serving.PoolEncodingIndex`
            backing the registered Cnt2Crd estimators, reported in
            :meth:`stats_snapshot` and rebuilt by the adaptation lifecycle
            on a model hot swap (optional).
        recorder: an :class:`repro.observability.EventRecorder` receiving
            the typed serving events (one ``request_served`` per answered
            request, one ``batch_served`` with the cache hit/miss deltas per
            batch, one ``stats_drained`` per :meth:`drain_stats`).  Emission
            is a bounded-buffer append — no I/O, no locks on the hot path —
            and ``None`` (the default) reduces the whole instrumentation to
            one attribute test per batch.
        tracer: an optional :class:`repro.observability.Tracer`.  When set,
            every batch records a ``service_batch`` span with nested stage
            spans (``plan`` / ``pair_rates`` / ``slab_kernel`` /
            ``collapse``), and every request's trace links to the shared
            spans with its explicit amortized share — the fan-in attribution
            that makes a coalesced request's latency decomposable.  ``None``
            (the default) follows the recorder discipline: one attribute
            test per instrumentation point.
    """

    def __init__(
        self,
        fallback: str | None = None,
        featurization_cache: FeaturizationCache | None = None,
        encoding_cache: EncodingCache | None = None,
        pool_index: PoolEncodingIndex | None = None,
        recorder=None,
        tracer=None,
    ) -> None:
        self._registry: dict[str, CardinalityEstimator] = {}
        self._generations: dict[str, int] = {}
        self._default: str | None = None
        self.fallback = fallback
        self.featurization_cache = featurization_cache
        self.encoding_cache = encoding_cache
        self.pool_index = pool_index
        self.recorder = recorder
        self.tracer = tracer
        self.stats = ServiceStats()
        #: Fixed-memory distribution of attributed per-request latencies —
        #: the ``latency_p*_ms`` gauges in :meth:`stats_snapshot` come from
        #: here instead of an unbounded scan over recorded events.
        self.latency_histogram = LatencyHistogram()
        self._registry_lock = threading.RLock()
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # registry

    def register(
        self, name: str, estimator: CardinalityEstimator, default: bool = False
    ) -> None:
        """Register ``estimator`` under a **new** ``name``.

        The first registration becomes the default (or pass ``default=True``).
        The entry starts at model generation 1; every subsequent
        :meth:`replace` of the name bumps it, and the serving paths stamp the
        answering entry's generation into :attr:`EstimateResult.model_generation`.

        Raises:
            ValueError: when ``name`` is empty, or already registered —
                silently overwriting a live entry would reset nothing and
                confuse generation attribution; hot swaps go through
                :meth:`replace`.
        """
        if not name:
            raise ValueError("estimator name must be non-empty")
        with self._registry_lock:
            if name in self._registry:
                raise ValueError(
                    f"estimator {name!r} is already registered; use replace() "
                    f"to hot-swap a live entry"
                )
            self._registry[name] = estimator
            self._generations[name] = 1
            if default or self._default is None:
                self._default = name

    def replace(self, name: str, estimator: CardinalityEstimator) -> CardinalityEstimator:
        """Atomically hot-swap the estimator registered under ``name``.

        This is the zero-downtime update path: in-flight batches finish on
        the estimator object they already resolved, and every submission
        that resolves after this call is served by the replacement.  To swap
        a retrained CRN that shares the service's encoding cache, call
        :meth:`repro.serving.EncodingCache.rebind` with the new model before
        building the replacement estimator.

        Every replace bumps the entry's model generation
        (:meth:`generation`), which the serving paths stamp into
        :attr:`EstimateResult.model_generation` — so a response served after
        the swap is attributable to the exact model that produced it.

        Returns:
            The estimator previously registered under ``name``.

        Raises:
            UnknownEstimatorError: when ``name`` was never registered (use
                :meth:`register` for new entries — replacing an unknown name
                is almost always a typo).  Also a ``KeyError``.
        """
        with self._registry_lock:
            if name not in self._registry:
                raise UnknownEstimatorError(
                    f"cannot replace unregistered estimator {name!r}; "
                    f"registered: {sorted(self._registry)}"
                )
            previous = self._registry[name]
            self._registry[name] = estimator
            self._generations[name] = self._generations.get(name, 0) + 1
            return previous

    def unregister(self, name: str) -> CardinalityEstimator:
        """Remove the estimator registered under ``name`` and return it.

        This is how the lifecycle retires a rejected candidate (see
        :mod:`repro.serving.lifecycle`).  Reassignment rules:

        * if ``name`` was the default, the earliest remaining registration
          becomes the new default (none when the registry empties — the next
          :meth:`register` call becomes the default again);
        * if ``name`` was the registry :attr:`fallback`, the fallback is
          cleared (unmatched requests raise again rather than routing to a
          retired estimator).

        In-flight batches that already resolved the estimator object finish
        on it, exactly as with :meth:`replace`.

        Raises:
            UnknownEstimatorError: when ``name`` is not registered.  Also a
                ``KeyError``.
        """
        with self._registry_lock:
            if name not in self._registry:
                raise UnknownEstimatorError(
                    f"cannot unregister unknown estimator {name!r}; "
                    f"registered: {sorted(self._registry)}"
                )
            estimator = self._registry.pop(name)
            self._generations.pop(name, None)
            if self._default == name:
                self._default = next(iter(self._registry), None)
            if self.fallback == name:
                self.fallback = None
            return estimator

    def names(self) -> list[str]:
        """All registered estimator names, in registration order."""
        with self._registry_lock:
            return list(self._registry)

    @property
    def default_estimator(self) -> str:
        """The name served when a request does not pick an estimator."""
        with self._registry_lock:
            if self._default is None:
                raise LookupError("no estimator registered")
            return self._default

    def get(self, name: str | None = None) -> CardinalityEstimator:
        """The estimator registered under ``name`` (default when None).

        Raises:
            UnknownEstimatorError: when ``name`` is not registered (also a
                ``KeyError``, for pre-taxonomy callers).
        """
        with self._registry_lock:
            chosen = name if name is not None else self.default_estimator
            try:
                return self._registry[chosen]
            except KeyError:
                raise UnknownEstimatorError(
                    f"unknown estimator {chosen!r}; registered: {sorted(self._registry)}"
                ) from None

    def generation(self, name: str) -> int:
        """The model generation of the entry registered under ``name``.

        1 on first registration, bumped by every :meth:`replace`; 0 for a
        name that is not currently registered.
        """
        with self._registry_lock:
            return self._generations.get(name, 0)

    def set_generation(self, name: str, generation: int) -> None:
        """Stamp the registered entry's model generation to ``generation``.

        This is the cold-boot provenance hook: a stack restored from an
        artifact snapshot (:mod:`repro.artifacts`) re-registers its estimator
        — which would start the count back at 1 — and then stamps the
        *saved* generation here, so
        :attr:`EstimateResult.model_generation` stays continuous across a
        restart and the next adaptation promote advances from the restored
        number, not from 1.

        Raises:
            UnknownEstimatorError: when ``name`` is not registered.
            ValueError: when ``generation`` is not a positive int.
        """
        if not isinstance(generation, int) or isinstance(generation, bool) or generation <= 0:
            raise ValueError(f"generation must be a positive int, got {generation!r}")
        with self._registry_lock:
            if name not in self._registry:
                raise UnknownEstimatorError(
                    f"cannot set generation of unregistered estimator {name!r}; "
                    f"registered: {sorted(self._registry)}"
                )
            self._generations[name] = generation

    # ------------------------------------------------------------------ #
    # serving

    def submit(
        self,
        query: Query,
        estimator: str | None = None,
        options: RequestOptions | None = None,
    ) -> EstimateResult:
        """Estimate one query (a batch of one)."""
        return self.submit_batch([query], estimator=estimator, options=options)[0]

    def submit_batch(
        self,
        queries: Sequence[Query],
        estimator: str | None = None,
        options: RequestOptions | None = None,
        traces: Sequence | None = None,
    ) -> list[EstimateResult]:
        """Estimate many concurrent requests with cross-request batching.

        Cnt2Crd-family estimators are planned and scored as a few large
        deduplicated forward passes; other estimators fall back to their own
        per-query interface.  Requests the primary estimator cannot answer
        (no matching pool query and no built-in fallback) are re-routed to the
        registry :attr:`fallback` when one is configured — unless the
        request's :attr:`RequestOptions.fallback_policy` forbids it.

        ``options`` applies to the whole batch (the dispatcher groups
        requests by estimator and fallback policy before submitting);
        ``options.estimator`` takes precedence over the legacy ``estimator``
        argument.  Every result is an :class:`EstimateResult` carrying its
        resolution path, the answering entry's model generation, the batch's
        cache-hit deltas, and the caller's tags.

        ``traces`` (dispatcher-internal) carries one open
        :class:`repro.observability.RequestTrace` per query; each is linked
        to this batch's shared spans with its amortized share
        (``elapsed / len(queries)`` — the *same* division that produces
        ``latency_seconds``, so a trace's amortized links sum exactly to the
        stamped latency) and left open for the dispatcher to finish.  With a
        tracer attached and no ``traces`` given, the service samples the
        batch's member traces in bulk (:meth:`Tracer.sample_owned_batch`)
        and materializes only the kept ones.
        """
        if not queries:
            return []
        if options is None:
            options = _DEFAULT_OPTIONS
        # Name, estimator, and generation resolve under ONE registry-lock
        # acquisition: resolving the default and then looking it up separately
        # would let a concurrent unregister() of that name land in between and
        # fail the request, instead of letting it finish on the resolved
        # estimator (stamped with the generation it resolved).
        with self._registry_lock:
            if options.estimator is not None:
                name = options.estimator
            elif estimator is not None:
                name = estimator
            else:
                name = self.default_estimator
            chosen = self.get(name)
            generation = self._generations.get(name, 0)
        recorder = self.recorder
        tracer = self.tracer
        owns_traces = False
        owned_start_wall = owned_start_perf = 0.0
        batch_span = None
        if tracer is not None:
            if traces is None:
                # Synchronous callers (estimate / estimate_many) get traces
                # too — but owned members are homogeneous (one shared
                # duration, link, and latency), so their traces are sampled
                # in bulk after the batch and materialized only if kept;
                # the dispatcher passes real per-request traces, already
                # carrying the queue_wait stage.
                owns_traces = True
                owned_start_wall = tracer.wall_clock()
                owned_start_perf = tracer.clock()
            batch_span = tracer.begin(
                "service_batch", members=len(queries), estimator_name=name
            )
        feat_hits_before = (
            self.featurization_cache.stats.hits
            if self.featurization_cache is not None
            else 0
        )
        enc_hits_before = (
            self.encoding_cache.stats.hits if self.encoding_cache is not None else 0
        )
        if recorder is not None:
            feat_misses_before = (
                self.featurization_cache.stats.misses
                if self.featurization_cache is not None
                else 0
            )
            enc_misses_before = (
                self.encoding_cache.stats.misses
                if self.encoding_cache is not None
                else 0
            )
        start = time.perf_counter()
        try:
            if isinstance(chosen, Cnt2CrdEstimator):
                served, planned_pairs, scored_pairs = self._submit_cnt2crd(
                    queries, name, generation, chosen, options
                )
            else:
                planned_pairs = scored_pairs = 0
                served = [
                    self._served(
                        query,
                        name,
                        generation,
                        *self._guarded_estimate(query, name, chosen, options),
                    )
                    for query in queries
                ]
        except BaseException as error:
            # Ending the batch span pops every nested stage span off this
            # thread's stack too, so a failed batch cannot poison the
            # parenting of the next one; owned traces finish as errors
            # (error traces are always kept).
            if batch_span is not None:
                tracer.end(batch_span, error=type(error).__name__)
            if owns_traces:
                # One representative error trace for the whole owned batch
                # (its members are indistinguishable); error traces are
                # always kept.
                failed = tracer.start_request(name)
                failed.root.start_wall = owned_start_wall
                failed.root.start_perf = owned_start_perf
                failed.root.members = len(queries)
                failed.fail(error)
            # Dispatcher-provided traces are NOT failed here: the
            # dispatcher may retry members individually and owns the
            # finish/fail decision for its requests.
            raise
        elapsed = time.perf_counter() - start
        latency = elapsed / len(queries)
        if batch_span is not None:
            tracer.end(
                batch_span,
                size=len(queries),
                planned_pairs=planned_pairs,
                scored_pairs=scored_pairs,
            )
        self.latency_histogram.record(latency, count=len(queries))
        # Cache hits are batch-attributed, like latency: concurrent batches
        # sharing the caches may bleed hits into each other's window, so the
        # counts are provenance hints, not an exact per-request ledger.
        feat_hits = (
            self.featurization_cache.stats.hits - feat_hits_before
            if self.featurization_cache is not None
            else 0
        )
        enc_hits = (
            self.encoding_cache.stats.hits - enc_hits_before
            if self.encoding_cache is not None
            else 0
        )
        served = [
            replace(
                item,
                latency_seconds=latency,
                featurization_cache_hits=feat_hits,
                encoding_cache_hits=enc_hits,
                tags=options.tags,
            )
            for item in served
        ]
        if batch_span is not None:
            # The fan-in attribution contract: each member's amortized share
            # is the SAME elapsed/size division that produced ``latency``
            # above, so sum(amortized links) == latency_seconds exactly.
            if owns_traces:
                # Owned members are sampled in bulk (one lock window, one
                # histogram record, at most one tail exemplar for the whole
                # batch) and materialized straight to events only if kept —
                # the dominant cost of tracing a dropped member is zero.
                batch_end = time.perf_counter()
                root_elapsed = batch_end - owned_start_perf
                for index in tracer.sample_owned_batch(len(queries), root_elapsed):
                    item = served[index]
                    tracer.emit_owned_member(
                        item.estimator_name,
                        owned_start_wall,
                        owned_start_perf,
                        batch_end,
                        batch_span,
                        latency,
                        latency_seconds=latency,
                        estimator=item.estimator_name,
                        resolution=item.resolution,
                    )
            else:
                for trace in traces:
                    trace.link(batch_span, latency)
        with self._stats_lock:
            self.stats.requests += len(queries)
            self.stats.batches += 1
            self.stats.planned_pairs += planned_pairs
            self.stats.scored_pairs += scored_pairs
            self.stats.total_seconds += elapsed
            self.stats.fallbacks += sum(1 for item in served if item.used_fallback)
        if recorder is not None:
            recorder.emit(
                BatchServed(
                    estimator_name=name,
                    size=len(queries),
                    elapsed_seconds=elapsed,
                    planned_pairs=planned_pairs,
                    scored_pairs=scored_pairs,
                    featurization_hits=feat_hits,
                    featurization_misses=(
                        self.featurization_cache.stats.misses - feat_misses_before
                        if self.featurization_cache is not None
                        else 0
                    ),
                    encoding_hits=enc_hits,
                    encoding_misses=(
                        self.encoding_cache.stats.misses - enc_misses_before
                        if self.encoding_cache is not None
                        else 0
                    ),
                )
            )
            for item in served:
                recorder.emit(
                    RequestServed(
                        estimator_name=item.estimator_name,
                        resolution=item.resolution,
                        generation=item.model_generation,
                        estimate=item.estimate,
                        latency_seconds=item.latency_seconds,
                        pool_matches=item.pool_matches,
                        pairs_scored=item.pairs_scored,
                        used_fallback=item.used_fallback,
                    )
                )
        return served

    def warm(self, queries: Iterable[Query]) -> None:
        """Pre-featurize and pre-encode ``queries`` (typically the whole pool).

        Warming runs through the registered Cnt2Crd estimators' CRN-style
        containment models (and the featurization cache directly), so steady
        state — pool queries featurized once, ever — is reached before the
        first request instead of during it.
        """
        queries = list(queries)
        if self.featurization_cache is not None:
            self.featurization_cache.warm(queries)
        warmed: set[int] = set()
        with self._registry_lock:
            estimators = list(self._registry.values())
        for estimator in estimators:
            if not isinstance(estimator, Cnt2CrdEstimator):
                continue
            containment = estimator.containment_estimator
            if isinstance(containment, CRNEstimator) and id(containment) not in warmed:
                containment.warm(queries)
                warmed.add(id(containment))

    def stats_snapshot(self) -> dict[str, float]:
        """Service counters plus cache hit rates, ready for reporting.

        The counter block is read under the stats lock, so the snapshot is
        internally consistent even while other threads are submitting.
        """
        with self._stats_lock:
            snapshot = self._counters_locked()
        histogram = self.latency_histogram.snapshot()
        if histogram.count:
            # Bucketed, not exact: within one bucket width (~±9%) of the true
            # quantile, at O(1) memory regardless of traffic volume.
            snapshot["latency_p50_ms"] = histogram.quantile(0.5) * 1000.0
            snapshot["latency_p90_ms"] = histogram.quantile(0.9) * 1000.0
            snapshot["latency_p99_ms"] = histogram.quantile(0.99) * 1000.0
        if self.featurization_cache is not None:
            snapshot["featurization_hit_rate"] = self.featurization_cache.stats.hit_rate
            snapshot["featurization_entries"] = float(len(self.featurization_cache))
        if self.encoding_cache is not None:
            snapshot["encoding_hit_rate"] = self.encoding_cache.stats.hit_rate
            snapshot["encoding_entries"] = float(len(self.encoding_cache))
        if self.pool_index is not None:
            snapshot.update(self.pool_index.stats_snapshot())
        return snapshot

    def drain_stats(self) -> dict[str, float]:
        """Atomically snapshot **and reset** the service counter block.

        ``stats_snapshot()`` followed by ``stats.reset()`` is not atomic:
        submissions landing between the two calls are counted by neither the
        drained interval nor the next one, and a reset racing a snapshot can
        yield a torn view (requests from before the reset, seconds from
        after).  Draining does both under the stats lock, so periodic
        consumers — the lifecycle metrics path attributes serving counters to
        the model generation that produced them this way — see every request
        exactly once.

        Returns only the counter block (no cache rows: cache hit rates are
        cumulative gauges owned by the caches, not per-interval counters).

        Draining no longer *discards* history: with a recorder attached, the
        drained interval is emitted as a ``stats_drained`` event, so the
        event store's summed intervals plus the live counters always equal
        the all-time totals — :meth:`repro.serving.ServingClient.stats` and
        the store can never disagree (pinned by the consistency test in
        ``tests/test_observability_serving.py``).
        """
        with self._stats_lock:
            snapshot = self._counters_locked()
            drained = StatsDrained(
                requests=self.stats.requests,
                batches=self.stats.batches,
                planned_pairs=self.stats.planned_pairs,
                scored_pairs=self.stats.scored_pairs,
                fallbacks=self.stats.fallbacks,
                total_seconds=self.stats.total_seconds,
            )
            self.stats.reset()
            # Emit under the stats lock: two racing drains must land their
            # events in the same order they drained, or the store's interval
            # history would interleave inconsistently with the resets.
            if self.recorder is not None:
                self.recorder.emit(drained)
        return snapshot

    def reset_stats(self) -> None:
        """Zero the service counters under the stats lock.

        Prefer this over calling ``stats.reset()`` directly: the plain
        dataclass method does not take the service's stats lock, so a direct
        call can interleave with a concurrent submission's counter updates.
        """
        with self._stats_lock:
            self.stats.reset()

    # ------------------------------------------------------------------ #
    # internals

    def _counters_locked(self) -> dict[str, float]:
        """The counter block of :meth:`stats_snapshot`; caller holds the stats lock."""
        return {
            "requests": float(self.stats.requests),
            "batches": float(self.stats.batches),
            "planned_pairs": float(self.stats.planned_pairs),
            "scored_pairs": float(self.stats.scored_pairs),
            "deduplicated_pairs": float(self.stats.deduplicated_pairs),
            "fallbacks": float(self.stats.fallbacks),
            "mean_latency_ms": self.stats.mean_latency_seconds * 1000.0,
            "throughput_qps": self.stats.throughput_qps,
        }

    def _submit_cnt2crd(
        self,
        queries: Sequence[Query],
        name: str,
        generation: int,
        estimator: Cnt2CrdEstimator,
        options: RequestOptions,
    ) -> tuple[list[EstimateResult], int, int]:
        tracer = self.tracer
        span = (
            tracer.begin("plan", members=len(queries), estimator_name=name)
            if tracer is not None
            else None
        )
        plan = BatchPlanner(estimator).plan(queries)
        if span is not None:
            tracer.end(
                span,
                requests=len(plan.requests),
                planned_pairs=plan.planned_pairs,
                indexed_pairs=plan.indexed_pairs,
            )
        if plan.pairs:
            span = (
                tracer.begin("pair_rates", members=len(queries), estimator_name=name)
                if tracer is not None
                else None
            )
            rates = estimator.containment_estimator.estimate_containments(
                list(plan.pairs)
            )
            if span is not None:
                tracer.end(span, pairs=len(rates))
        else:
            rates = []
        # Indexed requests are scored once per unique (query, slab state) —
        # identical queries in a batch share one set of rates, mirroring the
        # pair list's cross-request deduplication — and all unique requests
        # run through ONE fused slab sequence (rates_against_pools): small
        # buckets would otherwise each pad out a full slab per request.
        indexed_rates: dict[tuple[Query, tuple], Sequence[float]] = {}
        scored = plan.unique_pairs
        containment = estimator.containment_estimator
        pending: list[tuple[tuple[Query, tuple], RequestPlan]] = []
        for request in plan.requests:
            if request.slab is None or not request.entries:
                continue
            key = (request.query, request.slab.token)
            if key in indexed_rates:
                continue
            indexed_rates[key] = ()  # claimed; filled from the fused run below
            pending.append((key, request))
            scored += 2 * len(request.entries)
        if pending:
            span = None
            if tracer is not None:
                attributes = {"requests": len(pending), "mode": "reference"}
                inference_plan = getattr(containment, "inference_plan", None)
                if inference_plan is not None:
                    attributes.update(inference_plan.kernel_info())
                span = tracer.begin(
                    "slab_kernel",
                    members=len(queries),
                    estimator_name=name,
                    **attributes,
                )
            blocks = containment.rates_against_pools(
                [(request.query, request.slab) for _, request in pending]
            )
            for (key, _), block in zip(pending, blocks):
                indexed_rates[key] = block
            if span is not None:
                tracer.end(span)
        span = (
            tracer.begin("collapse", members=len(queries), estimator_name=name)
            if tracer is not None
            else None
        )
        served = [
            self._answer_request(
                request, name, generation, estimator, rates, indexed_rates, options
            )
            for request in plan.requests
        ]
        if span is not None:
            tracer.end(span)
        # Pair counts are returned (not applied here) so the caller records
        # them atomically with requests/batches — and only for completed
        # batches: when a request with no fallback raises above, no counter
        # moves at all.
        return served, plan.planned_pairs, scored

    def _answer_request(
        self,
        request: RequestPlan,
        name: str,
        generation: int,
        estimator: Cnt2CrdEstimator,
        rates: Sequence[float],
        indexed_rates: Mapping[tuple[Query, tuple], Sequence[float]],
        options: RequestOptions,
    ) -> EstimateResult:
        allow_builtin = options.fallback_policy != "none"
        allow_registry = options.fallback_policy == "registry"
        if not request.has_match:
            if allow_builtin:
                try:
                    value = estimator.fallback_estimate(request.query)
                    return self._served(
                        request.query,
                        name,
                        generation,
                        (value, None, 0),
                        RESOLUTION_ESTIMATOR_FALLBACK,
                    )
                except NoMatchingPoolQueryError:
                    pass
            if allow_registry:
                return self._served(
                    request.query,
                    name,
                    generation,
                    self._registry_fallback(request.query, name),
                    RESOLUTION_REGISTRY_FALLBACK,
                )
            raise NoMatchingPoolQueryError(
                f"estimator {name!r} has no matching pool query for "
                f"{request.query.from_signature()} and the request's fallback "
                f"policy ({options.fallback_policy!r}) permits no re-route"
            )
        if request.slab is not None:
            request_rates = (
                indexed_rates[(request.query, request.slab.token)]
                if request.entries
                else []
            )
        else:
            request_rates = [rates[index] for index in request.pair_indices]
        # The vectorized values path is bit-for-bit equal to
        # estimates_from_rates + collapse and skips the per-entry Python
        # loop, which on large buckets costs as much as the forward passes
        # (indexed requests reuse the slab's precomputed cardinality vector,
        # so nothing iterates the entries at all).
        values = estimator.estimate_values_from_rates(
            request.entries,
            request_rates,
            cardinalities=request.slab.cardinalities if request.slab is not None else None,
        )
        if values.size == 0:
            # Matched, but every eligible entry was filtered by the epsilon
            # guard (or every match had an empty result): with a learned rate
            # model, collapsing to 0.0 would bypass the fallbacks with a
            # spurious zero.  Recovery chain mirrors the FROM-miss route —
            # the estimator's own fallback first, then the flagged registry
            # re-route; only when neither exists (or the request's policy
            # forbids them) does the legacy collapse-to-0 stand (exactly
            # right for exact rates and framed pools).
            outcome: tuple[float, str | None, int] | None = None
            resolution = request.resolution
            if allow_builtin:
                try:
                    outcome = (estimator.fallback_estimate(request.query), None, 0)
                    resolution = RESOLUTION_ESTIMATOR_FALLBACK
                except NoMatchingPoolQueryError:
                    outcome = None
            if outcome is None and allow_registry:
                try:
                    outcome = self._registry_fallback(request.query, name)
                    resolution = RESOLUTION_REGISTRY_FALLBACK
                except NoMatchingPoolQueryError:
                    outcome = None
            if outcome is None:
                outcome = (estimator.collapse_values(values), None, 0)
                resolution = request.resolution
            return self._served(
                request.query,
                name,
                generation,
                outcome,
                resolution,
                pool_matches=len(request.entries),
                pairs_scored=len(request_rates),
            )
        value = estimator.collapse_values(values)
        return EstimateResult(
            query=request.query,
            estimate=value,
            estimator_name=name,
            latency_seconds=0.0,
            pool_matches=len(request.entries),
            pairs_scored=len(request_rates),
            used_fallback=False,
            resolution=request.resolution,
            model_generation=generation,
        )

    def _guarded_estimate(
        self,
        query: Query,
        name: str,
        estimator: CardinalityEstimator,
        options: RequestOptions,
    ) -> tuple[tuple[float, str | None, int], str]:
        """One non-Cnt2Crd estimate: ``(outcome, resolution)`` for :meth:`_served`."""
        try:
            return (estimator.estimate_cardinality(query), None, 0), RESOLUTION_DIRECT
        except NoMatchingPoolQueryError:
            if options.fallback_policy != "registry":
                raise
            return (
                self._registry_fallback(query, name),
                RESOLUTION_REGISTRY_FALLBACK,
            )

    def _registry_fallback(self, query: Query, failed: str) -> tuple[float, str, int]:
        """Route a request the primary could not answer to the registry fallback.

        Returns ``(estimate, fallback name, fallback generation)``.  Name,
        estimator, and generation resolve under one registry-lock acquisition
        (and travel with the result): a concurrent :meth:`unregister` of the
        fallback entry must make this request raise cleanly or finish on the
        resolved object — never crash on a half-removed entry or stamp a
        vanished name (or another generation's number).
        """
        with self._registry_lock:
            fallback = self.fallback
            estimator = (
                self._registry.get(fallback)
                if fallback is not None and fallback != failed
                else None
            )
            generation = self._generations.get(fallback, 0) if fallback else 0
        if estimator is None:
            raise NoMatchingPoolQueryError(
                f"estimator {failed!r} has no matching pool query for "
                f"{query.from_signature()} and the service has no fallback estimator"
            )
        return estimator.estimate_cardinality(query), fallback, generation

    def _served(
        self,
        query: Query,
        name: str,
        generation: int,
        outcome: tuple[float, str | None, int],
        resolution: str,
        pool_matches: int = 0,
        pairs_scored: int = 0,
    ) -> EstimateResult:
        value, fallback_name, fallback_generation = outcome
        return EstimateResult(
            query=query,
            estimate=value,
            estimator_name=fallback_name if fallback_name is not None else name,
            latency_seconds=0.0,
            pool_matches=pool_matches,
            pairs_scored=pairs_scored,
            used_fallback=fallback_name is not None,
            resolution=resolution,
            model_generation=(
                fallback_generation if fallback_name is not None else generation
            ),
        )


def build_crn_service(
    model: CRNModel,
    featurizer: QueryFeaturizer,
    pool: QueriesPool,
    final_function: str | FinalFunction = "median",
    epsilon: float = 1e-3,
    batch_size: int = 256,
    fallback_estimator: CardinalityEstimator | None = None,
    extra_estimators: Mapping[str, CardinalityEstimator] | None = None,
    max_cache_entries: int | None = None,
    warm_pool: bool = True,
    use_pool_index: bool = True,
) -> EstimationService:
    """Wire a ready-to-serve CRN-backed estimation service.

    .. deprecated::
        ``build_crn_service`` is a thin shim over the declarative
        :class:`repro.serving.ServingConfig` — describe the deployment there
        and run it with :class:`repro.serving.ServingClient` (which adds the
        dispatcher, feedback, and adaptation wiring this constructor never
        had).  The keyword surface below maps 1:1 onto config fields; see the
        migration table in ``docs/architecture.md``.  The wiring is shared
        with the client, so the service built here is bit-for-bit identical
        to the one a :class:`~repro.serving.ServingClient` serves from.

    Args:
        model: a (trained) CRN network.
        featurizer: the featurizer bound to the serving database snapshot.
        pool: the queries pool backing the Cnt2Crd technique.
        final_function: the Cnt2Crd final function ``F``.
        epsilon: the Cnt2Crd ``y_rate`` guard threshold.
        batch_size: pair-head slab size for the batched forward passes.
        fallback_estimator: answers requests with no matching pool query.
        extra_estimators: additional registry entries (e.g. improved models).
        max_cache_entries: optional LRU bound for both caches (the encoding
            cache admits ``2×`` — two entries per query, one per pair slot;
            :class:`repro.serving.CacheConfig` documents the rule).
        warm_pool: pre-featurize/encode all pool queries up front (and
            pre-build the pool index's encoding matrices).
        use_pool_index: keep per-FROM-signature pool encoding matrices so a
            request is scored as one vectorized whole-pool slab pass instead
            of ``2·E`` per-pair cache lookups (bit-for-bit identical; see
            ``benchmarks/bench_pool_index.py`` for the win).
    """
    warnings.warn(
        "build_crn_service is deprecated: describe the deployment with "
        "repro.serving.ServingConfig and serve it through "
        "repro.serving.ServingClient",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.serving.client import build_service_stack
    from repro.serving.config import (
        CacheConfig,
        DispatcherConfig,
        EstimatorConfig,
        PoolConfig,
        ServingConfig,
    )

    config = ServingConfig(
        model=model,
        featurizer=featurizer,
        pool=pool,
        fallback_estimator=fallback_estimator,
        extra_estimators=extra_estimators or {},
        estimator=EstimatorConfig(
            final_function=final_function, epsilon=epsilon, batch_size=batch_size
        ),
        pool_options=PoolConfig(warm=warm_pool, use_index=use_pool_index),
        caches=CacheConfig(max_featurization_entries=max_cache_entries),
        dispatcher=DispatcherConfig(enabled=False),
    )
    return build_service_stack(config).service
