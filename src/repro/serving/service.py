"""The online cardinality-estimation service façade.

:class:`EstimationService` is the piece that turns the paper's estimators into
serving infrastructure: it owns a registry of named cardinality estimators
(Cnt2Crd over CRN, improved baselines, plain baselines, ...), batches the
Cnt2Crd scoring work of concurrent requests through the
:class:`repro.serving.BatchPlanner`, shares the featurization / encoding
caches across requests, and records per-request latency plus service-level
hit-rate statistics (rendered by
:func:`repro.evaluation.reporting.format_service_stats` and timed by
:func:`repro.evaluation.timing.time_service`).

The batched path is exact, not approximate: planning only deduplicates which
ordered pairs are scored (and routes index-servable requests through the
:class:`repro.serving.PoolEncodingIndex`'s whole-pool slabs), and the rates
flow back through the estimator's own
:meth:`repro.core.cnt2crd.Cnt2CrdEstimator.estimate_values_from_rates` and
:meth:`repro.core.cnt2crd.Cnt2CrdEstimator.collapse_values` — the vectorized
bit-equal twins of ``estimates_from_rates`` / ``collapse`` — so a served
estimate is bit-for-bit identical to calling ``estimate_cardinality`` per
request.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Iterable, Mapping, Sequence

from repro.core.cnt2crd import Cnt2CrdEstimator, NoMatchingPoolQueryError
from repro.core.crn import CRNEstimator, CRNModel
from repro.core.estimators import CardinalityEstimator
from repro.core.featurization import QueryFeaturizer
from repro.core.final_functions import FinalFunction
from repro.core.queries_pool import QueriesPool
from repro.serving.cache import EncodingCache, FeaturizationCache
from repro.serving.planner import BatchPlanner, RequestPlan
from repro.serving.pool_index import PoolEncodingIndex
from repro.sql.query import Query


@dataclass(frozen=True)
class ServedEstimate:
    """One answered estimation request.

    Attributes:
        query: the estimated query.
        estimate: the estimated cardinality.
        estimator_name: the registry name that produced the estimate (the
            fallback's name when the primary had no matching pool query).
        latency_seconds: wall-clock time attributed to this request.  Exact
            for :meth:`EstimationService.submit`; for batched submissions it
            is the batch's elapsed time divided by the batch size.
        pool_matches: eligible pool entries the query was scored against.
        pairs_scored: containment pairs the request contributed to the plan.
        used_fallback: True when the registry fallback answered the request.
    """

    query: Query
    estimate: float
    estimator_name: str
    latency_seconds: float
    pool_matches: int
    pairs_scored: int
    used_fallback: bool

    @property
    def latency_milliseconds(self) -> float:
        """Attributed latency in milliseconds."""
        return self.latency_seconds * 1000.0


@dataclass
class ServiceStats:
    """Cumulative service-level counters.

    The owning :class:`EstimationService` guards every mutation with its
    stats lock, so the counters stay consistent under concurrent
    submissions; plain reads of individual fields are safe from any thread.
    To reset, go through :meth:`EstimationService.reset_stats` (or
    :meth:`EstimationService.drain_stats` for an atomic snapshot-and-reset) —
    calling :meth:`reset` directly from another thread bypasses that lock.
    """

    requests: int = 0
    batches: int = 0
    planned_pairs: int = 0
    scored_pairs: int = 0
    fallbacks: int = 0
    total_seconds: float = 0.0

    @property
    def deduplicated_pairs(self) -> int:
        """Pair computations avoided by cross-request planning."""
        return self.planned_pairs - self.scored_pairs

    @property
    def mean_latency_seconds(self) -> float:
        """Average attributed per-request latency."""
        if not self.requests:
            return 0.0
        return self.total_seconds / self.requests

    @property
    def throughput_qps(self) -> float:
        """Requests served per second of service time."""
        if self.total_seconds <= 0.0:
            return 0.0
        return self.requests / self.total_seconds

    def reset(self) -> None:
        """Zero all counters."""
        self.requests = 0
        self.batches = 0
        self.planned_pairs = 0
        self.scored_pairs = 0
        self.fallbacks = 0
        self.total_seconds = 0.0


class EstimationService:
    """An online, batching, caching front-end over the paper's estimators.

    The service is thread-safe: the registry is guarded by a lock (so
    :meth:`register` / :meth:`replace` can hot-swap estimators while other
    threads submit), stats updates are atomic, and the caches and the
    queries pool take their own fine-grained locks.  Model forward passes
    themselves only *read* shared state, so concurrent ``submit_batch``
    calls do not serialize on the scoring work — but each call still pays
    its own planning and featurization.  For high-concurrency traffic,
    front the service with a :class:`repro.serving.ServingDispatcher`, which
    coalesces many callers' requests into few shared batches.

    Args:
        fallback: optional registry name answering requests for which the
            primary estimator raises :class:`NoMatchingPoolQueryError` (see
            the recovery strategies in :mod:`repro.core.cnt2crd`).
        featurization_cache: the cache shared by the registered estimators'
            featurizers, reported in :meth:`stats_snapshot` (optional).
        encoding_cache: the CRN encoding cache shared across requests,
            reported in :meth:`stats_snapshot` (optional).
        pool_index: the shared :class:`repro.serving.PoolEncodingIndex`
            backing the registered Cnt2Crd estimators, reported in
            :meth:`stats_snapshot` and rebuilt by the adaptation lifecycle
            on a model hot swap (optional).
    """

    def __init__(
        self,
        fallback: str | None = None,
        featurization_cache: FeaturizationCache | None = None,
        encoding_cache: EncodingCache | None = None,
        pool_index: PoolEncodingIndex | None = None,
    ) -> None:
        self._registry: dict[str, CardinalityEstimator] = {}
        self._default: str | None = None
        self.fallback = fallback
        self.featurization_cache = featurization_cache
        self.encoding_cache = encoding_cache
        self.pool_index = pool_index
        self.stats = ServiceStats()
        self._registry_lock = threading.RLock()
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # registry

    def register(
        self, name: str, estimator: CardinalityEstimator, default: bool = False
    ) -> None:
        """Register ``estimator`` under ``name`` (first registration is the default)."""
        if not name:
            raise ValueError("estimator name must be non-empty")
        with self._registry_lock:
            self._registry[name] = estimator
            if default or self._default is None:
                self._default = name

    def replace(self, name: str, estimator: CardinalityEstimator) -> CardinalityEstimator:
        """Atomically hot-swap the estimator registered under ``name``.

        This is the zero-downtime update path: in-flight batches finish on
        the estimator object they already resolved, and every submission
        that resolves after this call is served by the replacement.  To swap
        a retrained CRN that shares the service's encoding cache, call
        :meth:`repro.serving.EncodingCache.rebind` with the new model before
        building the replacement estimator.

        Returns:
            The estimator previously registered under ``name``.

        Raises:
            KeyError: when ``name`` was never registered (use
                :meth:`register` for new entries — replacing an unknown name
                is almost always a typo).
        """
        with self._registry_lock:
            if name not in self._registry:
                raise KeyError(
                    f"cannot replace unregistered estimator {name!r}; "
                    f"registered: {sorted(self._registry)}"
                )
            previous = self._registry[name]
            self._registry[name] = estimator
            return previous

    def unregister(self, name: str) -> CardinalityEstimator:
        """Remove the estimator registered under ``name`` and return it.

        This is how the lifecycle retires a rejected candidate (see
        :mod:`repro.serving.lifecycle`).  Reassignment rules:

        * if ``name`` was the default, the earliest remaining registration
          becomes the new default (none when the registry empties — the next
          :meth:`register` call becomes the default again);
        * if ``name`` was the registry :attr:`fallback`, the fallback is
          cleared (unmatched requests raise again rather than routing to a
          retired estimator).

        In-flight batches that already resolved the estimator object finish
        on it, exactly as with :meth:`replace`.

        Raises:
            KeyError: when ``name`` is not registered.
        """
        with self._registry_lock:
            if name not in self._registry:
                raise KeyError(
                    f"cannot unregister unknown estimator {name!r}; "
                    f"registered: {sorted(self._registry)}"
                )
            estimator = self._registry.pop(name)
            if self._default == name:
                self._default = next(iter(self._registry), None)
            if self.fallback == name:
                self.fallback = None
            return estimator

    def names(self) -> list[str]:
        """All registered estimator names, in registration order."""
        with self._registry_lock:
            return list(self._registry)

    @property
    def default_estimator(self) -> str:
        """The name served when a request does not pick an estimator."""
        with self._registry_lock:
            if self._default is None:
                raise LookupError("no estimator registered")
            return self._default

    def get(self, name: str | None = None) -> CardinalityEstimator:
        """The estimator registered under ``name`` (default when None)."""
        with self._registry_lock:
            chosen = name if name is not None else self.default_estimator
            try:
                return self._registry[chosen]
            except KeyError:
                raise KeyError(
                    f"unknown estimator {chosen!r}; registered: {sorted(self._registry)}"
                ) from None

    # ------------------------------------------------------------------ #
    # serving

    def submit(self, query: Query, estimator: str | None = None) -> ServedEstimate:
        """Estimate one query (a batch of one)."""
        return self.submit_batch([query], estimator=estimator)[0]

    def submit_batch(
        self, queries: Sequence[Query], estimator: str | None = None
    ) -> list[ServedEstimate]:
        """Estimate many concurrent requests with cross-request batching.

        Cnt2Crd-family estimators are planned and scored as a few large
        deduplicated forward passes; other estimators fall back to their own
        per-query interface.  Requests the primary estimator cannot answer
        (no matching pool query and no built-in fallback) are re-routed to the
        registry :attr:`fallback` when one is configured.
        """
        if not queries:
            return []
        # Name and estimator resolve under ONE registry-lock acquisition:
        # resolving the default and then looking it up separately would let a
        # concurrent unregister() of that name land in between and fail the
        # request, instead of letting it finish on the resolved estimator.
        with self._registry_lock:
            name = estimator if estimator is not None else self.default_estimator
            chosen = self.get(name)
        start = time.perf_counter()
        if isinstance(chosen, Cnt2CrdEstimator):
            served, planned_pairs, scored_pairs = self._submit_cnt2crd(
                queries, name, chosen
            )
        else:
            planned_pairs = scored_pairs = 0
            served = [
                self._served(query, name, self._guarded_estimate(query, name, chosen))
                for query in queries
            ]
        elapsed = time.perf_counter() - start
        latency = elapsed / len(queries)
        served = [replace(item, latency_seconds=latency) for item in served]
        with self._stats_lock:
            self.stats.requests += len(queries)
            self.stats.batches += 1
            self.stats.planned_pairs += planned_pairs
            self.stats.scored_pairs += scored_pairs
            self.stats.total_seconds += elapsed
            self.stats.fallbacks += sum(1 for item in served if item.used_fallback)
        return served

    def warm(self, queries: Iterable[Query]) -> None:
        """Pre-featurize and pre-encode ``queries`` (typically the whole pool).

        Warming runs through the registered Cnt2Crd estimators' CRN-style
        containment models (and the featurization cache directly), so steady
        state — pool queries featurized once, ever — is reached before the
        first request instead of during it.
        """
        queries = list(queries)
        if self.featurization_cache is not None:
            self.featurization_cache.warm(queries)
        warmed: set[int] = set()
        with self._registry_lock:
            estimators = list(self._registry.values())
        for estimator in estimators:
            if not isinstance(estimator, Cnt2CrdEstimator):
                continue
            containment = estimator.containment_estimator
            if isinstance(containment, CRNEstimator) and id(containment) not in warmed:
                containment.warm(queries)
                warmed.add(id(containment))

    def stats_snapshot(self) -> dict[str, float]:
        """Service counters plus cache hit rates, ready for reporting.

        The counter block is read under the stats lock, so the snapshot is
        internally consistent even while other threads are submitting.
        """
        with self._stats_lock:
            snapshot = self._counters_locked()
        if self.featurization_cache is not None:
            snapshot["featurization_hit_rate"] = self.featurization_cache.stats.hit_rate
            snapshot["featurization_entries"] = float(len(self.featurization_cache))
        if self.encoding_cache is not None:
            snapshot["encoding_hit_rate"] = self.encoding_cache.stats.hit_rate
            snapshot["encoding_entries"] = float(len(self.encoding_cache))
        if self.pool_index is not None:
            snapshot.update(self.pool_index.stats_snapshot())
        return snapshot

    def drain_stats(self) -> dict[str, float]:
        """Atomically snapshot **and reset** the service counter block.

        ``stats_snapshot()`` followed by ``stats.reset()`` is not atomic:
        submissions landing between the two calls are counted by neither the
        drained interval nor the next one, and a reset racing a snapshot can
        yield a torn view (requests from before the reset, seconds from
        after).  Draining does both under the stats lock, so periodic
        consumers — the lifecycle metrics path attributes serving counters to
        the model generation that produced them this way — see every request
        exactly once.

        Returns only the counter block (no cache rows: cache hit rates are
        cumulative gauges owned by the caches, not per-interval counters).
        """
        with self._stats_lock:
            snapshot = self._counters_locked()
            self.stats.reset()
        return snapshot

    def reset_stats(self) -> None:
        """Zero the service counters under the stats lock.

        Prefer this over calling ``stats.reset()`` directly: the plain
        dataclass method does not take the service's stats lock, so a direct
        call can interleave with a concurrent submission's counter updates.
        """
        with self._stats_lock:
            self.stats.reset()

    # ------------------------------------------------------------------ #
    # internals

    def _counters_locked(self) -> dict[str, float]:
        """The counter block of :meth:`stats_snapshot`; caller holds the stats lock."""
        return {
            "requests": float(self.stats.requests),
            "batches": float(self.stats.batches),
            "planned_pairs": float(self.stats.planned_pairs),
            "scored_pairs": float(self.stats.scored_pairs),
            "deduplicated_pairs": float(self.stats.deduplicated_pairs),
            "fallbacks": float(self.stats.fallbacks),
            "mean_latency_ms": self.stats.mean_latency_seconds * 1000.0,
            "throughput_qps": self.stats.throughput_qps,
        }

    def _submit_cnt2crd(
        self, queries: Sequence[Query], name: str, estimator: Cnt2CrdEstimator
    ) -> tuple[list[ServedEstimate], int, int]:
        plan = BatchPlanner(estimator).plan(queries)
        rates = (
            estimator.containment_estimator.estimate_containments(list(plan.pairs))
            if plan.pairs
            else []
        )
        # Indexed requests are scored once per unique (query, slab state) —
        # identical queries in a batch share one set of rates, mirroring the
        # pair list's cross-request deduplication — and all unique requests
        # run through ONE fused slab sequence (rates_against_pools): small
        # buckets would otherwise each pad out a full slab per request.
        indexed_rates: dict[tuple[Query, tuple], Sequence[float]] = {}
        scored = plan.unique_pairs
        containment = estimator.containment_estimator
        pending: list[tuple[tuple[Query, tuple], RequestPlan]] = []
        for request in plan.requests:
            if request.slab is None or not request.entries:
                continue
            key = (request.query, request.slab.token)
            if key in indexed_rates:
                continue
            indexed_rates[key] = ()  # claimed; filled from the fused run below
            pending.append((key, request))
            scored += 2 * len(request.entries)
        if pending:
            blocks = containment.rates_against_pools(
                [
                    (request.query, request.slab.first, request.slab.second)
                    for _, request in pending
                ]
            )
            for (key, _), block in zip(pending, blocks):
                indexed_rates[key] = block
        served = [
            self._answer_request(request, name, estimator, rates, indexed_rates)
            for request in plan.requests
        ]
        # Pair counts are returned (not applied here) so the caller records
        # them atomically with requests/batches — and only for completed
        # batches: when a request with no fallback raises above, no counter
        # moves at all.
        return served, plan.planned_pairs, scored

    def _answer_request(
        self,
        request: RequestPlan,
        name: str,
        estimator: Cnt2CrdEstimator,
        rates: Sequence[float],
        indexed_rates: Mapping[tuple[Query, tuple], Sequence[float]],
    ) -> ServedEstimate:
        if not request.has_match:
            try:
                value = estimator.fallback_estimate(request.query)
                return self._served(request.query, name, (value, None))
            except NoMatchingPoolQueryError:
                return self._served(
                    request.query, name, self._registry_fallback(request.query, name)
                )
        if request.slab is not None:
            request_rates = (
                indexed_rates[(request.query, request.slab.token)]
                if request.entries
                else []
            )
        else:
            request_rates = [rates[index] for index in request.pair_indices]
        # The vectorized values path is bit-for-bit equal to
        # estimates_from_rates + collapse and skips the per-entry Python
        # loop, which on large buckets costs as much as the forward passes
        # (indexed requests reuse the slab's precomputed cardinality vector,
        # so nothing iterates the entries at all).
        values = estimator.estimate_values_from_rates(
            request.entries,
            request_rates,
            cardinalities=request.slab.cardinalities if request.slab is not None else None,
        )
        if values.size == 0:
            # Matched, but every eligible entry was filtered by the epsilon
            # guard (or every match had an empty result): with a learned rate
            # model, collapsing to 0.0 would bypass the fallbacks with a
            # spurious zero.  Recovery chain mirrors the FROM-miss route —
            # the estimator's own fallback first, then the flagged registry
            # re-route; only when neither exists does the legacy collapse-
            # to-0 stand (exactly right for exact rates and framed pools).
            try:
                value = estimator.fallback_estimate(request.query)
                outcome: tuple[float, str | None] = (value, None)
            except NoMatchingPoolQueryError:
                try:
                    outcome = self._registry_fallback(request.query, name)
                except NoMatchingPoolQueryError:
                    outcome = (estimator.collapse_values(values), None)
            return self._served(
                request.query,
                name,
                outcome,
                pool_matches=len(request.entries),
                pairs_scored=len(request_rates),
            )
        value = estimator.collapse_values(values)
        return ServedEstimate(
            query=request.query,
            estimate=value,
            estimator_name=name,
            latency_seconds=0.0,
            pool_matches=len(request.entries),
            pairs_scored=len(request_rates),
            used_fallback=False,
        )

    def _guarded_estimate(
        self, query: Query, name: str, estimator: CardinalityEstimator
    ) -> tuple[float, str | None]:
        try:
            return estimator.estimate_cardinality(query), None
        except NoMatchingPoolQueryError:
            return self._registry_fallback(query, name)

    def _registry_fallback(self, query: Query, failed: str) -> tuple[float, str]:
        """Route a request the primary could not answer to the registry fallback.

        Returns ``(estimate, fallback name)``.  Name and estimator resolve
        under one registry-lock acquisition (and the name travels with the
        result): a concurrent :meth:`unregister` of the fallback entry must
        make this request raise cleanly or finish on the resolved object —
        never crash on a half-removed entry or stamp a vanished name.
        """
        with self._registry_lock:
            fallback = self.fallback
            estimator = (
                self._registry.get(fallback)
                if fallback is not None and fallback != failed
                else None
            )
        if estimator is None:
            raise NoMatchingPoolQueryError(
                f"estimator {failed!r} has no matching pool query for "
                f"{query.from_signature()} and the service has no fallback estimator"
            )
        return estimator.estimate_cardinality(query), fallback

    def _served(
        self,
        query: Query,
        name: str,
        outcome: tuple[float, str | None],
        pool_matches: int = 0,
        pairs_scored: int = 0,
    ) -> ServedEstimate:
        value, fallback_name = outcome
        return ServedEstimate(
            query=query,
            estimate=value,
            estimator_name=fallback_name if fallback_name is not None else name,
            latency_seconds=0.0,
            pool_matches=pool_matches,
            pairs_scored=pairs_scored,
            used_fallback=fallback_name is not None,
        )


def build_crn_service(
    model: CRNModel,
    featurizer: QueryFeaturizer,
    pool: QueriesPool,
    final_function: str | FinalFunction = "median",
    epsilon: float = 1e-3,
    batch_size: int = 256,
    fallback_estimator: CardinalityEstimator | None = None,
    extra_estimators: Mapping[str, CardinalityEstimator] | None = None,
    max_cache_entries: int | None = None,
    warm_pool: bool = True,
    use_pool_index: bool = True,
) -> EstimationService:
    """Wire a ready-to-serve CRN-backed estimation service.

    Builds the featurization and encoding caches, a cache-aware
    :class:`CRNEstimator`, the :class:`Cnt2CrdEstimator` on top (backed by a
    :class:`repro.serving.PoolEncodingIndex` unless disabled), registers it
    as ``"crn"`` (the default), optionally registers ``fallback_estimator`` as
    ``"fallback"`` plus any ``extra_estimators``, and pre-warms the caches
    with the queries pool so pool queries are featurized once, ever.

    Args:
        model: a (trained) CRN network.
        featurizer: the featurizer bound to the serving database snapshot.
        pool: the queries pool backing the Cnt2Crd technique.
        final_function: the Cnt2Crd final function ``F``.
        epsilon: the Cnt2Crd ``y_rate`` guard threshold.
        batch_size: pair-head slab size for the batched forward passes.
        fallback_estimator: answers requests with no matching pool query.
        extra_estimators: additional registry entries (e.g. improved models).
        max_cache_entries: optional LRU bound for both caches.
        warm_pool: pre-featurize/encode all pool queries up front (and
            pre-build the pool index's encoding matrices).
        use_pool_index: keep per-FROM-signature pool encoding matrices so a
            request is scored as one vectorized whole-pool slab pass instead
            of ``2·E`` per-pair cache lookups (bit-for-bit identical; see
            ``benchmarks/bench_pool_index.py`` for the win).
    """
    featurization_cache = FeaturizationCache(featurizer, max_entries=max_cache_entries)
    # The encoding cache holds two entries per query (one per pair slot), so
    # a bound sized for N queries must admit 2N encodings or warming the pool
    # would immediately evict half of it.
    encoding_cache = EncodingCache(
        max_entries=2 * max_cache_entries if max_cache_entries is not None else None
    )
    crn = CRNEstimator(
        model, featurization_cache, batch_size=batch_size, encoding_cache=encoding_cache
    )
    pool_index = PoolEncodingIndex(pool) if use_pool_index else None
    cnt2crd = Cnt2CrdEstimator(
        crn, pool, final_function=final_function, epsilon=epsilon, pool_index=pool_index
    )
    service = EstimationService(
        fallback="fallback" if fallback_estimator is not None else None,
        featurization_cache=featurization_cache,
        encoding_cache=encoding_cache,
        pool_index=pool_index,
    )
    service.register("crn", cnt2crd, default=True)
    if fallback_estimator is not None:
        service.register("fallback", fallback_estimator)
    for name, estimator in (extra_estimators or {}).items():
        service.register(name, estimator)
    if warm_pool:
        service.warm(entry.query for entry in pool)
        if pool_index is not None:
            pool_index.warm(cnt2crd)
    return service
