"""Feedback collection: closing the loop between estimates and ground truth.

A served estimate is a prediction; the database eventually knows the truth —
either because the DBMS executes the query anyway (the paper's queries-pool
construction assumes exactly that) or because the caller can report the
actual row count later.  :class:`FeedbackCollector` records those
``(query, estimate, true cardinality)`` observations into a bounded,
thread-safe rolling window and exposes per-estimator q-error quantiles over
it.  The window is what the adaptation subsystem
(:mod:`repro.serving.lifecycle`) watches for drift: when the database changes
under a live service, the rolling q-error of the stale model degrades, a
drift policy fires, and a background retrain/hot-swap restores accuracy.

Ground truth can be supplied two ways:

* **caller-supplied actuals** — ``record(query, estimate, truth)`` or
  ``record_served(served, true_cardinality=...)`` with the executed count;
* **executor ground truth** — construct the collector with an ``oracle``
  (anything with a ``cardinality(query)`` method, e.g.
  :class:`repro.db.TrueCardinalityOracle` over ``db.executor``) and call
  ``record_served(served)``; the collector executes the query exactly.

Every mutation holds the collector lock, so serving threads, the dispatcher
thread, and the lifecycle worker can share one collector.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.metrics import q_errors
from repro.serving.service import ServedEstimate
from repro.sql.query import Query


@dataclass(frozen=True)
class FeedbackObservation:
    """One closed-loop observation: an estimate and the truth it met.

    Attributes:
        query: the estimated query.
        estimate: the cardinality the service answered with.
        true_cardinality: the actual cardinality (executed or reported).
        estimator_name: the registry name that produced the estimate
            (empty when recorded outside the service).
        q_error: ``max(estimate, truth) / min(estimate, truth)`` with the
            collector's zero-guard epsilon.
        sequence: monotonically increasing arrival index (survives window
            eviction, so gaps reveal how much history rolled off).
    """

    query: Query
    estimate: float
    true_cardinality: float
    estimator_name: str
    q_error: float
    sequence: int


@dataclass(frozen=True)
class FeedbackSummary:
    """Percentile summary of one (filtered) feedback window."""

    count: int
    mean_q_error: float
    p50: float
    p90: float
    max: float


class FeedbackCollector:
    """A bounded, thread-safe rolling window of served-estimate feedback.

    Args:
        max_observations: window bound; the oldest observation is evicted
            when a new one arrives at capacity.
        epsilon: q-error zero-guard (1.0 keeps empty-result queries finite
            without distorting non-empty ones).
        oracle: optional ground-truth source with a ``cardinality(query)``
            method, used by :meth:`record_served` when the caller does not
            supply the actual count.
    """

    def __init__(
        self,
        max_observations: int = 1024,
        epsilon: float = 1.0,
        oracle=None,
        recorder=None,
    ) -> None:
        if max_observations <= 0:
            raise ValueError("max_observations must be positive")
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.max_observations = max_observations
        self.epsilon = epsilon
        self.oracle = oracle
        # Optional repro.observability.EventRecorder: when set, every
        # recorded observation also emits a FeedbackRecorded event — the
        # q-error signal behind the store's per-estimator views.
        self.recorder = recorder
        self._window: deque[FeedbackObservation] = deque(maxlen=max_observations)
        self._lock = threading.Lock()
        self._sequence = 0
        self._total_recorded = 0

    # ------------------------------------------------------------------ #
    # recording

    def record(
        self,
        query: Query,
        estimate: float,
        true_cardinality: float,
        estimator_name: str = "",
    ) -> FeedbackObservation:
        """Record one observation with a caller-supplied actual cardinality."""
        error = float(q_errors([estimate], [true_cardinality], epsilon=self.epsilon)[0])
        with self._lock:
            observation = FeedbackObservation(
                query=query,
                estimate=float(estimate),
                true_cardinality=float(true_cardinality),
                estimator_name=estimator_name,
                q_error=error,
                sequence=self._sequence,
            )
            self._sequence += 1
            self._total_recorded += 1
            self._window.append(observation)
        recorder = self.recorder
        if recorder is not None:
            from repro.observability.events import FeedbackRecorded

            recorder.emit(
                FeedbackRecorded(
                    estimator_name=observation.estimator_name,
                    estimate=observation.estimate,
                    true_cardinality=observation.true_cardinality,
                    q_error=observation.q_error,
                    sequence=observation.sequence,
                )
            )
        return observation

    def record_served(
        self, served: ServedEstimate, true_cardinality: float | None = None
    ) -> FeedbackObservation:
        """Record a :class:`~repro.serving.ServedEstimate` against the truth.

        When ``true_cardinality`` is omitted the collector's ``oracle``
        executes the query for the exact count; supplying the actual keeps
        execution out of the serving path entirely.
        """
        if true_cardinality is None:
            if self.oracle is None:
                raise ValueError(
                    "no true_cardinality supplied and the collector has no oracle; "
                    "pass the executed count or construct with oracle="
                )
            true_cardinality = self.oracle.cardinality(served.query)
        return self.record(
            served.query,
            served.estimate,
            true_cardinality,
            estimator_name=served.estimator_name,
        )

    # ------------------------------------------------------------------ #
    # window views

    def observations(self, estimator: str | None = None) -> list[FeedbackObservation]:
        """A snapshot of the window, oldest first (optionally one estimator's).

        Observations recorded without an estimator name (the caller-supplied
        :meth:`record` path) are *unattributed* and match every filter:
        excluding them would silently disarm any consumer filtering by name —
        the drift monitor and the accept gate both do — in the common
        single-estimator deployment that never labels its feedback.
        """
        with self._lock:
            snapshot = list(self._window)
        if estimator is None:
            return snapshot
        return [
            item
            for item in snapshot
            if item.estimator_name == estimator or not item.estimator_name
        ]

    def window_errors(self, estimator: str | None = None) -> list[float]:
        """The q-errors currently in the window, oldest first."""
        return [item.q_error for item in self.observations(estimator)]

    def holdout(
        self, count: int, estimator: str | None = None
    ) -> list[FeedbackObservation]:
        """The most recent ``count`` observations (the candidate-gate slice).

        The lifecycle validates retrained candidates on this slice: recent
        observations carry post-update ground truth, so they are the freshest
        available labels for an accept/reject decision.
        """
        if count <= 0:
            raise ValueError("holdout count must be positive")
        return self.observations(estimator)[-count:]

    def __len__(self) -> int:
        with self._lock:
            return len(self._window)

    @property
    def total_recorded(self) -> int:
        """Observations ever recorded (including those evicted by the bound)."""
        with self._lock:
            return self._total_recorded

    # ------------------------------------------------------------------ #
    # statistics

    def quantile(self, q: float, estimator: str | None = None) -> float:
        """The ``q`` quantile of the window's q-errors (NaN on an empty window)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must lie in [0, 1]")
        errors = self.window_errors(estimator)
        if not errors:
            return float("nan")
        return float(np.quantile(np.asarray(errors, dtype=np.float64), q))

    def mean_q_error(self, estimator: str | None = None) -> float:
        """The arithmetic mean of the window's q-errors (NaN on an empty window)."""
        errors = self.window_errors(estimator)
        if not errors:
            return float("nan")
        return float(np.mean(errors))

    def summary(self, estimator: str | None = None) -> FeedbackSummary:
        """Count / mean / p50 / p90 / max of the (filtered) window."""
        errors = self.window_errors(estimator)
        if not errors:
            nan = float("nan")
            return FeedbackSummary(count=0, mean_q_error=nan, p50=nan, p90=nan, max=nan)
        values = np.asarray(errors, dtype=np.float64)
        return FeedbackSummary(
            count=int(values.size),
            mean_q_error=float(values.mean()),
            p50=float(np.quantile(values, 0.5)),
            p90=float(np.quantile(values, 0.9)),
            max=float(values.max()),
        )

    def clear(self) -> None:
        """Drop the window (sequence numbers and the total keep counting).

        The lifecycle clears the window after a hot swap so the old model's
        errors do not keep the drift policy firing against the new model.
        """
        with self._lock:
            self._window.clear()
