"""The unified serving client: one handle over the whole serving stack.

:class:`ServingClient` turns a declarative
:class:`repro.serving.ServingConfig` into a running deployment and owns its
lifecycle end to end — construction, wiring, start ordering, and shutdown of
the :class:`repro.serving.EstimationService`, the request-coalescing
:class:`repro.serving.ServingDispatcher`, the
:class:`repro.serving.FeedbackCollector`, and the
:class:`repro.serving.AdaptationManager`.  Callers hold *one* object::

    config = ServingConfig(model=model, featurizer=featurizer, pool=pool,
                           fallback_estimator=postgres)
    with ServingClient(config) as client:
        result = client.estimate(query)                   # EstimateResult
        burst = client.estimate_many(queries)             # one planned batch
        future = client.estimate_future(query)            # dispatcher-backed
        print(client.stats())                             # merged snapshot

Per-request behaviour rides in :class:`repro.serving.RequestOptions`
(estimator name, deadline, fallback policy, caller tags), and every answer
is an :class:`repro.serving.EstimateResult` carrying provenance — the
resolution path, the answering model generation (bumped on every hot swap),
and cache-hit counts.

The client changes **no bits**: :func:`build_service_stack` is the single
wiring routine shared with the deprecated
:func:`repro.serving.build_crn_service`, so estimates served through the
client are bit-for-bit identical to the legacy constructor + manual
dispatcher path (asserted by the hypothesis identity test in
``tests/test_property_based.py``).

Start/shutdown ordering: ``__enter__`` (or the :meth:`ServingClient.start`
classmethod) starts the dispatcher before the adaptation worker — requests
must be servable before the first drift evaluation can swap anything — and
:meth:`shutdown` stops them in reverse: the adaptation worker first (no swap
begins mid-drain), then the dispatcher, which drains every accepted request
before returning.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.core.cnt2crd import Cnt2CrdEstimator
from repro.core.crn import CRNEstimator
from repro.core.featurization import QueryFeaturizer
from repro.observability.events import ArtifactLoaded, PlanCompiled
from repro.observability.recorder import EventRecorder
from repro.observability.store import EventStore
from repro.observability.tracing import Tracer
from repro.serving.cache import EncodingCache, FeaturizationCache
from repro.serving.config import ServingConfig
from repro.serving.dispatcher import ServingDispatcher
from repro.serving.errors import ArtifactSchemaError, ServingError
from repro.serving.feedback import FeedbackCollector, FeedbackObservation
from repro.serving.inference_plan import InferencePlan, compile_plan
from repro.serving.lifecycle import AdaptationManager, AdaptationOutcome, CRNRetrainer
from repro.serving.pool_index import PoolEncodingIndex
from repro.serving.service import (
    EstimateResult,
    EstimationService,
    RequestOptions,
)
from repro.sql.query import Query

__all__ = ["ServiceStack", "ServingClient", "build_service_stack"]


@dataclass(frozen=True)
class ServiceStack:
    """The wired (but unstarted) core of a deployment.

    What :func:`build_service_stack` hands back: the service plus the shared
    components it was wired from, for callers that need the pieces (the
    client keeps them; the deprecated ``build_crn_service`` returns only
    :attr:`service`).
    """

    service: EstimationService
    estimator: Cnt2CrdEstimator
    featurization_cache: FeaturizationCache
    encoding_cache: EncodingCache
    pool_index: PoolEncodingIndex | None
    inference_plan: InferencePlan | None = None


def build_service_stack(
    config: ServingConfig,
    recorder: EventRecorder | None = None,
    tracer: Tracer | None = None,
) -> ServiceStack:
    """Wire an :class:`EstimationService` exactly as ``config`` describes.

    This is the **single** wiring routine behind both the client and the
    deprecated :func:`repro.serving.build_crn_service` — sharing it is what
    makes the two paths bit-for-bit identical: the caches, the cache-aware
    :class:`repro.core.crn.CRNEstimator`, the pool encoding index, the
    :class:`repro.core.cnt2crd.Cnt2CrdEstimator`, the registry entries, and
    the warm-up all come from here.  ``recorder`` attaches *before* the
    warm-up, so the initial pool-index slab builds are on the record too
    (and ``tracer``, when given, captures them as ``index_build`` spans).
    """
    estimator_config = config.estimator
    featurization_cache = FeaturizationCache(
        config.featurizer, max_entries=config.caches.max_featurization_entries
    )
    encoding_cache = EncodingCache(
        max_entries=config.caches.resolved_encoding_entries()
    )
    crn = CRNEstimator(
        config.model,
        featurization_cache,
        batch_size=estimator_config.batch_size,
        encoding_cache=encoding_cache,
    )
    pool_index = (
        PoolEncodingIndex(config.pool) if config.pool_options.use_index else None
    )
    cnt2crd = Cnt2CrdEstimator(
        crn,
        config.pool,
        final_function=estimator_config.final_function,
        epsilon=estimator_config.epsilon,
        pool_index=pool_index,
    )
    service = EstimationService(
        fallback=(
            estimator_config.fallback_name
            if config.fallback_estimator is not None
            else None
        ),
        featurization_cache=featurization_cache,
        encoding_cache=encoding_cache,
        pool_index=pool_index,
        recorder=recorder,
        tracer=tracer,
    )
    if pool_index is not None:
        pool_index.recorder = recorder
        pool_index.tracer = tracer
    service.register(estimator_config.name, cnt2crd, default=True)
    if config.fallback_estimator is not None:
        service.register(estimator_config.fallback_name, config.fallback_estimator)
    for name, estimator in config.extra_estimators.items():
        service.register(name, estimator)
    plan: InferencePlan | None = None
    if config.inference.mode == "compiled":
        # Compile before warming: warm-time encodings then flow through the
        # plan's frozen encoder weights, and the index builds its slabs in
        # the negotiated layout instead of rebuilding on the first request.
        plan = compile_plan(
            config.model,
            dtype=(
                np.float32
                if config.inference.slab_dtype == "float32"
                else np.float64
            ),
            slab_size=estimator_config.batch_size,
            tolerance=config.inference.tolerance,
        )
        crn.attach_plan(plan)
        if pool_index is not None:
            pool_index.negotiate_dtype(plan.dtype)
        if recorder is not None:
            recorder.emit(
                PlanCompiled(
                    estimator_name=estimator_config.name,
                    generation=service.generation(estimator_config.name),
                    dtype=plan.dtype.name,
                    nodes=plan.num_nodes,
                    constants=plan.num_constants,
                    compile_seconds=plan.compile_seconds,
                )
            )
    if config.pool_options.warm:
        service.warm(entry.query for entry in config.pool)
        if pool_index is not None:
            pool_index.warm(cnt2crd)
    return ServiceStack(
        service=service,
        estimator=cnt2crd,
        featurization_cache=featurization_cache,
        encoding_cache=encoding_cache,
        pool_index=pool_index,
        inference_plan=plan,
    )


class ServingClient:
    """One façade over service + dispatcher + feedback + adaptation.

    Constructing the client wires everything the config enables (eagerly —
    construction errors surface here, not at first request); entering the
    context manager (or using the :meth:`start` classmethod) starts the
    background threads.  All request traffic flows through
    :meth:`estimate` / :meth:`estimate_many` / :meth:`estimate_future`; the
    wired components stay reachable as attributes (:attr:`service`,
    :attr:`dispatcher`, :attr:`collector`, :attr:`manager`,
    :attr:`retrainer`) for operators that need the lower layers.

    Args:
        config: the frozen deployment description.
        _restored_generation: internal — set by :meth:`from_artifact` to
            stamp the snapshot's model generation back into the registry
            before anything else observes it, so provenance is continuous
            across a restart (and ``save_on_build`` does not re-save the
            bundle the client just booted from).
    """

    def __init__(
        self, config: ServingConfig, *, _restored_generation: int | None = None
    ) -> None:
        self.config = config
        self.recorder: EventRecorder | None = None
        self.event_store: EventStore | None = None
        self.tracer: Tracer | None = None
        self.stack: ServiceStack | None = None
        self.service: EstimationService | None = None
        self.collector: FeedbackCollector | None = None
        self.retrainer: CRNRetrainer | None = None
        self.manager: AdaptationManager | None = None
        self.dispatcher: ServingDispatcher | None = None
        self.artifact_store = None
        self.supervisor = None
        self.router = None
        self._state_lock = threading.Lock()
        self._started = False
        self._closed = False
        if config.cluster.enabled:
            self._init_cluster(config, _restored_generation)
            return
        if config.observability.enabled:
            observability = config.observability
            self.event_store = EventStore(observability.sqlite_path or ":memory:")
            self.recorder = EventRecorder(
                store=self.event_store,
                capacity=observability.capacity,
                source=observability.source,
            )
        if config.tracing.enabled:
            # ServingConfig already validated tracing implies observability,
            # so the recorder the tracer sinks through exists here.
            tracing = config.tracing
            self.tracer = Tracer(
                self.recorder,
                sample_every=tracing.sample_every,
                tail_quantile=tracing.tail_quantile,
                min_tail_observations=tracing.min_tail_observations,
            )
        stack = build_service_stack(config, recorder=self.recorder, tracer=self.tracer)
        self.stack = stack
        self.service = stack.service
        if _restored_generation is not None:
            # Before the adaptation manager (which seeds its generation gauge
            # from the registry) or any request can observe generation 1.
            self.service.set_generation(config.estimator.name, _restored_generation)
        if config.feedback.enabled:
            self.collector = FeedbackCollector(
                max_observations=config.feedback.max_observations,
                epsilon=config.feedback.epsilon,
                oracle=config.oracle,
                recorder=self.recorder,
            )
        if config.adaptation.enabled:
            adaptation = config.adaptation
            self.retrainer = CRNRetrainer(
                config.training_result,
                config.database,
                config.pool,
                training_pairs=adaptation.training_pairs,
                incremental_epochs=adaptation.incremental_epochs,
                full_epochs=adaptation.full_epochs,
                seed=adaptation.seed,
            )
            self.manager = AdaptationManager(
                self.service,
                self.collector,
                self.retrainer,
                policy=adaptation.drift_policy(),
                estimator_name=config.estimator.name,
                poll_interval_seconds=adaptation.poll_interval_seconds,
                holdout_size=adaptation.holdout_size,
                accept_ratio=adaptation.accept_ratio,
                max_incremental_failures=adaptation.max_incremental_failures,
                warm_on_swap=adaptation.warm_on_swap,
            )
        if config.dispatcher.enabled:
            self.dispatcher = ServingDispatcher(
                self.service,
                max_batch=config.dispatcher.max_batch,
                max_wait_ms=config.dispatcher.max_wait_ms,
            )
        if config.artifacts.enabled:
            # Imported lazily: repro.artifacts depends on the serving error
            # taxonomy, so a module-level import here would be circular.
            from repro.artifacts.store import ArtifactStore

            self.artifact_store = ArtifactStore(
                config.artifacts.root, recorder=self.recorder
            )
            mapping = config.to_mapping()
            if self.manager is not None and config.artifacts.save_on_promote:
                self.manager.attach_artifact_store(
                    self.artifact_store,
                    mapping,
                    promote_on_save=config.artifacts.promote_on_save,
                )
            if config.artifacts.save_on_build and _restored_generation is None:
                self.artifact_store.save(
                    model=config.model,
                    pool=config.pool,
                    config_mapping=mapping,
                    generation=self.service.generation(config.estimator.name),
                    source="build",
                    pool_index=stack.pool_index,
                    promote=config.artifacts.promote_on_save,
                )

    def _init_cluster(
        self, config: ServingConfig, _restored_generation: int | None
    ) -> None:
        """Wire the cluster-mode front-end: no in-process stack at all.

        The front-end holds only a supervisor (worker processes), a router
        (the request path), an optional read-side handle on the shared
        event store (each worker runs its *own* recorder and flushes into
        it under a per-lifetime source), and the artifact store the workers
        cold-boot from.  ``save_on_build`` persists the build bundle before
        any worker forks, so even a first boot with no promoted generation
        can serve from artifacts on its next restart.
        """
        # Imported lazily: repro.cluster programs against this module, so a
        # module-level import here would be circular.
        from repro.cluster.router import ClusterRouter
        from repro.cluster.supervisor import ClusterSupervisor

        if config.observability.enabled and config.observability.sqlite_path:
            self.event_store = EventStore(config.observability.sqlite_path)
        if config.artifacts.enabled:
            from repro.artifacts.store import ArtifactStore

            self.artifact_store = ArtifactStore(config.artifacts.root)
            if (
                config.artifacts.save_on_build
                and _restored_generation is None
                and self.artifact_store.latest() is None
            ):
                self.artifact_store.save(
                    model=config.model,
                    pool=config.pool,
                    config_mapping=config.to_mapping(),
                    generation=1,
                    source="build",
                    promote=config.artifacts.promote_on_save,
                )
        self.supervisor = ClusterSupervisor(config)
        self.router = ClusterRouter(self.supervisor, config)

    # ------------------------------------------------------------------ #
    # lifecycle

    @classmethod
    def from_artifact(
        cls,
        root: str | os.PathLike,
        *,
        database,
        generation: int | None = None,
        fallback_estimator: Any | None = None,
        extra_estimators: Mapping[str, Any] | None = None,
        training_result: Any | None = None,
        oracle: Any | None = None,
        signatures: Sequence[tuple[tuple[str, str], ...]] | None = None,
        observability_source: str | None = None,
    ) -> "ServingClient":
        """Boot a client cold from a persisted snapshot — no retraining.

        Loads (and checksum-verifies) the bundle from the
        :class:`repro.artifacts.ArtifactStore` at ``root`` — the promoted
        ``latest`` generation by default — and rebuilds the stack around it:
        the CRN's weights are **restored**, the pool is **replayed**
        entry-for-entry in saved order, and the full config round-trips
        through :meth:`ServingConfig.from_mapping` (unknown-field rejection
        intact).  The featurizer, the caches, the encoding index's slabs,
        and the compiled inference plan are **rebuilt** — each is a pure
        function of (weights, pool, database schema), so the rebuilt stack
        serves estimates bit-identical to the client that saved the snapshot
        (pinned by ``benchmarks/bench_cold_start.py``).  The snapshot's
        model generation is stamped back into the registry, so
        :attr:`EstimateResult.model_generation` provenance is continuous
        across the restart and the next adaptation promote advances from it.

        Runtime objects a JSON mapping cannot carry are re-supplied here:

        Args:
            root: the artifact store directory.
            database: the serving snapshot (the featurizer is rebuilt from
                its schema; must be the database the saved model serves).
            generation: boot a specific generation instead of ``latest``.
            fallback_estimator / extra_estimators / oracle: as on
                :class:`ServingConfig`.
            training_result: required to keep a saved
                ``adaptation.enabled=True`` config adapting after the boot
                (retraining fine-tunes from it).  When omitted, adaptation
                is **downgraded to disabled** — recorded on the
                ``artifact_loaded`` event as ``adaptation_downgraded`` —
                rather than failing the boot.
            signatures: restrict the restored pool to these FROM-signatures
                (the cluster worker boot path: each worker restores only its
                shard's buckets, entry-for-entry in saved order).  Forces
                ``cluster.mode`` to ``"local"`` — a worker is itself a
                local-mode stack — and scopes the rebuilt-index consistency
                check to the assigned signatures.
            observability_source: override the saved recorder source (the
                worker boot path passes ``worker-<shard>``); the booted
                generation is suffixed as ``@gen<N>`` exactly like the
                sqlite-store case below.

        Raises:
            ArtifactNotFoundError / ArtifactChecksumError /
            ArtifactSchemaError: the store, the bundle, or its contents are
                missing, corrupt, or inconsistent (including a ``database``
                whose schema does not featurize to the saved vector size,
                and a rebuilt index that does not match the bundle's
                recorded slab metadata).
        """
        from repro.artifacts.store import ArtifactStore

        store = ArtifactStore(root)
        bundle = store.load(generation)
        featurizer = QueryFeaturizer(database)
        if featurizer.vector_size != bundle.model.vector_size:
            raise ArtifactSchemaError(
                f"the supplied database featurizes to vector size "
                f"{featurizer.vector_size}, but the snapshot's model expects "
                f"{bundle.model.vector_size} — wrong database for this bundle"
            )
        mapping = {key: dict(value) for key, value in bundle.config_mapping.items()}
        adaptation_downgraded = False
        if mapping.get("adaptation", {}).get("enabled") and training_result is None:
            # A mapping cannot carry the TrainingResult adaptation fine-tunes
            # from.  Booting read-only beats refusing to boot; the downgrade
            # is on the record (artifact_loaded event) and in the docs.
            mapping["adaptation"]["enabled"] = False
            adaptation_downgraded = True
        # The store being booted from is authoritative, wherever the bundle
        # was saved (a downloaded CI artifact boots against its new path) —
        # and save_on_build must not re-save the bundle just loaded.
        artifacts_section = dict(mapping.get("artifacts", {}))
        artifacts_section["root"] = os.fspath(root)
        mapping["artifacts"] = artifacts_section
        pool = bundle.pool
        assigned: set | None = None
        if signatures is not None:
            # The cluster worker boot path: restore only this shard's
            # buckets (in saved order — slab bit-identity depends on it) and
            # run as a local-mode stack whatever the saved config said.
            from repro.cluster.worker import slice_pool

            assigned = {
                tuple(tuple(pair) for pair in signature)
                for signature in signatures
            }
            pool = slice_pool(pool, sorted(assigned))
            cluster_section = dict(mapping.get("cluster", {}))
            cluster_section["mode"] = "local"
            mapping["cluster"] = cluster_section
        if observability_source is not None:
            observability_override = dict(mapping.get("observability", {}))
            observability_override["source"] = observability_source
            mapping["observability"] = observability_override
        observability_section = mapping.get("observability", {})
        if observability_section.get("enabled") and (
            observability_section.get("sqlite_path")
            or observability_source is not None
        ):
            # The saved config's recorder identity belongs to the client that
            # wrote the snapshot.  A restored client flushing into the same
            # persistent store under the same source would have its events
            # silently deduplicated away (the store dedups on
            # ``(source, sequence)`` and sequences restart at boot) — the
            # restart would be invisible in the provenance views.  Suffix the
            # booted generation so both lifetimes coexist in one store.
            source = observability_section.get("source", "serving")
            suffix = f"@gen{bundle.manifest.generation}"
            if not source.endswith(suffix):
                section = dict(observability_section)
                section["source"] = source + suffix
                mapping["observability"] = section
        config = ServingConfig.from_mapping(
            mapping,
            model=bundle.model,
            featurizer=featurizer,
            pool=pool,
            fallback_estimator=fallback_estimator,
            extra_estimators=extra_estimators or {},
            training_result=training_result,
            database=database,
            oracle=oracle,
        )
        client = cls(config, _restored_generation=bundle.manifest.generation)
        if (
            client.stack is not None
            and client.stack.pool_index is not None
            and config.pool_options.warm
            and bundle.index_meta.get("signatures")
        ):
            expected = sum(
                int(entry["rows"])
                for entry in bundle.index_meta["signatures"]
                if assigned is None
                or tuple(tuple(pair) for pair in entry["signature"]) in assigned
            )
            actual = len(client.stack.pool_index)
            if actual != expected:
                raise ArtifactSchemaError(
                    f"rebuilt pool encoding index holds {actual} slab rows, "
                    f"bundle metadata records {expected} — the snapshot is "
                    f"internally inconsistent"
                )
        if client.recorder is not None:
            client.recorder.emit(
                ArtifactLoaded(
                    generation=bundle.manifest.generation,
                    source=bundle.manifest.source,
                    adaptation_downgraded=adaptation_downgraded,
                )
            )
        return client

    @classmethod
    def start(cls, config: ServingConfig) -> "ServingClient":
        """Build **and start** a client in one call.

        The caller owns the shutdown (``client.shutdown()``, or use the
        instance as a context manager instead — ``with ServingClient(config)
        as client:`` — to bracket both).
        """
        return cls(config).__enter__()

    def __enter__(self) -> "ServingClient":
        with self._state_lock:
            if self._closed:
                raise ServingError("serving client has been shut down")
            if not self._started:
                if self.router is not None:
                    # Cluster mode: every worker must be ready (handshake
                    # complete) before the router can route to it.
                    self.supervisor.start()
                    self.router.start()
                else:
                    # Requests must be servable before the adaptation
                    # worker's first evaluation could decide to swap
                    # anything.
                    if self.dispatcher is not None:
                        self.dispatcher.start()
                    if self.manager is not None:
                        self.manager.start()
                self._started = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def shutdown(self, wait: bool = True) -> None:
        """Stop the stack in reverse start order.  Idempotent.

        The adaptation worker stops first (its current cycle completes; no
        new swap begins mid-drain), then the dispatcher stops accepting and
        drains every already-accepted request before returning (with
        ``wait=True``, the default).
        """
        with self._state_lock:
            self._closed = True
        if self.router is not None:
            # The request path stops before the workers drain, mirroring
            # the local ordering (dispatcher before service teardown).
            self.router.stop()
        if self.supervisor is not None:
            self.supervisor.stop()
        if self.manager is not None:
            self.manager.stop(wait=wait)
        if self.dispatcher is not None:
            self.dispatcher.shutdown(wait=wait)
        # Final flush *after* the workers stop: every event they emitted is
        # in the store before shutdown returns.  The store itself stays open
        # — post-mortem queries (swap history, tail latency) are the whole
        # point; callers close it via ``client.event_store.close()`` (or use
        # the store as a context manager) when done.
        if self.recorder is not None:
            self.recorder.flush()

    @property
    def started(self) -> bool:
        """Whether the background threads have been started."""
        with self._state_lock:
            return self._started and not self._closed

    def _ensure_open(self) -> None:
        """Refuse request traffic after :meth:`shutdown`.

        Without this, a shut-down client would silently keep serving the
        synchronous path while its dispatcher refuses — an operator stopping
        traffic must stop *all* of it.
        """
        with self._state_lock:
            if self._closed:
                raise ServingError(
                    "serving client has been shut down; no new requests accepted"
                )

    # ------------------------------------------------------------------ #
    # requests

    def estimate(
        self, query: Query, options: RequestOptions | None = None
    ) -> EstimateResult:
        """Estimate one query.

        On a started client with a dispatcher, the request coalesces with
        concurrent callers' (honoring ``options.timeout_seconds`` — a
        :class:`repro.serving.DeadlineExceededError` abandons it); otherwise
        it is served synchronously on the calling thread.  Either path is
        bit-for-bit identical.
        """
        # The closed check and the routing decision are one lock acquisition:
        # a shutdown() racing in between must yield a refusal (here, or from
        # the dispatcher's own closed state), never a silent downgrade onto
        # the synchronous path of a closed client.
        with self._state_lock:
            if self._closed:
                raise ServingError(
                    "serving client has been shut down; no new requests accepted"
                )
            if self.router is not None and not self._started:
                raise ServingError(
                    "cluster mode serves only from a started client (use the "
                    "context manager or ServingClient.start): the workers "
                    "spawn on start"
                )
            use_dispatcher = self._started and self.dispatcher is not None
        if self.router is not None:
            return self.router.estimate(query, options=options)
        if use_dispatcher:
            return self.dispatcher.estimate(query, options=options)
        if options is not None and options.timeout_seconds is not None:
            raise ServingError(
                "per-request deadlines need the dispatcher: enable "
                "ServingConfig.dispatcher and start the client"
            )
        return self.service.submit(query, options=options)

    def estimate_many(
        self, queries: Sequence[Query], options: RequestOptions | None = None
    ) -> list[EstimateResult]:
        """Estimate a caller-side burst as one planned, deduplicated batch.

        The batch goes straight to :meth:`EstimationService.submit_batch` —
        it is already a batch, so there is nothing for the dispatcher to
        coalesce.  Deadlines are not supported here (the batch runs on the
        calling thread); submit through :meth:`estimate_future` to bound
        individual waits.  A request-level failure (e.g.
        ``fallback_policy="none"`` meeting an unmatched query) fails the
        whole batch, like any no-fallback ``submit_batch``; use
        :meth:`estimate` / :meth:`estimate_future` for per-request isolation.
        """
        self._ensure_open()
        if options is not None and options.timeout_seconds is not None:
            raise ServingError(
                "estimate_many serves synchronously and cannot honor "
                "timeout_seconds; use estimate()/estimate_future() per query"
            )
        if self.router is not None:
            if not self.started:
                raise ServingError(
                    "cluster mode serves only from a started client (use the "
                    "context manager or ServingClient.start): the workers "
                    "spawn on start"
                )
            return self.router.estimate_many(list(queries), options=options)
        return self.service.submit_batch(list(queries), options=options)

    def estimate_future(
        self, query: Query, options: RequestOptions | None = None
    ) -> Future:
        """Enqueue one request on the dispatcher; returns a future.

        The future resolves with the request's
        :class:`repro.serving.EstimateResult` (or its per-request error).
        Requires a started client with the dispatcher enabled.
        """
        self._ensure_open()
        if self.router is not None:
            if not self.started:
                raise ServingError(
                    "cluster mode serves only from a started client (use the "
                    "context manager or ServingClient.start): the workers "
                    "spawn on start"
                )
            return self.router.estimate_future(query, options=options)
        if self.dispatcher is None:
            raise ServingError(
                "estimate_future needs the dispatcher: enable "
                "ServingConfig.dispatcher"
            )
        if not self.started:
            raise ServingError(
                "estimate_future needs a started client (use the context "
                "manager or ServingClient.start)"
            )
        return self.dispatcher.submit(query, options=options)

    def warm(self, queries: Iterable[Query] | None = None) -> None:
        """Pre-featurize/encode ``queries`` (the whole pool when omitted).

        A no-op in cluster mode: each worker warms its own shard at boot
        (the warm flag rides in the config the workers build from).
        """
        if self.router is not None:
            return
        if queries is not None:
            self.service.warm(queries)
            return
        self.service.warm(entry.query for entry in self.config.pool)
        if self.stack.pool_index is not None:
            self.stack.pool_index.warm(self.stack.estimator)

    # ------------------------------------------------------------------ #
    # feedback and adaptation

    def record_feedback(
        self, result: EstimateResult, true_cardinality: float | None = None
    ) -> FeedbackObservation:
        """Close the loop on a served estimate.

        Records ``(query, estimate, truth)`` into the feedback window —
        ``true_cardinality`` when supplied, the config's ``oracle``
        otherwise.  Requires ``feedback.enabled``.
        """
        if self.collector is None:
            raise ServingError(
                "feedback is not enabled; set ServingConfig.feedback.enabled"
            )
        return self.collector.record_served(result, true_cardinality)

    def trigger_adaptation(
        self, wait: bool = True, timeout: float | None = None
    ) -> AdaptationOutcome | None:
        """Force one adaptation cycle (bypassing policy, cooldown, pause).

        Requires ``adaptation.enabled``; see
        :meth:`repro.serving.AdaptationManager.trigger` for semantics.
        """
        if self.manager is None:
            raise ServingError(
                "adaptation is not enabled; set ServingConfig.adaptation.enabled "
                "(plus feedback, training_result, and database)"
            )
        return self.manager.trigger(wait=wait, timeout=timeout)

    # ------------------------------------------------------------------ #
    # observability

    def stats(self) -> dict[str, float]:
        """One merged snapshot across every enabled component.

        Service counters and cache/pool-index gauges, dispatcher counters,
        lifecycle counters, and a ``feedback_*`` block — the union renders
        directly with :func:`repro.evaluation.format_service_stats`.

        In cluster mode the snapshot covers the front-end (router counters,
        supervisor worker states) plus the shared event store; per-worker
        service/cache counters live in each worker's own recorder and land
        in the store under that worker's source.
        """
        if self.router is not None:
            merged: dict[str, float] = {}
            merged.update(self.router.stats_snapshot())
            if self.supervisor is not None:
                merged.update(self.supervisor.stats_snapshot())
            if self.event_store is not None:
                merged.update(self.event_store.stats_snapshot())
            return merged
        merged = self.service.stats_snapshot()
        if self.dispatcher is not None:
            merged.update(self.dispatcher.stats.snapshot())
        if self.manager is not None:
            merged.update(self.manager.stats.snapshot())
        if self.collector is not None:
            summary = self.collector.summary()
            merged["feedback_observations"] = float(summary.count)
            merged["feedback_p50_q_error"] = summary.p50
            merged["feedback_p90_q_error"] = summary.p90
        if self.tracer is not None:
            merged.update(self.tracer.stats_snapshot())
        if self.recorder is not None:
            # Sink buffered events first, so the store-backed gauges below
            # (and any follow-up view queries) see everything emitted so far.
            self.recorder.flush()
            merged.update(self.recorder.stats_snapshot())
        if self.event_store is not None:
            merged.update(self.event_store.stats_snapshot())
        return merged
