"""The Cnt2Crd transformation and the cardinality estimation technique (Section 5).

Given a containment rate estimator and a queries pool of previously executed
queries with known cardinalities, a new query's cardinality is estimated as

    |Qnew| ≈ F over matching pool queries Qold of
             (Qold ⊂% Qnew) / (Qnew ⊂% Qold) * |Qold|

skipping pool queries for which the denominator rate is (close to) zero, and
collapsing the per-pool-query estimates with the final function ``F``
(median by default, Section 5.3.1).

The estimation pipeline is factored into composable steps —
:meth:`Cnt2CrdEstimator.eligible_entries` →
:meth:`Cnt2CrdEstimator.containment_pairs` → (batched containment rates) →
:meth:`Cnt2CrdEstimator.estimates_from_rates` →
:meth:`Cnt2CrdEstimator.collapse` — so callers that batch the rate
computation across *many* concurrent requests (the
:class:`repro.serving.BatchPlanner`) reuse exactly the per-request logic and
produce bit-for-bit identical estimates.

Recovering from :class:`NoMatchingPoolQueryError`
-------------------------------------------------

The technique can only score a new query against pool queries that share its
FROM clause, so a query over a never-seen table combination has no anchor and
:meth:`Cnt2CrdEstimator.estimate_cardinality` raises
:class:`NoMatchingPoolQueryError`.  Three recovery strategies, in decreasing
order of fidelity:

1. **Seed the pool with frame queries** (Section 5.2): add the predicate-free
   query ``SELECT * FROM <tables> WHERE <joins>`` for every FROM/join
   combination the workload can produce
   (:meth:`repro.sql.query.Query.without_predicates`, or
   ``build_queries_pool_queries(..., include_frames=True)``).  Every incoming
   query then has at least one match, and the error disappears entirely.
2. **Configure a fallback estimator**: pass ``fallback=`` (e.g. the
   PostgreSQL-style baseline, or the base model ``M`` when building
   ``Improved M``) and the estimator silently delegates unmatched queries
   instead of raising.
3. **Catch and route at the service layer**: :class:`repro.serving.EstimationService`
   registers several estimators and, when the primary raises this error,
   re-routes the request to a configured fallback entry and flags the served
   result, which keeps the error out of request handlers while still making
   the degraded path observable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.estimators import CardinalityEstimator, ContainmentEstimator
from repro.core.final_functions import FinalFunction, get_final_function
from repro.core.queries_pool import PoolEntry, QueriesPool
from repro.sql.query import Query


class NoMatchingPoolQueryError(LookupError):
    """Raised when no pool query can be used to estimate a query's cardinality.

    This happens when the pool has no entry with the query's FROM clause, or
    when every matching entry's ``Qnew ⊂% Qold`` rate is below the epsilon
    threshold.  Callers can avoid it by seeding the pool with predicate-free
    "frame" queries (Section 5.2) or by configuring a fallback estimator.
    """


@dataclass(frozen=True)
class PoolEstimate:
    """One per-pool-query estimate produced by the Cnt2Crd technique."""

    pool_entry: PoolEntry
    x_rate: float
    y_rate: float
    estimate: float


class Cnt2CrdEstimator(CardinalityEstimator):
    """A cardinality estimator built from a containment estimator and a queries pool.

    Args:
        containment_estimator: the model used for both containment directions.
        pool: the queries pool of previously executed queries.
        final_function: the function ``F`` collapsing per-pool-query estimates
            (a name from :mod:`repro.core.final_functions` or a callable).
        epsilon: pool queries whose ``Qnew ⊂% Qold`` rate is at most this
            threshold are skipped (the paper's ``y_rate <= epsilon`` guard).
            The default treats rates below 0.1% as zero: dividing by a smaller
            learned rate would amplify its relative error into an arbitrarily
            large cardinality estimate.
        fallback: optional cardinality estimator used when no pool query
            matches; when omitted, :class:`NoMatchingPoolQueryError` is raised.
    """

    def __init__(
        self,
        containment_estimator: ContainmentEstimator,
        pool: QueriesPool,
        final_function: str | FinalFunction = "median",
        epsilon: float = 1e-3,
        fallback: CardinalityEstimator | None = None,
    ) -> None:
        self.containment_estimator = containment_estimator
        self.pool = pool
        self.final_function = (
            get_final_function(final_function) if isinstance(final_function, str) else final_function
        )
        self.epsilon = epsilon
        self.fallback = fallback
        self.name = f"Cnt2Crd({containment_estimator.name})"

    # ------------------------------------------------------------------ #
    # estimation

    def eligible_entries(self, query: Query) -> list[PoolEntry]:
        """Matching pool entries that can contribute an estimate for ``query``.

        A pool query with an empty result cannot contribute: its estimate is
        always x/y * 0 = 0, and with exact rates the y_rate guard would skip
        it anyway (Qnew ⊂% Qold = 0 when Qold is empty).
        """
        return [
            entry for entry in self.pool.matching_entries(query) if entry.cardinality > 0
        ]

    @staticmethod
    def containment_pairs(query: Query, entries: Sequence[PoolEntry]) -> list[tuple[Query, Query]]:
        """The ordered query pairs whose rates the technique needs for ``query``.

        For each entry the pair ``(Qold, Qnew)`` (the x_rate) is followed by
        ``(Qnew, Qold)`` (the y_rate); :meth:`estimates_from_rates` expects
        rates in exactly this order.
        """
        pairs: list[tuple[Query, Query]] = []
        for entry in entries:
            pairs.append((entry.query, query))  # x_rate = Qold ⊂% Qnew
            pairs.append((query, entry.query))  # y_rate = Qnew ⊂% Qold
        return pairs

    def estimates_from_rates(
        self, query: Query, entries: Sequence[PoolEntry], rates: Sequence[float]
    ) -> list[PoolEstimate]:
        """Turn pre-computed containment rates back into per-pool-query estimates.

        Args:
            query: the incoming query.
            entries: the eligible entries the rates were computed for.
            rates: the rates of :meth:`containment_pairs`'s pairs, in order.
        """
        if len(rates) != 2 * len(entries):
            raise ValueError(
                f"expected {2 * len(entries)} rates for {len(entries)} entries, got {len(rates)}"
            )
        estimates: list[PoolEstimate] = []
        for index, entry in enumerate(entries):
            x_rate = rates[2 * index]
            y_rate = rates[2 * index + 1]
            if y_rate <= self.epsilon:
                continue
            estimates.append(
                PoolEstimate(
                    pool_entry=entry,
                    x_rate=x_rate,
                    y_rate=y_rate,
                    estimate=x_rate / y_rate * entry.cardinality,
                )
            )
        return estimates

    def pool_estimates(self, query: Query) -> list[PoolEstimate]:
        """The per-pool-query estimates for ``query`` (the technique's inner loop).

        Containment rates for all matching pool queries are estimated in one
        batched call so learned estimators can vectorize the work.
        """
        entries = self.eligible_entries(query)
        if not entries:
            return []
        rates = self.containment_estimator.estimate_containments(
            self.containment_pairs(query, entries)
        )
        return self.estimates_from_rates(query, entries, rates)

    def collapse(self, estimates: Sequence[PoolEstimate]) -> float:
        """Collapse per-pool-query estimates with the final function ``F``.

        An empty list means matching pool queries existed but the new query
        was estimated to be contained ~0% in all of them, which (with frame
        queries in the pool) only happens when the new query's result is
        empty — so the collapsed estimate is 0.
        """
        if not estimates:
            return 0.0
        return float(self.final_function([estimate.estimate for estimate in estimates]))

    def fallback_estimate(self, query: Query) -> float:
        """Estimate a query with no matching pool entry (or raise).

        See the module docstring for the available recovery strategies.
        """
        if self.fallback is not None:
            return self.fallback.estimate_cardinality(query)
        raise NoMatchingPoolQueryError(
            f"no pool query shares the FROM clause {query.from_signature()}"
        )

    def estimate_cardinality(self, query: Query) -> float:
        if not self.pool.has_match(query):
            return self.fallback_estimate(query)
        return self.collapse(self.pool_estimates(query))


def cnt2crd(
    containment_estimator: ContainmentEstimator,
    pool: QueriesPool,
    final_function: str | FinalFunction = "median",
    epsilon: float = 1e-3,
    fallback: CardinalityEstimator | None = None,
) -> Cnt2CrdEstimator:
    """Functional alias for :class:`Cnt2CrdEstimator` (matches the paper's notation)."""
    return Cnt2CrdEstimator(
        containment_estimator,
        pool,
        final_function=final_function,
        epsilon=epsilon,
        fallback=fallback,
    )
