"""The Cnt2Crd transformation and the cardinality estimation technique (Section 5).

Given a containment rate estimator and a queries pool of previously executed
queries with known cardinalities, a new query's cardinality is estimated as

    |Qnew| ≈ F over matching pool queries Qold of
             (Qold ⊂% Qnew) / (Qnew ⊂% Qold) * |Qold|

skipping pool queries for which the denominator rate is (close to) zero, and
collapsing the per-pool-query estimates with the final function ``F``
(median by default, Section 5.3.1).

The estimation pipeline is factored into composable steps —
:meth:`Cnt2CrdEstimator.eligible_entries` →
:meth:`Cnt2CrdEstimator.containment_pairs` → (batched containment rates) →
:meth:`Cnt2CrdEstimator.estimates_from_rates` →
:meth:`Cnt2CrdEstimator.collapse` — so callers that batch the rate
computation across *many* concurrent requests (the
:class:`repro.serving.BatchPlanner`) reuse exactly the per-request logic and
produce bit-for-bit identical estimates.

Recovering from :class:`NoMatchingPoolQueryError`
-------------------------------------------------

The technique can only score a new query against pool queries that share its
FROM clause, so a query over a never-seen table combination has no anchor and
:meth:`Cnt2CrdEstimator.estimate_cardinality` raises
:class:`NoMatchingPoolQueryError`.  Three recovery strategies, in decreasing
order of fidelity:

1. **Seed the pool with frame queries** (Section 5.2): add the predicate-free
   query ``SELECT * FROM <tables> WHERE <joins>`` for every FROM/join
   combination the workload can produce
   (:meth:`repro.sql.query.Query.without_predicates`, or
   ``build_queries_pool_queries(..., include_frames=True)``).  Every incoming
   query then has at least one match, and the error disappears entirely.
2. **Configure a fallback estimator**: pass ``fallback=`` (e.g. the
   PostgreSQL-style baseline, or the base model ``M`` when building
   ``Improved M``) and the estimator silently delegates unmatched queries
   instead of raising.
3. **Catch and route at the service layer**: :class:`repro.serving.EstimationService`
   registers several estimators and, when the primary raises this error,
   re-routes the request to a configured fallback entry and flags the served
   result, which keeps the error out of request handlers while still making
   the degraded path observable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.estimators import CardinalityEstimator, ContainmentEstimator
from repro.core.final_functions import FinalFunction, get_final_function
from repro.core.queries_pool import PoolEntry, QueriesPool
from repro.sql.query import Query


class NoMatchingPoolQueryError(LookupError):
    """Raised when no pool query shares the FROM clause of the query to estimate.

    Callers can avoid it by seeding the pool with predicate-free "frame"
    queries (Section 5.2) or by configuring a fallback estimator.  The
    related degenerate case — matching entries exist but every one is
    filtered by the ``y_rate <= epsilon`` guard — does not raise: it routes
    to the configured fallback when one exists and collapses to 0 otherwise
    (see :meth:`Cnt2CrdEstimator.estimate_cardinality`).
    """


@dataclass(frozen=True)
class PoolEstimate:
    """One per-pool-query estimate produced by the Cnt2Crd technique."""

    pool_entry: PoolEntry
    x_rate: float
    y_rate: float
    estimate: float


class Cnt2CrdEstimator(CardinalityEstimator):
    """A cardinality estimator built from a containment estimator and a queries pool.

    Args:
        containment_estimator: the model used for both containment directions.
        pool: the queries pool of previously executed queries.
        final_function: the function ``F`` collapsing per-pool-query estimates
            (a name from :mod:`repro.core.final_functions` or a callable).
        epsilon: pool queries whose ``Qnew ⊂% Qold`` rate is at most this
            threshold are skipped (the paper's ``y_rate <= epsilon`` guard).
            The default treats rates below 0.1% as zero: dividing by a smaller
            learned rate would amplify its relative error into an arbitrarily
            large cardinality estimate.
        fallback: optional cardinality estimator used when no pool query
            can contribute an estimate — the FROM clause matches nothing, or
            every matching entry was filtered by the epsilon guard; when
            omitted, :class:`NoMatchingPoolQueryError` is raised.
        pool_index: optional :class:`repro.serving.PoolEncodingIndex`.  When
            it can serve a query (CRN containment model, bound owner,
            matching pool), :meth:`pool_estimates` scores the whole matching
            bucket through pre-built encoding matrices instead of per-pair
            dict lookups — bit-for-bit identical, much faster on large
            pools; otherwise the legacy per-pair path runs unchanged.
    """

    def __init__(
        self,
        containment_estimator: ContainmentEstimator,
        pool: QueriesPool,
        final_function: str | FinalFunction = "median",
        epsilon: float = 1e-3,
        fallback: CardinalityEstimator | None = None,
        pool_index=None,
    ) -> None:
        self.containment_estimator = containment_estimator
        self.pool = pool
        self.final_function = (
            get_final_function(final_function) if isinstance(final_function, str) else final_function
        )
        self.epsilon = epsilon
        self.fallback = fallback
        self.pool_index = pool_index
        if pool_index is not None:
            # Index rows are a function of the containment model's weights;
            # binding on attach mirrors the EncodingCache contract (the
            # attribute is duck-typed so core never imports the serving layer).
            model = getattr(containment_estimator, "model", None)
            bind = getattr(pool_index, "bind", None)
            if model is not None and bind is not None:
                bind(model)
        self.name = f"Cnt2Crd({containment_estimator.name})"

    # ------------------------------------------------------------------ #
    # estimation

    def eligible_entries(self, query: Query) -> list[PoolEntry]:
        """Matching pool entries that can contribute an estimate for ``query``.

        A pool query with an empty result cannot contribute: its estimate is
        always x/y * 0 = 0, and with exact rates the y_rate guard would skip
        it anyway (Qnew ⊂% Qold = 0 when Qold is empty).
        """
        return [
            entry for entry in self.pool.matching_entries(query) if entry.cardinality > 0
        ]

    @staticmethod
    def containment_pairs(query: Query, entries: Sequence[PoolEntry]) -> list[tuple[Query, Query]]:
        """The ordered query pairs whose rates the technique needs for ``query``.

        For each entry the pair ``(Qold, Qnew)`` (the x_rate) is followed by
        ``(Qnew, Qold)`` (the y_rate); :meth:`estimates_from_rates` expects
        rates in exactly this order.
        """
        pairs: list[tuple[Query, Query]] = []
        for entry in entries:
            pairs.append((entry.query, query))  # x_rate = Qold ⊂% Qnew
            pairs.append((query, entry.query))  # y_rate = Qnew ⊂% Qold
        return pairs

    def estimates_from_rates(
        self, query: Query, entries: Sequence[PoolEntry], rates: Sequence[float]
    ) -> list[PoolEstimate]:
        """Turn pre-computed containment rates back into per-pool-query estimates.

        This is the observability-friendly form (each surviving entry's rates
        travel with its estimate); hot paths that only need the estimate
        *values* use the vectorized :meth:`estimate_values_from_rates`, which
        is bit-for-bit equivalent.

        Args:
            query: the incoming query.
            entries: the eligible entries the rates were computed for.
            rates: the rates of :meth:`containment_pairs`'s pairs, in order.
        """
        if len(rates) != 2 * len(entries):
            raise ValueError(
                f"expected {2 * len(entries)} rates for {len(entries)} entries, got {len(rates)}"
            )
        estimates: list[PoolEstimate] = []
        for index, entry in enumerate(entries):
            x_rate = rates[2 * index]
            y_rate = rates[2 * index + 1]
            if y_rate <= self.epsilon:
                continue
            estimates.append(
                PoolEstimate(
                    pool_entry=entry,
                    x_rate=x_rate,
                    y_rate=y_rate,
                    estimate=x_rate / y_rate * entry.cardinality,
                )
            )
        return estimates

    def estimate_values_from_rates(
        self,
        entries: Sequence[PoolEntry],
        rates: Sequence[float],
        cardinalities: np.ndarray | None = None,
    ) -> np.ndarray:
        """The per-entry estimate *values* surviving the epsilon guard, vectorized.

        Bit-for-bit equal to ``[e.estimate for e in estimates_from_rates(...)]``:
        ``x / y * cardinality`` runs elementwise in float64 (identical IEEE
        operations to the scalar loop), and the guard keeps exactly the
        entries the scalar ``y_rate <= epsilon`` test would keep — including
        its NaN behaviour (a NaN rate is *kept*, both ways).  On a
        2000-entry bucket this replaces thousands of Python loop iterations
        and :class:`PoolEstimate` allocations per request with four array
        operations.

        Args:
            entries: the eligible entries the rates were computed for.
            rates: the :meth:`containment_pairs`-ordered rates.
            cardinalities: optional precomputed ``(len(entries),)`` float64
                entry cardinalities, row-aligned with ``entries`` (the pool
                index keeps one per slab so the per-request path performs no
                Python iteration over the entries at all).
        """
        values = np.asarray(rates, dtype=np.float64)
        if values.shape[0] != 2 * len(entries):
            raise ValueError(
                f"expected {2 * len(entries)} rates for {len(entries)} entries, "
                f"got {values.shape[0]}"
            )
        x_rates = values[0::2]
        y_rates = values[1::2]
        keep = ~(y_rates <= self.epsilon)  # NOT (y <= eps): NaN is kept, as in the scalar guard
        if cardinalities is None:
            cardinalities = np.fromiter(
                (entry.cardinality for entry in entries),
                dtype=np.float64,
                count=len(entries),
            )
        return x_rates[keep] / y_rates[keep] * cardinalities[keep]

    def _indexed_rates(self, query: Query):
        """Resolve ``query`` through the pool index and score its slab.

        The single owner of the resolve-or-fall-back contract, shared by the
        observability path (:meth:`pool_estimates`) and the value-level hot
        path (:meth:`_estimate_values`) so they cannot drift apart.  Returns
        ``(slab, rates)`` — rates empty when the bucket has no eligible
        entries — or ``None`` when the request must take the legacy per-pair
        path (no index, fenced owner, foreign pool, non-CRN containment).
        """
        if self.pool_index is None:
            return None
        resolved = self.pool_index.resolve(self, query)
        if resolved is None:
            return None
        if not resolved.entries:
            return resolved, np.empty(0, dtype=np.float64)
        # Prefer the slab-aware scoring call: a float32 inference plan then
        # consumes the slab's pre-cast mirrors instead of re-downcasting the
        # float64 rows per request.  Duck-typed for non-CRN containment
        # estimators (resolve already fenced those out, but stay defensive).
        against_slab = getattr(self.containment_estimator, "rates_against_slab", None)
        if against_slab is not None:
            return resolved, against_slab(query, resolved)
        rates = self.containment_estimator.rates_against_pool(
            query, resolved.first, resolved.second
        )
        return resolved, rates

    def pool_estimates(self, query: Query) -> list[PoolEstimate]:
        """The per-pool-query estimates for ``query`` (the technique's inner loop).

        With a usable :attr:`pool_index` the whole matching bucket is scored
        against its pre-built encoding matrices (no per-pair Python work);
        otherwise containment rates for all matching pool queries are
        estimated in one batched per-pair call.  Both paths produce
        bit-for-bit identical estimates.
        """
        indexed = self._indexed_rates(query)
        if indexed is not None:
            slab, rates = indexed
            if not slab.entries:
                return []
            return self.estimates_from_rates(query, slab.entries, rates.tolist())
        entries = self.eligible_entries(query)
        if not entries:
            return []
        rates = self.containment_estimator.estimate_containments(
            self.containment_pairs(query, entries)
        )
        return self.estimates_from_rates(query, entries, rates)

    def collapse(self, estimates: Sequence[PoolEstimate]) -> float:
        """Collapse per-pool-query estimates with the final function ``F``.

        An empty list collapses to 0: with *exact* rates (or frame queries
        in the pool) matched-but-all-filtered only happens when the new
        query's result really is empty.  With learned rates that zero can be
        spurious, which is why :meth:`estimate_cardinality` routes the empty
        case to the configured :attr:`fallback` first and only collapses to
        0 when no fallback exists.
        """
        if not estimates:
            return 0.0
        return float(self.final_function([estimate.estimate for estimate in estimates]))

    def collapse_values(self, values: np.ndarray) -> float:
        """:meth:`collapse` over plain estimate values (the vectorized path).

        Bit-for-bit equal to ``collapse(estimates_from_rates(...))`` for the
        matching values: the final function sees the identical list of
        floats either way.
        """
        if values.size == 0:
            return 0.0
        return float(self.final_function(values.tolist()))

    def fallback_estimate(self, query: Query) -> float:
        """Estimate a query with no matching pool entry (or raise).

        See the module docstring for the available recovery strategies.
        """
        if self.fallback is not None:
            return self.fallback.estimate_cardinality(query)
        raise NoMatchingPoolQueryError(
            f"no pool query shares the FROM clause {query.from_signature()}"
        )

    def _estimate_values(self, query: Query) -> np.ndarray:
        """The surviving per-entry estimate values for ``query`` (fast inner loop).

        Value-level twin of :meth:`pool_estimates` — indexed when the pool
        index can serve, per-pair otherwise, vectorized guard either way —
        producing exactly the values :meth:`pool_estimates` would carry.
        """
        indexed = self._indexed_rates(query)
        if indexed is not None:
            slab, rates = indexed
            if not slab.entries:
                return np.empty(0, dtype=np.float64)
            return self.estimate_values_from_rates(
                slab.entries, rates, cardinalities=slab.cardinalities
            )
        entries = self.eligible_entries(query)
        if not entries:
            return np.empty(0, dtype=np.float64)
        rates = self.containment_estimator.estimate_containments(
            self.containment_pairs(query, entries)
        )
        return self.estimate_values_from_rates(entries, rates)

    def estimate_cardinality(self, query: Query) -> float:
        if not self.pool.has_match(query):
            return self.fallback_estimate(query)
        values = self._estimate_values(query)
        if values.size == 0 and self.fallback is not None:
            # Matched, but every eligible entry was filtered by the epsilon
            # guard (or every match had an empty result).  A learned rate
            # model estimating ~0 containment against every matching entry
            # does not reliably mean "empty result" — collapsing to 0.0 here
            # would silently bypass the configured fallback and emit a
            # spurious zero with unbounded q-error.  Without a fallback the
            # legacy collapse-to-0 stands: it is exactly right for exact
            # rates and frame-seeded pools, and there is no better answer.
            return self.fallback.estimate_cardinality(query)
        return self.collapse_values(values)


def cnt2crd(
    containment_estimator: ContainmentEstimator,
    pool: QueriesPool,
    final_function: str | FinalFunction = "median",
    epsilon: float = 1e-3,
    fallback: CardinalityEstimator | None = None,
    pool_index=None,
) -> Cnt2CrdEstimator:
    """Functional alias for :class:`Cnt2CrdEstimator` (matches the paper's notation)."""
    return Cnt2CrdEstimator(
        containment_estimator,
        pool,
        final_function=final_function,
        epsilon=epsilon,
        fallback=fallback,
        pool_index=pool_index,
    )
