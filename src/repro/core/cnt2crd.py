"""The Cnt2Crd transformation and the cardinality estimation technique (Section 5).

Given a containment rate estimator and a queries pool of previously executed
queries with known cardinalities, a new query's cardinality is estimated as

    |Qnew| ≈ F over matching pool queries Qold of
             (Qold ⊂% Qnew) / (Qnew ⊂% Qold) * |Qold|

skipping pool queries for which the denominator rate is (close to) zero, and
collapsing the per-pool-query estimates with the final function ``F``
(median by default, Section 5.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.estimators import CardinalityEstimator, ContainmentEstimator
from repro.core.final_functions import FinalFunction, get_final_function
from repro.core.queries_pool import PoolEntry, QueriesPool
from repro.sql.query import Query


class NoMatchingPoolQueryError(LookupError):
    """Raised when no pool query can be used to estimate a query's cardinality.

    This happens when the pool has no entry with the query's FROM clause, or
    when every matching entry's ``Qnew ⊂% Qold`` rate is below the epsilon
    threshold.  Callers can avoid it by seeding the pool with predicate-free
    "frame" queries (Section 5.2) or by configuring a fallback estimator.
    """


@dataclass(frozen=True)
class PoolEstimate:
    """One per-pool-query estimate produced by the Cnt2Crd technique."""

    pool_entry: PoolEntry
    x_rate: float
    y_rate: float
    estimate: float


class Cnt2CrdEstimator(CardinalityEstimator):
    """A cardinality estimator built from a containment estimator and a queries pool.

    Args:
        containment_estimator: the model used for both containment directions.
        pool: the queries pool of previously executed queries.
        final_function: the function ``F`` collapsing per-pool-query estimates
            (a name from :mod:`repro.core.final_functions` or a callable).
        epsilon: pool queries whose ``Qnew ⊂% Qold`` rate is at most this
            threshold are skipped (the paper's ``y_rate <= epsilon`` guard).
            The default treats rates below 0.1% as zero: dividing by a smaller
            learned rate would amplify its relative error into an arbitrarily
            large cardinality estimate.
        fallback: optional cardinality estimator used when no pool query
            matches; when omitted, :class:`NoMatchingPoolQueryError` is raised.
    """

    def __init__(
        self,
        containment_estimator: ContainmentEstimator,
        pool: QueriesPool,
        final_function: str | FinalFunction = "median",
        epsilon: float = 1e-3,
        fallback: CardinalityEstimator | None = None,
    ) -> None:
        self.containment_estimator = containment_estimator
        self.pool = pool
        self.final_function = (
            get_final_function(final_function) if isinstance(final_function, str) else final_function
        )
        self.epsilon = epsilon
        self.fallback = fallback
        self.name = f"Cnt2Crd({containment_estimator.name})"

    # ------------------------------------------------------------------ #
    # estimation

    def pool_estimates(self, query: Query) -> list[PoolEstimate]:
        """The per-pool-query estimates for ``query`` (the technique's inner loop).

        Containment rates for all matching pool queries are estimated in one
        batched call so learned estimators can vectorize the work.
        """
        entries = [
            entry
            for entry in self.pool.matching_entries(query)
            # A pool query with an empty result cannot contribute: its estimate
            # is always x/y * 0 = 0, and with exact rates the y_rate guard
            # would skip it anyway (Qnew ⊂% Qold = 0 when Qold is empty).
            if entry.cardinality > 0
        ]
        if not entries:
            return []
        pairs: list[tuple[Query, Query]] = []
        for entry in entries:
            pairs.append((entry.query, query))  # x_rate = Qold ⊂% Qnew
            pairs.append((query, entry.query))  # y_rate = Qnew ⊂% Qold
        rates = self.containment_estimator.estimate_containments(pairs)
        estimates: list[PoolEstimate] = []
        for index, entry in enumerate(entries):
            x_rate = rates[2 * index]
            y_rate = rates[2 * index + 1]
            if y_rate <= self.epsilon:
                continue
            estimates.append(
                PoolEstimate(
                    pool_entry=entry,
                    x_rate=x_rate,
                    y_rate=y_rate,
                    estimate=x_rate / y_rate * entry.cardinality,
                )
            )
        return estimates

    def estimate_cardinality(self, query: Query) -> float:
        entries = self.pool.matching_entries(query)
        if not entries:
            if self.fallback is not None:
                return self.fallback.estimate_cardinality(query)
            raise NoMatchingPoolQueryError(
                f"no pool query shares the FROM clause {query.from_signature()}"
            )
        estimates = self.pool_estimates(query)
        if not estimates:
            # Matching pool queries exist but the new query is estimated to be
            # contained ~0% in all of them, which (with frame queries in the
            # pool) only happens when the new query's result is empty.
            return 0.0
        return float(self.final_function([estimate.estimate for estimate in estimates]))


def cnt2crd(
    containment_estimator: ContainmentEstimator,
    pool: QueriesPool,
    final_function: str | FinalFunction = "median",
    epsilon: float = 1e-3,
    fallback: CardinalityEstimator | None = None,
) -> Cnt2CrdEstimator:
    """Functional alias for :class:`Cnt2CrdEstimator` (matches the paper's notation)."""
    return Cnt2CrdEstimator(
        containment_estimator,
        pool,
        final_function=final_function,
        epsilon=epsilon,
        fallback=fallback,
    )
