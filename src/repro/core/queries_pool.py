"""The queries pool (Section 5.2).

The pool stores previously executed queries together with their actual
cardinalities (not their results) as part of the database's meta information.
It is indexed by FROM-clause signature because the Cnt2Crd technique only
matches a new query with old queries sharing its FROM clause.

Each FROM-signature bucket is internally keyed by query (queries are
immutable and hash structurally), so recording an executed query —
including the re-add-updates-cardinality case — is O(1) instead of a linear
scan of the bucket.  That keeps pool construction linear in the number of
entries even when one FROM signature dominates, which is exactly the regime
the paper's Table 14 pool-size sweep (and any production pool) runs in.

The pool is also safe to mutate while serving: every operation holds a
per-pool lock, and the read side (:meth:`matching_entries`, iteration,
:meth:`subset`) works on consistent snapshots, so
:meth:`add` can record freshly executed queries concurrently with the
serving layer's batch planning (see :mod:`repro.serving`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.datasets.pairs import LabeledQuery
from repro.db.database import Database
from repro.db.intersection import TrueCardinalityOracle
from repro.sql.query import Query


@dataclass(frozen=True)
class PoolEntry:
    """One pool record: an executed query and its actual cardinality."""

    query: Query
    cardinality: int

    def __post_init__(self) -> None:
        if self.cardinality < 0:
            raise ValueError("cardinality must be non-negative")


class QueriesPool:
    """A FROM-clause-indexed pool of executed queries with known cardinalities."""

    def __init__(self, entries: Iterable[PoolEntry] = ()) -> None:
        # FROM signature -> {query -> entry}; the inner dict gives O(1)
        # dedup/update and preserves insertion order like the old list did.
        self._by_from: dict[tuple[tuple[str, str], ...], dict[Query, PoolEntry]] = {}
        # Per-signature mutation counters: every add() bumps its bucket's
        # version, so incremental consumers (the serving layer's
        # PoolEncodingIndex) can detect "this bucket changed" in O(1)
        # instead of re-diffing the bucket on every read.
        self._bucket_versions: dict[tuple[tuple[str, str], ...], int] = {}
        self._size = 0
        self._lock = threading.Lock()
        for entry in entries:
            self.add(entry.query, entry.cardinality)

    # ------------------------------------------------------------------ #
    # construction

    @classmethod
    def from_labeled_queries(cls, labeled: Sequence[LabeledQuery]) -> "QueriesPool":
        """Build a pool from queries already labelled with true cardinalities."""
        return cls(PoolEntry(item.query, item.cardinality) for item in labeled)

    @classmethod
    def from_executed_queries(
        cls,
        database: Database,
        queries: Sequence[Query],
        oracle: TrueCardinalityOracle | None = None,
    ) -> "QueriesPool":
        """Execute ``queries`` on ``database`` and record their cardinalities.

        This mirrors the paper's first pool-construction approach: the DBMS
        executes queries anyway, and the pool simply records them.
        """
        oracle = oracle or TrueCardinalityOracle(database)
        return cls(PoolEntry(query, oracle.cardinality(query)) for query in queries)

    def add(self, query: Query, cardinality: int) -> None:
        """Record an executed query with its actual cardinality.

        Re-adding an identical query updates its cardinality instead of
        duplicating it.  Safe to call while the pool is serving requests:
        concurrent readers see either the pool before or after this entry,
        never a partial state.
        """
        entry = PoolEntry(query, cardinality)
        signature = query.from_signature()
        with self._lock:
            bucket = self._by_from.setdefault(signature, {})
            if query not in bucket:
                self._size += 1
            bucket[query] = entry
            self._bucket_versions[signature] = self._bucket_versions.get(signature, 0) + 1

    # ------------------------------------------------------------------ #
    # lookup

    def matching_entries(self, query: Query) -> list[PoolEntry]:
        """All pool entries whose FROM clause matches ``query``'s FROM clause."""
        with self._lock:
            bucket = self._by_from.get(query.from_signature())
            return list(bucket.values()) if bucket else []

    def has_match(self, query: Query) -> bool:
        """Whether at least one pool entry shares ``query``'s FROM clause."""
        with self._lock:
            return bool(self._by_from.get(query.from_signature()))

    def __len__(self) -> int:
        with self._lock:
            return self._size

    def __iter__(self) -> Iterator[PoolEntry]:
        with self._lock:
            snapshot = [
                entry for bucket in self._by_from.values() for entry in bucket.values()
            ]
        return iter(snapshot)

    def bucket_version(self, signature: tuple[tuple[str, str], ...]) -> int:
        """The mutation counter of one FROM-signature bucket (0 when absent).

        Every :meth:`add` touching the bucket increments it, so a consumer
        that cached derived per-bucket state (e.g. the serving layer's pool
        encoding index) can check "did this bucket change?" in O(1) without
        copying the bucket.
        """
        with self._lock:
            return self._bucket_versions.get(signature, 0)

    def bucket_snapshot(
        self, signature: tuple[tuple[str, str], ...]
    ) -> tuple[list[PoolEntry], int]:
        """One bucket's entries plus its version, read atomically.

        Reading entries and version under one lock acquisition means the
        returned version describes exactly the returned entries: an
        :meth:`add` landing concurrently is either fully included (and the
        version reflects it) or fully excluded — a consumer caching by
        version can never associate a version with a partially-applied state.
        """
        with self._lock:
            bucket = self._by_from.get(signature)
            entries = list(bucket.values()) if bucket else []
            return entries, self._bucket_versions.get(signature, 0)

    def from_signatures(self) -> list[tuple[tuple[str, str], ...]]:
        """All distinct FROM-clause signatures present in the pool."""
        with self._lock:
            return list(self._by_from)

    def subset(self, size: int) -> "QueriesPool":
        """Return a smaller pool with roughly ``size`` entries.

        Entries are taken round-robin across FROM signatures so the subset
        stays "equally distributed among all the possible FROM clauses"
        (Section 6.2), which is what the Table 14 pool-size sweep varies.
        """
        if size <= 0:
            raise ValueError("subset size must be positive")
        with self._lock:
            buckets = [list(bucket.values()) for bucket in self._by_from.values()]
            total = self._size
        if size >= total:
            return QueriesPool(entry for bucket in buckets for entry in bucket)
        selected: list[PoolEntry] = []
        round_index = 0
        while len(selected) < size:
            progressed = False
            for bucket in buckets:
                if round_index < len(bucket):
                    selected.append(bucket[round_index])
                    progressed = True
                    if len(selected) >= size:
                        break
            if not progressed:
                break
            round_index += 1
        return QueriesPool(selected)
