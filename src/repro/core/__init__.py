"""The paper's primary contribution.

* :mod:`repro.core.featurization` -- the shared vector layout of Table 1 and
  the query-to-set-of-vectors featurizer.
* :mod:`repro.core.crn` -- the CRN model (set encoders, Expand, MLPout) and
  its estimator wrapper.
* :mod:`repro.core.training` -- the Adam + q-error training loop with early
  stopping and convergence history.
* :mod:`repro.core.metrics` -- q-error and the paper's percentile summaries.
* :mod:`repro.core.estimators` -- the cardinality / containment estimator
  interfaces.
* :mod:`repro.core.crd2cnt` / :mod:`repro.core.cnt2crd` -- the two
  transformations between the problems (Sections 4.1 and 5.1).
* :mod:`repro.core.queries_pool` -- the queries pool (Section 5.2).
* :mod:`repro.core.final_functions` -- median / mean / trimmed-mean final
  functions (Section 5.3.1).
* :mod:`repro.core.improved` -- ``Improved M = Cnt2Crd(Crd2Cnt(M))``
  (Section 7).
* :mod:`repro.core.oracle` -- ground-truth estimators used as sanity
  references in tests.
"""

from repro.core.cnt2crd import Cnt2CrdEstimator, NoMatchingPoolQueryError, PoolEstimate, cnt2crd
from repro.core.crd2cnt import Crd2CntEstimator, crd2cnt
from repro.core.crn import CRNConfig, CRNEstimator, CRNModel
from repro.core.estimators import CardinalityEstimator, ContainmentEstimator
from repro.core.featurization import FeatureLayout, QueryFeaturizer
from repro.core.final_functions import (
    FINAL_FUNCTIONS,
    get_final_function,
    mean_final,
    median_final,
    trimmed_mean_final,
)
from repro.core.improved import ImprovedEstimator, improve
from repro.core.metrics import ErrorSummary, q_error, q_errors, summarize_by_group
from repro.core.oracle import OracleCardinalityEstimator, OracleContainmentEstimator
from repro.core.queries_pool import PoolEntry, QueriesPool
from repro.core.training import (
    EpochStats,
    TrainingConfig,
    TrainingResult,
    evaluate_pairs_q_error,
    train_crn,
)

__all__ = [
    "CRNConfig",
    "CRNEstimator",
    "CRNModel",
    "CardinalityEstimator",
    "Cnt2CrdEstimator",
    "ContainmentEstimator",
    "Crd2CntEstimator",
    "EpochStats",
    "ErrorSummary",
    "FINAL_FUNCTIONS",
    "FeatureLayout",
    "ImprovedEstimator",
    "NoMatchingPoolQueryError",
    "OracleCardinalityEstimator",
    "OracleContainmentEstimator",
    "PoolEntry",
    "PoolEstimate",
    "QueriesPool",
    "QueryFeaturizer",
    "TrainingConfig",
    "TrainingResult",
    "cnt2crd",
    "crd2cnt",
    "evaluate_pairs_q_error",
    "get_final_function",
    "improve",
    "mean_final",
    "median_final",
    "q_error",
    "q_errors",
    "summarize_by_group",
    "train_crn",
    "trimmed_mean_final",
]
