"""The CRN (Containment Rate Network) model (Section 3.2).

The model runs in three stages:

1. each query of the input pair is converted into a set of feature vectors
   (:mod:`repro.core.featurization`);
2. a one-layer fully connected network per query (``MLP1`` / ``MLP2``)
   transforms each vector and the transformed vectors are average-pooled into
   a single representative vector ``Qvec`` per query;
3. a two-layer network ``MLPout`` consumes
   ``Expand(Qvec1, Qvec2) = [v1, v2, |v1 - v2|, v1 ⊙ v2]`` and outputs the
   estimated containment rate through a sigmoid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.estimators import ContainmentEstimator
from repro.core.featurization import QueryFeaturizer
from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor, concatenate, no_grad
from repro.sql.query import Query

#: Pooling strategies supported by the set encoders.  The paper uses the
#: average "to ease generalization to different numbers of elements in the
#: sets"; sum pooling is kept for the ablation benchmark.
POOLING_STRATEGIES = ("average", "sum")


@dataclass(frozen=True)
class CRNConfig:
    """Architecture hyperparameters of the CRN model.

    Attributes:
        hidden_size: the shared hidden dimension ``H`` (the paper settles on
            512 after the Figure 3 sweep; smaller values keep the NumPy
            substrate fast).
        pooling: how the set encoders pool transformed vectors ("average" as
            in the paper, or "sum" for the ablation).
        use_expand: whether ``MLPout`` sees the paper's Expand features or a
            plain concatenation of the two query vectors (ablation).
        seed: RNG seed for weight initialisation.
    """

    hidden_size: int = 64
    pooling: str = "average"
    use_expand: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.hidden_size <= 0:
            raise ValueError("hidden_size must be positive")
        if self.pooling not in POOLING_STRATEGIES:
            raise ValueError(f"pooling must be one of {POOLING_STRATEGIES}, got {self.pooling!r}")


class CRNModel(Module):
    """The containment rate network.

    Args:
        vector_size: the featurized vector dimension ``L``.
        config: architecture configuration.
    """

    def __init__(self, vector_size: int, config: CRNConfig | None = None) -> None:
        if vector_size <= 0:
            raise ValueError("vector_size must be positive")
        self.config = config or CRNConfig()
        self.vector_size = vector_size
        hidden = self.config.hidden_size
        rng = np.random.default_rng(self.config.seed)
        # Stage 2: one single-layer set encoder per input query (MLP1, MLP2).
        self.set_encoder1 = Linear(vector_size, hidden, rng=rng)
        self.set_encoder2 = Linear(vector_size, hidden, rng=rng)
        # Stage 3: MLPout over the expanded pair representation.
        out_input = 4 * hidden if self.config.use_expand else 2 * hidden
        self.out_hidden = Linear(out_input, 2 * hidden, rng=rng)
        self.out_final = Linear(2 * hidden, 1, rng=rng)

    @property
    def hidden_size(self) -> int:
        """The hidden dimension ``H``."""
        return self.config.hidden_size

    # ------------------------------------------------------------------ #
    # forward

    def encode_query(self, vectors: Tensor, mask: Tensor, encoder: Linear) -> Tensor:
        """Encode a padded batch of vector sets into one vector per query.

        Args:
            vectors: ``(batch, max set size, L)`` padded feature vectors.
            mask: ``(batch, max set size, 1)`` validity mask.
            encoder: the per-query set encoder (``MLP1`` or ``MLP2``).

        Returns:
            A ``(batch, H)`` tensor of query representations ``Qvec``.
        """
        batch_size, max_set, _ = vectors.shape
        flat = vectors.reshape(batch_size * max_set, self.vector_size)
        transformed = encoder(flat).relu()
        transformed = transformed.reshape(batch_size, max_set, self.hidden_size)
        masked = transformed * mask
        pooled = masked.sum(axis=1)
        if self.config.pooling == "average":
            counts = mask.sum(axis=1).clip_min(1.0)
            pooled = pooled / counts
        return pooled

    def expand(self, first: Tensor, second: Tensor) -> Tensor:
        """The Expand feature map ``[v1, v2, |v1 - v2|, v1 ⊙ v2]`` (Section 3.2.3)."""
        return concatenate(
            [first, second, (first - second).abs(), first * second], axis=1
        )

    def head(self, first_repr: Tensor, second_repr: Tensor) -> Tensor:
        """``MLPout`` over a batch of already-encoded query representations.

        Args:
            first_repr: ``(batch, H)`` representations of the first queries.
            second_repr: ``(batch, H)`` representations of the second queries.

        Returns:
            A ``(batch,)`` tensor of rates in ``[0, 1]``.
        """
        if self.config.use_expand:
            pair = self.expand(first_repr, second_repr)
        else:
            pair = concatenate([first_repr, second_repr], axis=1)
        hidden = self.out_hidden(pair).relu()
        output = self.out_final(hidden).sigmoid()
        return output.reshape(output.shape[0])

    def forward(
        self,
        first_vectors: Tensor,
        first_mask: Tensor,
        second_vectors: Tensor,
        second_mask: Tensor,
    ) -> Tensor:
        """Estimate containment rates for a batch of featurized query pairs.

        Returns:
            A ``(batch,)`` tensor of rates in ``[0, 1]``.
        """
        first_repr = self.encode_query(first_vectors, first_mask, self.set_encoder1)
        second_repr = self.encode_query(second_vectors, second_mask, self.set_encoder2)
        return self.head(first_repr, second_repr)

    # ------------------------------------------------------------------ #
    # deterministic inference path

    def encode_set(self, vectors: np.ndarray, position: int) -> np.ndarray:
        """Encode one featurized query in isolation (no padding, no batch).

        The result is a pure function of ``vectors``: the query's set is
        encoded alone, so the bits of the returned ``Qvec`` never depend on
        which other queries happen to share a forward pass.  This is what
        makes per-query encoding cacheable across requests (see
        :mod:`repro.serving`).  The computation runs on plain arrays (no
        autodiff graph): inference encodes each query thousands of times
        across requests, and the Tensor bookkeeping would dominate the
        two small matmuls.

        Args:
            vectors: ``(set size, L)`` feature vectors of one query.
            position: 1 to encode with ``MLP1`` (first pair slot), 2 for
                ``MLP2`` (second pair slot).

        Returns:
            A ``(H,)`` float64 representation ``Qvec``.
        """
        if position not in (1, 2):
            raise ValueError(f"position must be 1 or 2, got {position}")
        encoder = self.set_encoder1 if position == 1 else self.set_encoder2
        transformed = np.maximum(vectors @ encoder.weight.data + encoder.bias.data, 0.0)
        pooled = transformed.sum(axis=0)
        if self.config.pooling == "average":
            pooled = pooled / max(vectors.shape[0], 1)
        return pooled

    def rates_from_encodings(
        self,
        first_reprs: np.ndarray,
        second_reprs: np.ndarray,
        slab_size: int = 256,
    ) -> np.ndarray:
        """Run ``MLPout`` over pre-encoded pairs in fixed-shape slabs.

        Every forward pass sees exactly ``slab_size`` rows (the final partial
        slab is padded with zero rows that are discarded), so the BLAS kernels
        behind the matmuls always run with the same shape and each pair's rate
        is bit-for-bit independent of how pairs were grouped into batches.
        This is the invariant the serving layer's cross-request batching
        relies on (its results must match the per-request path exactly).

        Args:
            first_reprs: ``(n, H)`` encodings from :meth:`encode_set` (pos 1).
            second_reprs: ``(n, H)`` encodings from :meth:`encode_set` (pos 2).
            slab_size: rows per forward pass; must be positive.

        Returns:
            A ``(n,)`` float64 array of containment rates.
        """
        if slab_size <= 0:
            raise ValueError("slab_size must be positive")
        if first_reprs.shape != second_reprs.shape:
            raise ValueError("first and second encodings must have the same shape")
        total = first_reprs.shape[0]
        rates = np.empty(total, dtype=np.float64)
        for start in range(0, total, slab_size):
            first_slab = first_reprs[start : start + slab_size]
            second_slab = second_reprs[start : start + slab_size]
            count = first_slab.shape[0]
            # Freshly allocate every slab (copy / zero-pad) so data alignment
            # cannot vary with the slab's offset into the stacked batch.
            if count < slab_size:
                padding = np.zeros((slab_size - count, self.hidden_size))
                first_slab = np.concatenate([first_slab, padding], axis=0)
                second_slab = np.concatenate([second_slab, padding], axis=0)
            else:
                first_slab = first_slab.copy()
                second_slab = second_slab.copy()
            with no_grad():
                out = self.head(Tensor(first_slab), Tensor(second_slab)).numpy()
            rates[start : start + count] = out[:count]
        return rates

    def rates_against_pool(
        self,
        query_first_repr: np.ndarray,
        query_second_repr: np.ndarray,
        pool_first_reprs: np.ndarray,
        pool_second_reprs: np.ndarray,
        slab_size: int = 256,
    ) -> np.ndarray:
        """Score one query against a whole pool-side encoding matrix.

        The Cnt2Crd technique needs, per eligible pool entry ``Qold``, the
        ordered pairs ``(Qold, Qnew)`` then ``(Qnew, Qold)``
        (:meth:`repro.core.cnt2crd.Cnt2CrdEstimator.containment_pairs`).
        Given the pool side pre-encoded as contiguous matrices (one per pair
        slot), this assembles the ``(2n, H)`` pair-head inputs with two
        vectorized strided writes — no per-pair Python tuples, dict lookups,
        or row stacking — and runs the ordinary fixed-shape slab path.

        Bit-for-bit identity with the per-request path is by construction:
        the assembled rows are exactly the rows ``estimate_containments``
        would have stacked for the same pairs, in the same interleaved
        order, and :meth:`rates_from_encodings` makes each row's rate
        independent of batch composition.

        Args:
            query_first_repr: ``(H,)`` encoding of the incoming query from
                :meth:`encode_set` position 1 (it is the *first* element of
                every ``(Qnew, Qold)`` y-rate pair).
            query_second_repr: ``(H,)`` position-2 encoding of the incoming
                query (the *second* element of every ``(Qold, Qnew)`` pair).
            pool_first_reprs: ``(n, H)`` position-1 encodings of the eligible
                pool queries, row ``i`` belonging to entry ``i``.
            pool_second_reprs: ``(n, H)`` position-2 encodings, same order.
            slab_size: rows per pair-head forward pass.

        Returns:
            A ``(2n,)`` float64 array of rates in ``containment_pairs``
            order: ``rates[2i]`` is entry ``i``'s x_rate, ``rates[2i + 1]``
            its y_rate.
        """
        first, second = self.assemble_pool_pairs(
            query_first_repr, query_second_repr, pool_first_reprs, pool_second_reprs
        )
        return self.rates_from_encodings(first, second, slab_size=slab_size)

    def assemble_pool_pairs(
        self,
        query_first_repr: np.ndarray,
        query_second_repr: np.ndarray,
        pool_first_reprs: np.ndarray,
        pool_second_reprs: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """The ``(2n, H)`` pair-head input matrices of one query-vs-pool scoring.

        Split out of :meth:`rates_against_pool` so batched callers (the
        serving layer scoring many requests at once) can concatenate several
        requests' assembled blocks and run the pair head over one large
        fixed-shape slab sequence — each row's rate is batch-composition
        invariant, so the fusion changes no bits while amortizing slab
        padding across requests.
        """
        if pool_first_reprs.shape != pool_second_reprs.shape:
            raise ValueError("pool encoding matrices must have the same shape")
        count = pool_first_reprs.shape[0]
        hidden = self.hidden_size
        first = np.empty((2 * count, hidden), dtype=np.float64)
        second = np.empty((2 * count, hidden), dtype=np.float64)
        first[0::2] = pool_first_reprs  # x_rate pairs: (Qold, Qnew)
        first[1::2] = query_first_repr  # y_rate pairs: (Qnew, Qold)
        second[0::2] = query_second_repr
        second[1::2] = pool_second_reprs
        return first, second

    # ------------------------------------------------------------------ #
    # bookkeeping

    def parameter_count_formula(self) -> int:
        """The closed-form parameter count the paper quotes (Section 3.5.3).

        With the paper's Expand features the model has
        ``2 * L * H + 8 * H^2 + 6 * H + 1`` learned parameters; this helper
        recomputes that expression for the current configuration so tests can
        check it against :meth:`num_parameters`.
        """
        hidden = self.hidden_size
        vector = self.vector_size
        if self.config.use_expand:
            return 2 * vector * hidden + 8 * hidden * hidden + 6 * hidden + 1
        return 2 * vector * hidden + 4 * hidden * hidden + 6 * hidden + 1


class CRNEstimator(ContainmentEstimator):
    """A :class:`ContainmentEstimator` backed by a trained CRN model.

    Inference is split into two cache-friendly stages:

    1. every *unique* query in the batch is featurized once and encoded once
       per pair slot with :meth:`CRNModel.encode_set` (a query appearing in
       hundreds of pairs — e.g. a pool query scored against many incoming
       queries — costs one featurization and at most two encodings per call);
    2. the pair head runs over the gathered encodings in fixed-shape slabs
       (:meth:`CRNModel.rates_from_encodings`), so estimates are bit-for-bit
       identical no matter how pairs are batched together.

    Args:
        model: the (trained) CRN network.
        featurizer: the featurizer bound to the evaluation database.  Any
            object with ``featurize`` / ``vector_size`` works, so a
            :class:`repro.serving.FeaturizationCache` can be dropped in.
        batch_size: pair-head slab size (rows per forward pass).
        encoding_cache: optional cross-call ``(query, position) -> Qvec``
            cache (:class:`repro.serving.EncodingCache`); when omitted,
            encodings are still deduplicated within each call.
    """

    name = "CRN"

    def __init__(
        self,
        model: CRNModel,
        featurizer: QueryFeaturizer,
        batch_size: int = 256,
        encoding_cache=None,
    ) -> None:
        if model.vector_size != featurizer.vector_size:
            raise ValueError(
                f"model expects vectors of size {model.vector_size}, "
                f"featurizer produces {featurizer.vector_size}"
            )
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.model = model
        self.featurizer = featurizer
        self.batch_size = batch_size
        self.encoding_cache = encoding_cache
        #: Optional compiled inference plan
        #: (:class:`repro.serving.InferencePlan`).  When attached, the pair
        #: head runs through the plan's fused kernels instead of the Tensor
        #: path — bit-identical in float64 mode, within the plan's documented
        #: tolerance in float32 mode.  Duck-typed so core never imports the
        #: serving layer.
        self.inference_plan = None
        if encoding_cache is not None:
            # Cached encodings are only valid for this model's weights.
            bind = getattr(encoding_cache, "bind", None)
            if bind is not None:
                bind(model)

    def estimate_containment(self, first: Query, second: Query) -> float:
        return self.estimate_containments([(first, second)])[0]

    # ------------------------------------------------------------------ #
    # compiled inference plans

    def attach_plan(self, plan) -> None:
        """Route pair-head inference through a compiled plan.

        The plan must have been compiled from *this* estimator's model with
        the same slab size — the float64 mode's bit-identity guarantee is
        defined against this estimator's ``batch_size`` slab discipline.
        """
        if plan.model is not self.model:
            raise ValueError(
                "inference plan was compiled from a different model; "
                "recompile against this estimator's model"
            )
        if plan.slab_size != self.batch_size:
            raise ValueError(
                f"inference plan slab_size {plan.slab_size} does not match "
                f"estimator batch_size {self.batch_size}"
            )
        self.inference_plan = plan

    def detach_plan(self) -> None:
        """Return to the reference Tensor inference path."""
        self.inference_plan = None

    def _head_rates(self, first_reprs: np.ndarray, second_reprs: np.ndarray) -> np.ndarray:
        """Run the pair head: compiled plan when attached, Tensor path otherwise."""
        plan = self.inference_plan
        if plan is not None:
            return plan.rates_from_encodings(first_reprs, second_reprs)
        return self.model.rates_from_encodings(
            first_reprs, second_reprs, slab_size=self.batch_size
        )

    def _assemble_pairs_f32(
        self,
        query_first: np.ndarray,
        query_second: np.ndarray,
        pool_first: np.ndarray,
        pool_second: np.ndarray,
        pool_first32: np.ndarray | None = None,
        pool_second32: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Interleave query-vs-pool pairs directly into float32 matrices.

        The float32 fused path's analogue of
        :meth:`CRNModel.assemble_pool_pairs`: when the pool index has
        negotiated float32 mirrors, rows copy with no cast at all; otherwise
        the strided writes downcast once, here, instead of the plan casting
        a float64 assembly a second time.
        """
        count = pool_first.shape[0]
        hidden = self.model.hidden_size
        first = np.empty((2 * count, hidden), dtype=np.float32)
        second = np.empty((2 * count, hidden), dtype=np.float32)
        first[0::2] = pool_first32 if pool_first32 is not None else pool_first
        first[1::2] = query_first
        second[0::2] = query_second
        second[1::2] = pool_second32 if pool_second32 is not None else pool_second
        return first, second

    def _encoding_scope(self):
        """The database-snapshot scope baked into encoding-cache keys.

        Encodings are a function of the *featurized* query, and featurization
        depends on the snapshot the featurizer is bound to (one-hot layout,
        normalization ranges).  Reading the fingerprint at call time means a
        featurizer rebound after a database update immediately stops matching
        the old snapshot's cached encodings instead of serving them stale.
        """
        return getattr(self.featurizer, "fingerprint", None)

    def estimate_containments(self, pairs) -> list[float]:
        if not pairs:
            return []
        encodings = self._encode_unique(pairs)
        first_reprs = np.stack([encodings[(first, 1)] for first, _ in pairs])
        second_reprs = np.stack([encodings[(second, 2)] for _, second in pairs])
        rates = self._head_rates(first_reprs, second_reprs)
        return [float(rate) for rate in rates]

    def encode_query(self, query: Query, position: int) -> np.ndarray:
        """The ``Qvec`` of ``query`` in pair slot ``position`` (cached if possible)."""
        scope = self._encoding_scope()
        if self.encoding_cache is not None:
            cached = self.encoding_cache.get(query, position, scope=scope, owner=self.model)
            if cached is not None:
                return cached
        # A compiled plan carries frozen copies of the encoder weights, so
        # plan-mode encodings stay consistent with the frozen head even if
        # the live model is mutated after compilation.
        encode = (
            self.model.encode_set
            if self.inference_plan is None
            else self.inference_plan.encode_set
        )
        encoding = encode(self.featurizer.featurize(query), position)
        if self.encoding_cache is not None:
            self.encoding_cache.put(query, position, encoding, scope=scope, owner=self.model)
        return encoding

    def rates_against_pool(
        self, query: Query, pool_first_reprs: np.ndarray, pool_second_reprs: np.ndarray
    ) -> np.ndarray:
        """Containment rates of ``query`` against a pre-encoded pool slab.

        Encodes the incoming query once per pair slot (through the encoding
        cache when attached) and hands the pool-side matrices straight to
        :meth:`CRNModel.rates_against_pool` — the whole-pool scoring path the
        :class:`repro.serving.PoolEncodingIndex` feeds.  Returns rates in
        :meth:`repro.core.cnt2crd.Cnt2CrdEstimator.containment_pairs` order,
        bit-for-bit identical to :meth:`estimate_containments` over the same
        pairs.
        """
        first_repr = self.encode_query(query, 1)
        second_repr = self.encode_query(query, 2)
        plan = self.inference_plan
        if plan is not None and plan.dtype == np.float32:
            first, second = self._assemble_pairs_f32(
                first_repr, second_repr, pool_first_reprs, pool_second_reprs
            )
            return plan.rates_from_encodings(first, second)
        first, second = self.model.assemble_pool_pairs(
            first_repr, second_repr, pool_first_reprs, pool_second_reprs
        )
        return self._head_rates(first, second)

    def rates_against_slab(self, query: Query, slab) -> np.ndarray:
        """Containment rates of ``query`` against a resolved index slab.

        The slab-aware twin of :meth:`rates_against_pool`: given an
        :class:`repro.serving.IndexedSlab` (duck-typed — anything with
        ``first`` / ``second`` and optional ``first_f32`` / ``second_f32``
        mirrors), a float32 plan consumes the pre-cast mirrors directly so
        the hot path never touches the float64 rows at all — through the
        plan's fused slab kernel, which caches the pool-side weight
        projections under the slab's identity ``token``.
        """
        plan = self.inference_plan
        if plan is not None and plan.dtype == np.float32:
            first_repr = self.encode_query(query, 1)
            second_repr = self.encode_query(query, 2)
            pool_first32 = getattr(slab, "first_f32", None)
            pool_second32 = getattr(slab, "second_f32", None)
            if plan.supports_slab_fusion:
                return plan.rates_against_slab(
                    first_repr,
                    second_repr,
                    pool_first32 if pool_first32 is not None else slab.first,
                    pool_second32 if pool_second32 is not None else slab.second,
                    token=getattr(slab, "token", None),
                )
            first, second = self._assemble_pairs_f32(
                first_repr,
                second_repr,
                slab.first,
                slab.second,
                pool_first32,
                pool_second32,
            )
            return plan.rates_from_encodings(first, second)
        return self.rates_against_pool(query, slab.first, slab.second)

    def rates_against_pools(self, items) -> list[np.ndarray]:
        """Score many query-vs-pool requests at once.

        Each item is either ``(query, slab)`` — a resolved
        :class:`repro.serving.IndexedSlab` (or anything slab-shaped) — or
        the legacy ``(query, pool_first, pool_second)`` matrix triple.  Each
        item's pair rows are assembled exactly as :meth:`rates_against_pool`
        would, but all blocks run through *one* pair-head pass: with many
        concurrent requests over small buckets, per-request slab runs would
        each pad to a full slab and waste most of the pair-head compute.
        Because every row's rate is independent of batch composition, the
        fused run returns bit-for-bit the same rates as one call per item
        (float32-plan mode: the same rates within the plan's tolerance —
        there each item runs the plan's fused slab kernel, consuming index
        mirrors cast-free and reusing the cached pool-side weight projection
        keyed by the item's slab token).

        Returns one ``(2 * n_i,)`` rate array per item, in order.
        """
        normalized = []
        tokens = []
        for item in items:
            if len(item) == 2:
                query, slab = item
                normalized.append(
                    (
                        query,
                        slab.first,
                        slab.second,
                        getattr(slab, "first_f32", None),
                        getattr(slab, "second_f32", None),
                    )
                )
                tokens.append(getattr(slab, "token", None))
            else:
                query, pool_first, pool_second = item
                normalized.append((query, pool_first, pool_second, None, None))
                tokens.append(None)
        if not normalized:
            return []
        plan = self.inference_plan
        if plan is not None and plan.dtype == np.float32 and plan.supports_slab_fusion:
            # Per-item fused slab runs: each reuses the cached pool-side
            # projection for its slab token, which beats one giant assembled
            # pass — the assembly recomputes the pool half of the first GEMM
            # for every request, the cache pays it once per slab version.
            results: list[np.ndarray] = []
            for (query, pf, ps, pf32, ps32), token in zip(normalized, tokens):
                results.append(
                    plan.rates_against_slab(
                        self.encode_query(query, 1),
                        self.encode_query(query, 2),
                        pf32 if pf32 is not None else pf,
                        ps32 if ps32 is not None else ps,
                        token=token,
                    )
                )
            return results
        if plan is not None and plan.dtype == np.float32:
            counts = [pool_first.shape[0] for _, pool_first, _, _, _ in normalized]
            hidden = self.model.hidden_size
            first = np.empty((2 * sum(counts), hidden), dtype=np.float32)
            second = np.empty((2 * sum(counts), hidden), dtype=np.float32)
            offset = 0
            for (query, pf, ps, pf32, ps32), count in zip(normalized, counts):
                query_first = self.encode_query(query, 1)
                query_second = self.encode_query(query, 2)
                first_block = first[offset : offset + 2 * count]
                second_block = second[offset : offset + 2 * count]
                first_block[0::2] = pf32 if pf32 is not None else pf
                first_block[1::2] = query_first
                second_block[0::2] = query_second
                second_block[1::2] = ps32 if ps32 is not None else ps
                offset += 2 * count
            rates = plan.rates_from_encodings(first, second)
            results: list[np.ndarray] = []
            offset = 0
            for count in counts:
                results.append(rates[offset : offset + 2 * count])
                offset += 2 * count
            return results
        blocks = []
        for query, pool_first, pool_second, _, _ in normalized:
            first_repr = self.encode_query(query, 1)
            second_repr = self.encode_query(query, 2)
            blocks.append(
                self.model.assemble_pool_pairs(
                    first_repr, second_repr, pool_first, pool_second
                )
            )
        stacked_first = np.concatenate([first for first, _ in blocks], axis=0)
        stacked_second = np.concatenate([second for _, second in blocks], axis=0)
        rates = self._head_rates(stacked_first, stacked_second)
        results = []
        offset = 0
        for first, _ in blocks:
            count = first.shape[0]
            results.append(rates[offset : offset + count])
            offset += count
        return results

    def warm(self, queries) -> None:
        """Pre-featurize and pre-encode ``queries`` for both pair slots.

        With an :attr:`encoding_cache` attached this makes later requests pay
        nothing for these queries (the serving layer warms the queries pool
        this way); without one it is a no-op beyond validating the queries.
        """
        for query in queries:
            self.encode_query(query, 1)
            self.encode_query(query, 2)

    def _encode_unique(self, pairs) -> dict[tuple[Query, int], np.ndarray]:
        """Encode every unique (query, slot) of ``pairs`` exactly once.

        Featurization is also deduplicated *across* the two slots: a query
        appearing in both pair positions is featurized once and encoded twice.
        """
        scope = self._encoding_scope()
        encodings: dict[tuple[Query, int], np.ndarray] = {}
        features: dict[Query, np.ndarray] = {}
        for first, second in pairs:
            for query, position in ((first, 1), (second, 2)):
                key = (query, position)
                if key in encodings:
                    continue
                if self.encoding_cache is not None:
                    cached = self.encoding_cache.get(
                        query, position, scope=scope, owner=self.model
                    )
                    if cached is not None:
                        encodings[key] = cached
                        continue
                if query not in features:
                    features[query] = self.featurizer.featurize(query)
                encoding = self.model.encode_set(features[query], position)
                if self.encoding_cache is not None:
                    self.encoding_cache.put(
                        query, position, encoding, scope=scope, owner=self.model
                    )
                encodings[key] = encoding
        return encodings
