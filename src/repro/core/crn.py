"""The CRN (Containment Rate Network) model (Section 3.2).

The model runs in three stages:

1. each query of the input pair is converted into a set of feature vectors
   (:mod:`repro.core.featurization`);
2. a one-layer fully connected network per query (``MLP1`` / ``MLP2``)
   transforms each vector and the transformed vectors are average-pooled into
   a single representative vector ``Qvec`` per query;
3. a two-layer network ``MLPout`` consumes
   ``Expand(Qvec1, Qvec2) = [v1, v2, |v1 - v2|, v1 ⊙ v2]`` and outputs the
   estimated containment rate through a sigmoid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.estimators import ContainmentEstimator
from repro.core.featurization import QueryFeaturizer
from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor, concatenate, no_grad
from repro.sql.query import Query

#: Pooling strategies supported by the set encoders.  The paper uses the
#: average "to ease generalization to different numbers of elements in the
#: sets"; sum pooling is kept for the ablation benchmark.
POOLING_STRATEGIES = ("average", "sum")


@dataclass(frozen=True)
class CRNConfig:
    """Architecture hyperparameters of the CRN model.

    Attributes:
        hidden_size: the shared hidden dimension ``H`` (the paper settles on
            512 after the Figure 3 sweep; smaller values keep the NumPy
            substrate fast).
        pooling: how the set encoders pool transformed vectors ("average" as
            in the paper, or "sum" for the ablation).
        use_expand: whether ``MLPout`` sees the paper's Expand features or a
            plain concatenation of the two query vectors (ablation).
        seed: RNG seed for weight initialisation.
    """

    hidden_size: int = 64
    pooling: str = "average"
    use_expand: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.hidden_size <= 0:
            raise ValueError("hidden_size must be positive")
        if self.pooling not in POOLING_STRATEGIES:
            raise ValueError(f"pooling must be one of {POOLING_STRATEGIES}, got {self.pooling!r}")


class CRNModel(Module):
    """The containment rate network.

    Args:
        vector_size: the featurized vector dimension ``L``.
        config: architecture configuration.
    """

    def __init__(self, vector_size: int, config: CRNConfig | None = None) -> None:
        if vector_size <= 0:
            raise ValueError("vector_size must be positive")
        self.config = config or CRNConfig()
        self.vector_size = vector_size
        hidden = self.config.hidden_size
        rng = np.random.default_rng(self.config.seed)
        # Stage 2: one single-layer set encoder per input query (MLP1, MLP2).
        self.set_encoder1 = Linear(vector_size, hidden, rng=rng)
        self.set_encoder2 = Linear(vector_size, hidden, rng=rng)
        # Stage 3: MLPout over the expanded pair representation.
        out_input = 4 * hidden if self.config.use_expand else 2 * hidden
        self.out_hidden = Linear(out_input, 2 * hidden, rng=rng)
        self.out_final = Linear(2 * hidden, 1, rng=rng)

    @property
    def hidden_size(self) -> int:
        """The hidden dimension ``H``."""
        return self.config.hidden_size

    # ------------------------------------------------------------------ #
    # forward

    def encode_query(self, vectors: Tensor, mask: Tensor, encoder: Linear) -> Tensor:
        """Encode a padded batch of vector sets into one vector per query.

        Args:
            vectors: ``(batch, max set size, L)`` padded feature vectors.
            mask: ``(batch, max set size, 1)`` validity mask.
            encoder: the per-query set encoder (``MLP1`` or ``MLP2``).

        Returns:
            A ``(batch, H)`` tensor of query representations ``Qvec``.
        """
        batch_size, max_set, _ = vectors.shape
        flat = vectors.reshape(batch_size * max_set, self.vector_size)
        transformed = encoder(flat).relu()
        transformed = transformed.reshape(batch_size, max_set, self.hidden_size)
        masked = transformed * mask
        pooled = masked.sum(axis=1)
        if self.config.pooling == "average":
            counts = mask.sum(axis=1).clip_min(1.0)
            pooled = pooled / counts
        return pooled

    def expand(self, first: Tensor, second: Tensor) -> Tensor:
        """The Expand feature map ``[v1, v2, |v1 - v2|, v1 ⊙ v2]`` (Section 3.2.3)."""
        return concatenate(
            [first, second, (first - second).abs(), first * second], axis=1
        )

    def forward(
        self,
        first_vectors: Tensor,
        first_mask: Tensor,
        second_vectors: Tensor,
        second_mask: Tensor,
    ) -> Tensor:
        """Estimate containment rates for a batch of featurized query pairs.

        Returns:
            A ``(batch,)`` tensor of rates in ``[0, 1]``.
        """
        first_repr = self.encode_query(first_vectors, first_mask, self.set_encoder1)
        second_repr = self.encode_query(second_vectors, second_mask, self.set_encoder2)
        if self.config.use_expand:
            pair = self.expand(first_repr, second_repr)
        else:
            pair = concatenate([first_repr, second_repr], axis=1)
        hidden = self.out_hidden(pair).relu()
        output = self.out_final(hidden).sigmoid()
        return output.reshape(output.shape[0])

    # ------------------------------------------------------------------ #
    # bookkeeping

    def parameter_count_formula(self) -> int:
        """The closed-form parameter count the paper quotes (Section 3.5.3).

        With the paper's Expand features the model has
        ``2 * L * H + 8 * H^2 + 6 * H + 1`` learned parameters; this helper
        recomputes that expression for the current configuration so tests can
        check it against :meth:`num_parameters`.
        """
        hidden = self.hidden_size
        vector = self.vector_size
        if self.config.use_expand:
            return 2 * vector * hidden + 8 * hidden * hidden + 6 * hidden + 1
        return 2 * vector * hidden + 4 * hidden * hidden + 6 * hidden + 1


class CRNEstimator(ContainmentEstimator):
    """A :class:`ContainmentEstimator` backed by a trained CRN model.

    Args:
        model: the (trained) CRN network.
        featurizer: the featurizer bound to the evaluation database.
        batch_size: how many pairs to push through the network per forward
            pass in :meth:`estimate_containments`.
    """

    name = "CRN"

    def __init__(self, model: CRNModel, featurizer: QueryFeaturizer, batch_size: int = 256) -> None:
        if model.vector_size != featurizer.vector_size:
            raise ValueError(
                f"model expects vectors of size {model.vector_size}, "
                f"featurizer produces {featurizer.vector_size}"
            )
        self.model = model
        self.featurizer = featurizer
        self.batch_size = batch_size

    def estimate_containment(self, first: Query, second: Query) -> float:
        return self.estimate_containments([(first, second)])[0]

    def estimate_containments(self, pairs) -> list[float]:
        estimates: list[float] = []
        for start in range(0, len(pairs), self.batch_size):
            chunk = pairs[start : start + self.batch_size]
            first_sets = [self.featurizer.featurize(first) for first, _ in chunk]
            second_sets = [self.featurizer.featurize(second) for _, second in chunk]
            first_batch, first_mask = self.featurizer.pad_sets(first_sets)
            second_batch, second_mask = self.featurizer.pad_sets(second_sets)
            with no_grad():
                rates = self.model(
                    Tensor(first_batch),
                    Tensor(first_mask),
                    Tensor(second_batch),
                    Tensor(second_mask),
                )
            estimates.extend(float(rate) for rate in np.atleast_1d(rates.numpy()))
        return estimates
