"""The Crd2Cnt transformation (Section 4.1).

Any cardinality estimation model ``M`` can act as a containment rate estimator
``M'``: the rate ``Q1 ⊂% Q2`` is estimated as ``|Q1 ∩ Q2| / |Q1|`` where both
cardinalities come from ``M`` and ``Q1 ∩ Q2`` conjoins both WHERE clauses.
This is how the paper turns PostgreSQL and MSCN into containment baselines.
"""

from __future__ import annotations

from repro.core.estimators import CardinalityEstimator, ContainmentEstimator
from repro.sql.intersection import intersect_queries, same_from_clause
from repro.sql.query import Query


class Crd2CntEstimator(ContainmentEstimator):
    """A containment estimator derived from a cardinality estimator.

    Args:
        cardinality_estimator: the underlying model ``M``.
        clip: clamp the estimated rate into ``[0, 1]``.  The raw ratio can
            exceed 1 when ``M`` is inconsistent (e.g. estimates ``Q1 ∩ Q2``
            larger than ``Q1``); the paper's definition bounds true rates to
            [0, 1], so clipping is the faithful default.
    """

    def __init__(self, cardinality_estimator: CardinalityEstimator, clip: bool = True) -> None:
        self.cardinality_estimator = cardinality_estimator
        self.clip = clip
        self.name = f"Crd2Cnt({cardinality_estimator.name})"

    def estimate_containment(self, first: Query, second: Query) -> float:
        if not same_from_clause(first, second):
            raise ValueError(
                "containment rates are only defined for queries with identical FROM clauses"
            )
        first_cardinality = self.cardinality_estimator.estimate_cardinality(first)
        if first_cardinality <= 0:
            # By definition an empty Q1 is 0%-contained in any query.
            return 0.0
        intersection = intersect_queries(first, second)
        intersection_cardinality = self.cardinality_estimator.estimate_cardinality(intersection)
        rate = intersection_cardinality / first_cardinality
        if self.clip:
            rate = min(max(rate, 0.0), 1.0)
        return float(rate)


def crd2cnt(cardinality_estimator: CardinalityEstimator, clip: bool = True) -> Crd2CntEstimator:
    """Functional alias for :class:`Crd2CntEstimator` (matches the paper's notation)."""
    return Crd2CntEstimator(cardinality_estimator, clip=clip)
