"""Improving existing cardinality estimators (Section 7).

``Improved M = Cnt2Crd(Crd2Cnt(M))``: an existing cardinality estimator ``M``
is first converted into a containment estimator with the Crd2Cnt
transformation, and that containment estimator (plus the queries pool) is
converted back into a cardinality estimator with the Cnt2Crd technique.  The
paper shows this improves both PostgreSQL and MSCN substantially without
changing the models themselves.
"""

from __future__ import annotations

from repro.core.cnt2crd import Cnt2CrdEstimator
from repro.core.crd2cnt import Crd2CntEstimator
from repro.core.estimators import CardinalityEstimator
from repro.core.final_functions import FinalFunction
from repro.core.queries_pool import QueriesPool


class ImprovedEstimator(Cnt2CrdEstimator):
    """``Cnt2Crd(Crd2Cnt(M))`` for an existing cardinality estimator ``M``."""

    def __init__(
        self,
        base_estimator: CardinalityEstimator,
        pool: QueriesPool,
        final_function: str | FinalFunction = "median",
        epsilon: float = 1e-3,
        fallback_to_base: bool = True,
    ) -> None:
        """Build the improved model.

        Args:
            base_estimator: the existing model ``M`` (left unchanged).
            pool: the queries pool.
            final_function: the final function ``F``.
            epsilon: the ``y_rate`` threshold of the Cnt2Crd technique.
            fallback_to_base: when no pool query matches, fall back to the
                base model's own estimate (the paper's "rely on the known
                basic cardinality estimation models").
        """
        containment = Crd2CntEstimator(base_estimator)
        super().__init__(
            containment,
            pool,
            final_function=final_function,
            epsilon=epsilon,
            fallback=base_estimator if fallback_to_base else None,
        )
        self.base_estimator = base_estimator
        self.name = f"Improved {base_estimator.name}"


def improve(
    base_estimator: CardinalityEstimator,
    pool: QueriesPool,
    final_function: str | FinalFunction = "median",
    epsilon: float = 1e-3,
) -> ImprovedEstimator:
    """Functional alias for :class:`ImprovedEstimator`."""
    return ImprovedEstimator(base_estimator, pool, final_function=final_function, epsilon=epsilon)
