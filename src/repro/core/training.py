"""Training loop for the CRN model (Section 3.3).

The paper trains CRN with the Adam optimizer, minimising the mean q-error of
the predicted containment rates, and stops early once the validation q-error
converges (early stopping, Section 3.3).  :func:`train_crn` reproduces that
recipe on the NumPy substrate and records the per-epoch convergence history
used by the Figure 3 / Figure 4 benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.crn import CRNConfig, CRNEstimator, CRNModel
from repro.core.featurization import QueryFeaturizer
from repro.core.metrics import q_errors
from repro.datasets.pairs import QueryPair
from repro.nn.data import BatchIterator, train_validation_split
from repro.nn.loss import get_loss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad


@dataclass(frozen=True)
class TrainingConfig:
    """Hyperparameters of the CRN training loop.

    The defaults are the laptop-scale profile; the paper's published settings
    (batch size 128, learning rate 0.001, ~120 epochs over 100k pairs) are one
    configuration change away.

    ``loss_epsilon`` clamps containment rates away from zero inside the
    q-error: a substantial share of generated pairs has a true rate of exactly
    0 (disjoint results), and without a floor those pairs dominate the loss
    with unbounded ratios.  The same floor is applied to the validation
    q-error so training and evaluation agree.
    """

    epochs: int = 50
    batch_size: int = 64
    learning_rate: float = 0.001
    loss: str = "log_q_error"
    loss_epsilon: float = 1e-3
    validation_fraction: float = 0.2
    early_stopping_patience: int = 10
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.loss_epsilon <= 0:
            raise ValueError("loss_epsilon must be positive")
        if not 0.0 <= self.validation_fraction < 1.0:
            raise ValueError("validation_fraction must lie in [0, 1)")
        if self.early_stopping_patience < 0:
            raise ValueError("early_stopping_patience must be non-negative")


@dataclass(frozen=True)
class EpochStats:
    """Metrics recorded after one training epoch."""

    epoch: int
    train_loss: float
    validation_mean_q_error: float
    seconds: float


@dataclass
class TrainingResult:
    """The outcome of a CRN training run."""

    model: CRNModel
    featurizer: QueryFeaturizer
    history: list[EpochStats] = field(default_factory=list)
    best_epoch: int = 0
    best_validation_q_error: float = float("inf")
    stopped_early: bool = False

    def estimator(self, batch_size: int = 256) -> CRNEstimator:
        """Wrap the trained model as a :class:`~repro.core.estimators.ContainmentEstimator`."""
        return CRNEstimator(self.model, self.featurizer, batch_size=batch_size)

    @property
    def epochs_run(self) -> int:
        """Number of epochs actually executed."""
        return len(self.history)


class _FeaturizedPairs:
    """Pairs pre-featurized into padded batches for fast epoch iteration."""

    def __init__(self, featurizer: QueryFeaturizer, pairs: Sequence[QueryPair]) -> None:
        first_sets = [featurizer.featurize(pair.first) for pair in pairs]
        second_sets = [featurizer.featurize(pair.second) for pair in pairs]
        self.first, self.first_mask = featurizer.pad_sets(first_sets)
        self.second, self.second_mask = featurizer.pad_sets(second_sets)
        self.targets = np.asarray([pair.containment_rate for pair in pairs], dtype=np.float64)

    def __len__(self) -> int:
        return len(self.targets)

    def batch(self, indices: np.ndarray) -> tuple[Tensor, Tensor, Tensor, Tensor, Tensor]:
        return (
            Tensor(self.first[indices]),
            Tensor(self.first_mask[indices]),
            Tensor(self.second[indices]),
            Tensor(self.second_mask[indices]),
            Tensor(self.targets[indices]),
        )


def train_crn(
    database_featurizer: QueryFeaturizer,
    pairs: Sequence[QueryPair],
    crn_config: CRNConfig | None = None,
    training_config: TrainingConfig | None = None,
    verbose: bool = False,
) -> TrainingResult:
    """Train a CRN model on labelled query pairs.

    Args:
        database_featurizer: featurizer bound to the training database.
        pairs: labelled training pairs (true containment rates).
        crn_config: architecture configuration (hidden size, pooling, Expand).
        training_config: optimisation configuration.
        verbose: print one line per epoch.

    Returns:
        A :class:`TrainingResult` holding the trained model (restored to the
        best validation epoch) and the convergence history.
    """
    if not pairs:
        raise ValueError("cannot train on an empty pair set")
    crn_config = crn_config or CRNConfig()
    training_config = training_config or TrainingConfig()

    train_pairs, validation_pairs = train_validation_split(
        list(pairs),
        validation_fraction=training_config.validation_fraction,
        seed=training_config.seed,
    )
    if not validation_pairs:
        validation_pairs = train_pairs

    train_data = _FeaturizedPairs(database_featurizer, train_pairs)
    validation_data = _FeaturizedPairs(database_featurizer, validation_pairs)

    model = CRNModel(database_featurizer.vector_size, crn_config)
    optimizer = Adam(model.parameters(), learning_rate=training_config.learning_rate)
    base_loss = get_loss(training_config.loss)
    if training_config.loss in ("q_error", "log_q_error"):
        def loss_function(predictions: Tensor, targets: Tensor) -> Tensor:
            return base_loss(predictions, targets, epsilon=training_config.loss_epsilon)
    else:
        loss_function = base_loss
    iterator = BatchIterator(len(train_data), training_config.batch_size, seed=training_config.seed)

    result = TrainingResult(model=model, featurizer=database_featurizer)
    best_state = model.state_dict()
    epochs_without_improvement = 0

    for epoch in range(1, training_config.epochs + 1):
        start = time.perf_counter()
        epoch_losses: list[float] = []
        for indices in iterator.epoch():
            first, first_mask, second, second_mask, targets = train_data.batch(indices)
            predictions = model(first, first_mask, second, second_mask)
            loss = loss_function(predictions, targets)
            model.zero_grad()
            loss.backward()
            optimizer.step()
            epoch_losses.append(loss.item())

        validation_q_error = evaluate_mean_q_error(
            model, validation_data, epsilon=training_config.loss_epsilon
        )
        stats = EpochStats(
            epoch=epoch,
            train_loss=float(np.mean(epoch_losses)),
            validation_mean_q_error=validation_q_error,
            seconds=time.perf_counter() - start,
        )
        result.history.append(stats)
        if verbose:  # pragma: no cover - console output only
            print(
                f"epoch {epoch:3d}  train loss {stats.train_loss:8.4f}  "
                f"validation q-error {stats.validation_mean_q_error:8.4f}"
            )

        if validation_q_error < result.best_validation_q_error:
            result.best_validation_q_error = validation_q_error
            result.best_epoch = epoch
            best_state = model.state_dict()
            epochs_without_improvement = 0
        else:
            epochs_without_improvement += 1
            if (
                training_config.early_stopping_patience
                and epochs_without_improvement >= training_config.early_stopping_patience
            ):
                result.stopped_early = True
                break

    model.load_state_dict(best_state)
    return result


def evaluate_mean_q_error(
    model: CRNModel, data: _FeaturizedPairs, epsilon: float | None = None
) -> float:
    """Geometric-mean q-error of ``model`` over a featurized pair set.

    The geometric mean (``exp`` of the mean absolute log ratio) is the
    validation metric used for early stopping: unlike the arithmetic mean it
    is not dominated by the handful of clamped zero-rate pairs, so it tracks
    the optimisation objective.  The evaluation tables still report the
    paper's arithmetic mean / percentiles via :mod:`repro.core.metrics`.

    ``epsilon`` defaults to :attr:`TrainingConfig.loss_epsilon` so that
    evaluation agrees with the train-time metric on zero-rate pairs (see
    :func:`evaluate_pairs_q_error` for why the two must share one floor).
    """
    if epsilon is None:
        epsilon = TrainingConfig.loss_epsilon
    with no_grad():
        predictions = model(
            Tensor(data.first), Tensor(data.first_mask), Tensor(data.second), Tensor(data.second_mask)
        ).numpy()
    errors = q_errors(predictions, data.targets, epsilon=epsilon)
    return float(np.exp(np.mean(np.log(errors))))


def evaluate_pairs_q_error(
    estimator: CRNEstimator,
    pairs: Sequence[QueryPair],
    epsilon: float | None = None,
    training_config: TrainingConfig | None = None,
) -> np.ndarray:
    """Per-pair q-errors of a CRN estimator on labelled pairs.

    The zero-rate floor must match the one used during training: a
    substantial share of generated pairs has a true rate of exactly 0, so a
    smaller evaluation epsilon would report systematically larger q-errors
    on those pairs than the validation metric that drove early stopping —
    the numbers would disagree for no modelling reason.  Pass the run's
    ``training_config`` (its :attr:`TrainingConfig.loss_epsilon` is used) or
    an explicit ``epsilon``; by default the shared
    :attr:`TrainingConfig.loss_epsilon` default applies everywhere.
    """
    if epsilon is None:
        config = training_config or TrainingConfig()
        epsilon = config.loss_epsilon
    estimates = estimator.estimate_containments([(pair.first, pair.second) for pair in pairs])
    truths = [pair.containment_rate for pair in pairs]
    return q_errors(estimates, truths, epsilon=epsilon)
