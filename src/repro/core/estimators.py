"""Estimator interfaces.

Two estimator families appear in the paper:

* **Cardinality estimators** map a single query to an estimated result
  cardinality (PostgreSQL, MSCN, and the paper's Cnt2Crd-based technique).
* **Containment estimators** map an ordered query pair ``(Q1, Q2)`` to an
  estimated containment rate ``Q1 ⊂% Q2`` in ``[0, 1]`` (CRN, and any
  cardinality estimator routed through the Crd2Cnt transformation).

Both interfaces provide batch methods with naive default implementations so
vectorized models (CRN, MSCN) can override them for speed while simple
baselines do not have to.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.sql.query import Query


class CardinalityEstimator(abc.ABC):
    """Estimates the result cardinality of a single query."""

    #: Human-readable name used in reports and benchmark tables.
    name: str = "cardinality-estimator"

    @abc.abstractmethod
    def estimate_cardinality(self, query: Query) -> float:
        """Return the estimated number of result rows of ``query``."""

    def estimate_cardinalities(self, queries: Sequence[Query]) -> list[float]:
        """Estimate a batch of queries (default: one at a time)."""
        return [self.estimate_cardinality(query) for query in queries]


class ContainmentEstimator(abc.ABC):
    """Estimates the containment rate of an ordered query pair."""

    #: Human-readable name used in reports and benchmark tables.
    name: str = "containment-estimator"

    @abc.abstractmethod
    def estimate_containment(self, first: Query, second: Query) -> float:
        """Return the estimated rate ``first ⊂% second`` as a fraction in [0, 1]."""

    def estimate_containments(self, pairs: Sequence[tuple[Query, Query]]) -> list[float]:
        """Estimate a batch of ordered pairs (default: one at a time)."""
        return [self.estimate_containment(first, second) for first, second in pairs]
