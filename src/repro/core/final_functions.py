"""Final functions ``F`` for the cardinality estimation technique (Section 5.3.1).

The Cnt2Crd technique produces one cardinality estimate per matching pool
query; the final function collapses that list into a single estimate.  The
paper examines the median, the mean and a 25%-trimmed mean, and settles on the
median.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

#: Signature of a final function: a non-empty list of estimates -> one estimate.
FinalFunction = Callable[[Sequence[float]], float]


def median_final(results: Sequence[float]) -> float:
    """The median of the per-pool-query estimates (the paper's choice)."""
    _require_non_empty(results)
    return float(np.median(np.asarray(results, dtype=np.float64)))


def mean_final(results: Sequence[float]) -> float:
    """The mean of the per-pool-query estimates."""
    _require_non_empty(results)
    return float(np.mean(np.asarray(results, dtype=np.float64)))


def trimmed_mean_final(results: Sequence[float], trim_fraction: float = 0.25) -> float:
    """The trimmed mean: drop the largest/smallest ``trim_fraction`` before averaging."""
    _require_non_empty(results)
    if not 0.0 <= trim_fraction < 0.5:
        raise ValueError("trim_fraction must lie in [0, 0.5)")
    values = np.sort(np.asarray(results, dtype=np.float64))
    trim = int(len(values) * trim_fraction)
    trimmed = values[trim : len(values) - trim] if len(values) > 2 * trim else values
    return float(trimmed.mean())


FINAL_FUNCTIONS: dict[str, FinalFunction] = {
    "median": median_final,
    "mean": mean_final,
    "trimmed_mean": trimmed_mean_final,
}


def get_final_function(name: str) -> FinalFunction:
    """Look up a final function by name (``median``, ``mean`` or ``trimmed_mean``)."""
    if name not in FINAL_FUNCTIONS:
        raise KeyError(f"unknown final function {name!r}; available: {sorted(FINAL_FUNCTIONS)}")
    return FINAL_FUNCTIONS[name]


def _require_non_empty(results: Sequence[float]) -> None:
    if len(results) == 0:
        raise ValueError("final functions require at least one estimate")
