"""The q-error metric and the percentile summaries used throughout the paper.

Every table in the paper's evaluation reports the 50th/75th/90th/95th/99th
percentiles, the maximum and the mean of the q-error over a workload
(Section 3.2.4 and Tables 3-13).  :class:`ErrorSummary` reproduces exactly
those rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

#: The percentiles reported by the paper's tables.
REPORTED_PERCENTILES: tuple[int, ...] = (50, 75, 90, 95, 99)


def q_error(estimate: float, truth: float, epsilon: float = 1e-9) -> float:
    """The q-error ``max(estimate/truth, truth/estimate)`` of a single estimate.

    Both operands are clamped away from zero with ``epsilon`` so that an exact
    zero (empty result, zero containment rate) produces a large-but-finite
    error instead of a division by zero, matching how learned-cardinality
    papers evaluate in practice.
    """
    estimate = max(float(estimate), epsilon)
    truth = max(float(truth), epsilon)
    return estimate / truth if estimate > truth else truth / estimate


def q_errors(estimates: Sequence[float], truths: Sequence[float], epsilon: float = 1e-9) -> np.ndarray:
    """Vectorized q-errors for aligned sequences of estimates and truths."""
    estimates_array = np.maximum(np.asarray(estimates, dtype=np.float64), epsilon)
    truths_array = np.maximum(np.asarray(truths, dtype=np.float64), epsilon)
    if estimates_array.shape != truths_array.shape:
        raise ValueError(
            f"estimates and truths must align, got {estimates_array.shape} vs {truths_array.shape}"
        )
    ratio = estimates_array / truths_array
    return np.maximum(ratio, 1.0 / ratio)


@dataclass(frozen=True)
class ErrorSummary:
    """Percentile / max / mean summary of a set of q-errors (one paper table row)."""

    name: str
    count: int
    percentiles: dict[int, float]
    max: float
    mean: float
    median: float

    @classmethod
    def from_errors(cls, name: str, errors: Iterable[float]) -> "ErrorSummary":
        """Summarize an iterable of q-errors."""
        values = np.asarray(list(errors), dtype=np.float64)
        if values.size == 0:
            raise ValueError("cannot summarize an empty error list")
        percentiles = {p: float(np.percentile(values, p)) for p in REPORTED_PERCENTILES}
        return cls(
            name=name,
            count=int(values.size),
            percentiles=percentiles,
            max=float(values.max()),
            mean=float(values.mean()),
            median=float(np.median(values)),
        )

    @classmethod
    def from_estimates(
        cls, name: str, estimates: Sequence[float], truths: Sequence[float]
    ) -> "ErrorSummary":
        """Summarize the q-errors of aligned estimate/truth sequences."""
        return cls.from_errors(name, q_errors(estimates, truths))

    def row(self) -> dict[str, float]:
        """The summary as a flat dict matching the paper's column layout."""
        row: dict[str, float] = {f"{p}th": self.percentiles[p] for p in REPORTED_PERCENTILES}
        row["max"] = self.max
        row["mean"] = self.mean
        return row

    def __str__(self) -> str:
        cells = "  ".join(f"{p}th={self.percentiles[p]:.4g}" for p in REPORTED_PERCENTILES)
        return f"{self.name}: {cells}  max={self.max:.4g}  mean={self.mean:.4g}  (n={self.count})"


def summarize_by_group(
    name: str,
    estimates: Sequence[float],
    truths: Sequence[float],
    groups: Sequence[int],
    epsilon: float = 1e-9,
) -> dict[int, ErrorSummary]:
    """Summarize q-errors separately for each group key (e.g. per join count).

    Used for Table 9 / Figure 11, which report the mean and median q-error for
    every join count separately.  ``epsilon`` is the same zero floor as in
    :func:`q_errors` (use 1.0 for cardinalities so empty results count as one
    row).
    """
    if not (len(estimates) == len(truths) == len(groups)):
        raise ValueError("estimates, truths and groups must have the same length")
    errors = q_errors(estimates, truths, epsilon=epsilon)
    per_group: dict[int, list[float]] = {}
    for error, group in zip(errors, groups):
        per_group.setdefault(int(group), []).append(float(error))
    return {
        group: ErrorSummary.from_errors(f"{name}[{group}]", values)
        for group, values in sorted(per_group.items())
    }
