"""Oracle (ground-truth) estimators.

These wrap exact execution behind the estimator interfaces.  They are not part
of the paper's evaluation -- no practical system can afford exact execution at
estimation time -- but they serve as sanity references: the Cnt2Crd technique
fed with oracle containment rates should reproduce true cardinalities almost
exactly, which the integration tests verify.
"""

from __future__ import annotations

from repro.core.estimators import CardinalityEstimator, ContainmentEstimator
from repro.db.database import Database
from repro.db.intersection import TrueCardinalityOracle
from repro.sql.query import Query


class OracleCardinalityEstimator(CardinalityEstimator):
    """A cardinality estimator that returns exact cardinalities."""

    name = "Oracle"

    def __init__(self, database: Database, oracle: TrueCardinalityOracle | None = None) -> None:
        self.oracle = oracle or TrueCardinalityOracle(database)

    def estimate_cardinality(self, query: Query) -> float:
        return float(self.oracle.cardinality(query))


class OracleContainmentEstimator(ContainmentEstimator):
    """A containment estimator that returns exact containment rates."""

    name = "OracleContainment"

    def __init__(self, database: Database, oracle: TrueCardinalityOracle | None = None) -> None:
        self.oracle = oracle or TrueCardinalityOracle(database)

    def estimate_containment(self, first: Query, second: Query) -> float:
        return self.oracle.containment_rate(first, second)
