"""Query featurization for the CRN model (Section 3.2.1, Table 1).

A query is represented as a *set of vectors*, one vector per element of its
table set ``T``, join set ``J`` and predicate set ``P``.  Unlike MSCN, all
vectors share one fixed layout so the same set-encoder network can consume
tables, joins and predicates alike:

====================  ==========  ===========================================
segment               size        contents
====================  ==========  ===========================================
``T-seg``             ``#T``      one-hot of the table (table elements)
``J1-seg``            ``#C``      one-hot of the join's left column
``J2-seg``            ``#C``      one-hot of the join's right column
``C-seg``             ``#C``      one-hot of the predicate's column
``O-seg``             ``#O``      one-hot of the predicate's operator
``V-seg``             ``1``       predicate value, min-max normalized to [0,1]
====================  ==========  ===========================================

giving a total dimension ``L = #T + 3 * #C + #O + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.database import Database
from repro.db.schema import DatabaseSchema
from repro.sql.query import OPERATORS, Query


@dataclass(frozen=True)
class FeatureLayout:
    """The segment offsets of the shared vector layout (Table 1).

    Attributes:
        num_tables: ``#T``, number of tables in the database schema.
        num_columns: ``#C``, number of qualified columns in the schema.
        num_operators: ``#O``, number of predicate operators.
    """

    num_tables: int
    num_columns: int
    num_operators: int

    @property
    def table_offset(self) -> int:
        """Start of the T-seg segment."""
        return 0

    @property
    def join_left_offset(self) -> int:
        """Start of the J1-seg segment."""
        return self.num_tables

    @property
    def join_right_offset(self) -> int:
        """Start of the J2-seg segment."""
        return self.num_tables + self.num_columns

    @property
    def predicate_column_offset(self) -> int:
        """Start of the C-seg segment."""
        return self.num_tables + 2 * self.num_columns

    @property
    def operator_offset(self) -> int:
        """Start of the O-seg segment."""
        return self.num_tables + 3 * self.num_columns

    @property
    def value_offset(self) -> int:
        """Index of the single V-seg entry."""
        return self.num_tables + 3 * self.num_columns + self.num_operators

    @property
    def vector_size(self) -> int:
        """The total vector dimension ``L``."""
        return self.num_tables + 3 * self.num_columns + self.num_operators + 1


class QueryFeaturizer:
    """Converts queries into the CRN set-of-vectors representation.

    The featurizer is bound to a database snapshot: the one-hot layouts come
    from the schema and predicate values are normalized with each column's
    actual min/max (Section 3.2.1).

    Args:
        database: the database snapshot the queries run against.
    """

    def __init__(self, database: Database) -> None:
        self.database = database
        schema: DatabaseSchema = database.schema
        self._table_index = {alias: i for i, alias in enumerate(schema.aliases)}
        self._column_index = {name: i for i, name in enumerate(schema.qualified_columns())}
        self._operator_index = {op: i for i, op in enumerate(OPERATORS)}
        self.layout = FeatureLayout(
            num_tables=len(self._table_index),
            num_columns=len(self._column_index),
            num_operators=len(self._operator_index),
        )
        self._value_ranges = {
            qualified: database.column_range(*qualified.split(".", 1))
            for qualified in self._column_index
        }
        # Everything featurization depends on besides the query itself: the
        # one-hot layouts and the normalization ranges.  Hashing it into the
        # cache key lets caches be shared (or at least collide safely) across
        # featurizers bound to different database snapshots.
        self._fingerprint = hash(
            (
                tuple(self._table_index),
                tuple(self._column_index),
                tuple(self._operator_index),
                tuple(sorted(self._value_ranges.items())),
            )
        )

    @property
    def vector_size(self) -> int:
        """The featurized vector dimension ``L``."""
        return self.layout.vector_size

    @property
    def fingerprint(self) -> int:
        """A hash of the featurizer's layout and normalization ranges.

        Two featurizers with equal fingerprints featurize every query
        identically, so cached featurizations keyed by :meth:`cache_key`
        remain valid across featurizer instances over the same snapshot.
        """
        return self._fingerprint

    def cache_key(self, query: Query) -> tuple[int, Query]:
        """A hashable memoization key for :meth:`featurize`.

        Queries are immutable and hash structurally, so ``(fingerprint,
        query)`` uniquely identifies the featurization result; see
        :class:`repro.serving.FeaturizationCache`.
        """
        return (self._fingerprint, query)

    # ------------------------------------------------------------------ #
    # featurization

    def featurize(self, query: Query) -> np.ndarray:
        """Return ``query``'s set of feature vectors as a ``(set size, L)`` matrix.

        The set always contains at least one vector (every query references at
        least one table), so the average pooling of the set encoder is well
        defined.
        """
        rows: list[np.ndarray] = []
        layout = self.layout
        for table in query.tables:
            vector = np.zeros(layout.vector_size)
            vector[layout.table_offset + self._table_of(table.alias)] = 1.0
            rows.append(vector)
        for join in query.joins:
            vector = np.zeros(layout.vector_size)
            vector[layout.join_left_offset + self._column_of(join.left)] = 1.0
            vector[layout.join_right_offset + self._column_of(join.right)] = 1.0
            rows.append(vector)
        for predicate in query.predicates:
            vector = np.zeros(layout.vector_size)
            vector[layout.predicate_column_offset + self._column_of(predicate.qualified_column)] = 1.0
            vector[layout.operator_offset + self._operator_index[predicate.operator]] = 1.0
            vector[layout.value_offset] = self.normalize_value(
                predicate.qualified_column, predicate.value
            )
            rows.append(vector)
        return np.stack(rows, axis=0)

    def featurize_pair(self, first: Query, second: Query) -> tuple[np.ndarray, np.ndarray]:
        """Featurize an ordered query pair into two vector sets."""
        return self.featurize(first), self.featurize(second)

    def normalize_value(self, qualified_column: str, value: float) -> float:
        """Min-max normalize a predicate value using the column's value range."""
        low, high = self._value_ranges[qualified_column]
        if high == low:
            return 0.5
        return float(np.clip((value - low) / (high - low), 0.0, 1.0))

    # ------------------------------------------------------------------ #
    # batching

    def pad_sets(self, sets: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
        """Pad variable-size vector sets into a dense batch.

        Returns:
            A ``(batch, max set size, L)`` array of padded vectors and a
            ``(batch, max set size, 1)`` mask that is 1 for real vectors and 0
            for padding, ready for masked average pooling.
        """
        if not sets:
            raise ValueError("cannot pad an empty batch")
        max_size = max(matrix.shape[0] for matrix in sets)
        batch = np.zeros((len(sets), max_size, self.vector_size))
        mask = np.zeros((len(sets), max_size, 1))
        for index, matrix in enumerate(sets):
            batch[index, : matrix.shape[0], :] = matrix
            mask[index, : matrix.shape[0], 0] = 1.0
        return batch, mask

    def featurize_batch(self, queries: list[Query]) -> tuple[np.ndarray, np.ndarray]:
        """Featurize and pad a batch of queries in one call."""
        return self.pad_sets([self.featurize(query) for query in queries])

    # ------------------------------------------------------------------ #
    # internals

    def _table_of(self, alias: str) -> int:
        if alias not in self._table_index:
            raise KeyError(f"alias {alias!r} is not part of the database schema")
        return self._table_index[alias]

    def _column_of(self, qualified_column: str) -> int:
        if qualified_column not in self._column_index:
            raise KeyError(f"column {qualified_column!r} is not part of the database schema")
        return self._column_index[qualified_column]
