"""In-memory relational engine substrate.

The paper evaluates on PostgreSQL over the real IMDb database.  This package
provides the substrate we substitute for that stack: a columnar in-memory
database with exact execution of the paper's conjunctive query class, a
statistics catalog (histograms, most-common values, distinct counts) for the
PostgreSQL-style baseline estimator, and materialized base-table samples for
the sampling-enhanced MSCN baseline.
"""

from repro.db.database import Database
from repro.db.executor import ExecutionResult, QueryExecutor
from repro.db.intersection import TrueCardinalityOracle, true_cardinality, true_containment_rate
from repro.db.sampling import SampleCatalog, TableSample
from repro.db.schema import Column, ColumnRole, ColumnType, DatabaseSchema, ForeignKey, TableSchema
from repro.db.statistics import ColumnStatistics, StatisticsCatalog, TableStatistics
from repro.db.table import Table

__all__ = [
    "Column",
    "ColumnRole",
    "ColumnStatistics",
    "ColumnType",
    "Database",
    "DatabaseSchema",
    "ExecutionResult",
    "ForeignKey",
    "QueryExecutor",
    "SampleCatalog",
    "StatisticsCatalog",
    "Table",
    "TableSample",
    "TableSchema",
    "TableStatistics",
    "TrueCardinalityOracle",
    "true_cardinality",
    "true_containment_rate",
]
