"""Ground-truth cardinalities and containment rates from exact execution.

Because containment rates are only defined for query pairs with identical
SELECT/FROM clauses, the true containment rate ``Q1 ⊂% Q2`` equals
``|Q1 ∩ Q2| / |Q1|`` where ``Q1 ∩ Q2`` conjoins both WHERE clauses (Section
4.1.1) -- so ground truth only needs exact cardinalities, which the executor
provides.
"""

from __future__ import annotations

from repro.db.database import Database
from repro.db.executor import QueryExecutor
from repro.sql.intersection import intersect_queries, same_from_clause
from repro.sql.query import Query


def true_cardinality(database: Database, query: Query) -> int:
    """Exact result cardinality of ``query`` on ``database``."""
    return QueryExecutor(database).cardinality(query)


def true_containment_rate(database: Database, first: Query, second: Query) -> float:
    """Exact containment rate ``first ⊂% second`` on ``database`` (in [0, 1])."""
    return TrueCardinalityOracle(database).containment_rate(first, second)


class TrueCardinalityOracle:
    """Memoizing oracle for exact cardinalities and containment rates.

    Workload labelling asks for many containment rates sharing sub-queries, so
    the oracle shares one memoizing :class:`QueryExecutor` across calls.
    """

    def __init__(self, database: Database, executor: QueryExecutor | None = None) -> None:
        self.database = database
        self.executor = executor or QueryExecutor(database)

    def cardinality(self, query: Query) -> int:
        """Exact cardinality of ``query``."""
        return self.executor.cardinality(query)

    def containment_rate(self, first: Query, second: Query) -> float:
        """Exact containment rate ``first ⊂% second`` as a fraction in [0, 1].

        By definition (Section 2), the rate is 0 when ``first``'s result is
        empty.

        Raises:
            ValueError: if the queries do not share a FROM clause.
        """
        if not same_from_clause(first, second):
            raise ValueError("containment rate is only defined for identical FROM clauses")
        first_cardinality = self.cardinality(first)
        if first_cardinality == 0:
            return 0.0
        intersection_cardinality = self.cardinality(intersect_queries(first, second))
        return intersection_cardinality / first_cardinality
