"""Schema objects: columns, tables, foreign keys and the database schema.

The schema distinguishes *key* columns (primary / foreign keys, used only in
join clauses) from *non-key* columns (the columns the query generator places
predicates on), mirroring the paper's query generator which "uniformly draws a
non-key column from the relevant table" for each predicate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator


class ColumnType(enum.Enum):
    """Storage type of a column.

    All columns are stored as NumPy numeric arrays; ``STRING`` columns hold
    integer codes produced by the dictionary encoding in
    :mod:`repro.extensions.strings`.
    """

    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"


class ColumnRole(enum.Enum):
    """Role of a column within the schema."""

    PRIMARY_KEY = "primary_key"
    FOREIGN_KEY = "foreign_key"
    ATTRIBUTE = "attribute"


@dataclass(frozen=True)
class Column:
    """A single column definition."""

    name: str
    type: ColumnType = ColumnType.INTEGER
    role: ColumnRole = ColumnRole.ATTRIBUTE

    @property
    def is_key(self) -> bool:
        """Whether the column is a primary or foreign key."""
        return self.role in (ColumnRole.PRIMARY_KEY, ColumnRole.FOREIGN_KEY)


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key relationship ``table.column -> referenced_table.referenced_column``."""

    table: str
    column: str
    referenced_table: str
    referenced_column: str


@dataclass(frozen=True)
class TableSchema:
    """Schema of a single table."""

    name: str
    alias: str
    columns: tuple[Column, ...]

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate column names in table {self.name!r}: {names}")

    def has_column(self, name: str) -> bool:
        """Whether the table defines a column called ``name``."""
        return any(column.name == name for column in self.columns)

    def column(self, name: str) -> Column:
        """Return the column definition for ``name``."""
        for column in self.columns:
            if column.name == name:
                return column
        raise KeyError(f"table {self.name!r} has no column {name!r}")

    @property
    def column_names(self) -> tuple[str, ...]:
        """Names of all columns, in definition order."""
        return tuple(column.name for column in self.columns)

    @property
    def non_key_columns(self) -> tuple[Column, ...]:
        """Columns eligible for generated predicates (non-key attribute columns)."""
        return tuple(column for column in self.columns if not column.is_key)

    @property
    def key_columns(self) -> tuple[Column, ...]:
        """Primary / foreign key columns (used only in join clauses)."""
        return tuple(column for column in self.columns if column.is_key)


@dataclass(frozen=True)
class DatabaseSchema:
    """Schema of the whole database: tables plus foreign-key join edges."""

    tables: tuple[TableSchema, ...]
    foreign_keys: tuple[ForeignKey, ...] = ()

    def __post_init__(self) -> None:
        names = [table.name for table in self.tables]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate table names: {names}")
        aliases = [table.alias for table in self.tables]
        if len(aliases) != len(set(aliases)):
            raise ValueError(f"duplicate table aliases: {aliases}")
        for fk in self.foreign_keys:
            source = self.table(fk.table)
            target = self.table(fk.referenced_table)
            if not source.has_column(fk.column):
                raise ValueError(f"foreign key column {fk.table}.{fk.column} does not exist")
            if not target.has_column(fk.referenced_column):
                raise ValueError(
                    f"referenced column {fk.referenced_table}.{fk.referenced_column} does not exist"
                )

    def has_table(self, name: str) -> bool:
        """Whether the schema defines a table called ``name``."""
        return any(table.name == name for table in self.tables)

    def table(self, name: str) -> TableSchema:
        """Return the table schema for ``name``."""
        for table in self.tables:
            if table.name == name:
                return table
        raise KeyError(f"unknown table {name!r}")

    def table_by_alias(self, alias: str) -> TableSchema:
        """Return the table schema whose conventional alias is ``alias``."""
        for table in self.tables:
            if table.alias == alias:
                return table
        raise KeyError(f"no table with alias {alias!r}")

    @property
    def table_names(self) -> tuple[str, ...]:
        """All table names, in definition order."""
        return tuple(table.name for table in self.tables)

    @property
    def aliases(self) -> tuple[str, ...]:
        """All conventional table aliases, in definition order."""
        return tuple(table.alias for table in self.tables)

    def qualified_columns(self) -> tuple[str, ...]:
        """All ``alias.column`` pairs in the database, in a stable order.

        This ordering defines the one-hot layout used by the featurizers
        (Section 3.2.1's ``#C`` columns).
        """
        qualified: list[str] = []
        for table in self.tables:
            for column in table.columns:
                qualified.append(f"{table.alias}.{column.name}")
        return tuple(qualified)

    def join_edges(self) -> tuple[tuple[str, str, str, str], ...]:
        """All joinable edges as ``(alias, column, alias, column)`` tuples.

        Derived from the foreign keys; the query generator picks connected
        subsets of these edges (Section 3.1.2: tables "that can join with each
        other in the database").
        """
        edges: list[tuple[str, str, str, str]] = []
        for fk in self.foreign_keys:
            source = self.table(fk.table)
            target = self.table(fk.referenced_table)
            edges.append((source.alias, fk.column, target.alias, fk.referenced_column))
        return tuple(edges)

    def iter_columns(self) -> Iterator[tuple[TableSchema, Column]]:
        """Iterate over ``(table, column)`` pairs in definition order."""
        for table in self.tables:
            for column in table.columns:
                yield table, column
