"""Materialized base-table samples and per-query sample bitmaps.

The paper's strongest MSCN variant ("MSCN with 1000 samples", Section 6.6)
augments the table one-hot vectors with a bitmap describing which rows of a
materialized per-table sample satisfy the query's predicates on that table.
This module provides those samples, and also powers the simple
random-sampling cardinality baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.database import Database
from repro.sql.query import Predicate, Query


@dataclass
class TableSample:
    """A uniform sample of one base table.

    Attributes:
        table_name: the sampled table.
        row_ids: sampled row ids in the base table.
        sample_size: the nominal sample size (bitmaps are padded to this size
            when the table has fewer rows than requested).
    """

    table_name: str
    row_ids: np.ndarray
    sample_size: int

    @property
    def actual_size(self) -> int:
        """Number of rows actually sampled (≤ ``sample_size``)."""
        return int(len(self.row_ids))


class SampleCatalog:
    """Per-table materialized samples for a database snapshot."""

    def __init__(self, database: Database, samples: dict[str, TableSample], sample_size: int) -> None:
        self._database = database
        self._samples = samples
        self.sample_size = sample_size

    @classmethod
    def build(cls, database: Database, sample_size: int = 1000, seed: int = 0) -> "SampleCatalog":
        """Draw a uniform sample of ``sample_size`` rows from every table."""
        rng = np.random.default_rng(seed)
        samples: dict[str, TableSample] = {}
        for table_name in database.table_names:
            table = database.table(table_name)
            row_ids = table.sample_row_ids(sample_size, rng)
            samples[table_name] = TableSample(table_name=table_name, row_ids=row_ids, sample_size=sample_size)
        return cls(database, samples, sample_size)

    def sample(self, table_name: str) -> TableSample:
        """Return the sample for ``table_name``."""
        if table_name not in self._samples:
            raise KeyError(f"no sample for table {table_name!r}")
        return self._samples[table_name]

    def bitmap(self, table_name: str, predicates: tuple[Predicate, ...]) -> np.ndarray:
        """Bitmap (length ``sample_size``) of sample rows satisfying ``predicates``.

        Positions beyond the table's actual sample size are zero-padded, so all
        bitmaps share the same length regardless of table size.
        """
        sample = self.sample(table_name)
        table = self._database.table(table_name)
        bitmap = np.zeros(self.sample_size, dtype=np.float64)
        mask = np.ones(sample.actual_size, dtype=bool)
        for predicate in predicates:
            mask &= table.evaluate_predicate(predicate, sample.row_ids)
        bitmap[: sample.actual_size] = mask.astype(np.float64)
        return bitmap

    def query_bitmaps(self, query: Query) -> dict[str, np.ndarray]:
        """Per-alias sample bitmaps for all tables referenced by ``query``."""
        alias_to_table = query.alias_to_table()
        return {
            alias: self.bitmap(alias_to_table[alias], query.predicates_for(alias))
            for alias in query.aliases
        }

    def selectivity(self, table_name: str, predicates: tuple[Predicate, ...]) -> float:
        """Sample-estimated selectivity of a conjunction of predicates on one table."""
        sample = self.sample(table_name)
        if sample.actual_size == 0:
            return 0.0
        bitmap = self.bitmap(table_name, predicates)
        return float(bitmap[: sample.actual_size].mean())
