"""Columnar in-memory table storage.

Each table stores its columns as 1-D NumPy arrays of equal length.  All values
are numeric (string columns are dictionary-encoded by the dataset generator or
the strings extension), which keeps predicate evaluation fully vectorized.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.db.schema import ColumnType, TableSchema
from repro.sql.query import ComparisonOperator, Predicate


class Table:
    """An immutable-by-convention columnar table.

    Args:
        schema: the table's schema.
        columns: mapping from column name to a 1-D array-like of values.  All
            columns must have the same length and every schema column must be
            present.
    """

    def __init__(self, schema: TableSchema, columns: Mapping[str, Iterable[float]]) -> None:
        self.schema = schema
        self._columns: dict[str, np.ndarray] = {}
        length: int | None = None
        for column in schema.columns:
            if column.name not in columns:
                raise ValueError(f"missing data for column {schema.name}.{column.name}")
            dtype = np.float64 if column.type is ColumnType.FLOAT else np.int64
            values = np.asarray(columns[column.name], dtype=dtype)
            if values.ndim != 1:
                raise ValueError(f"column {column.name} must be one-dimensional")
            if length is None:
                length = len(values)
            elif len(values) != length:
                raise ValueError(
                    f"column {column.name} has length {len(values)}, expected {length}"
                )
            self._columns[column.name] = values
        extra = set(columns) - set(schema.column_names)
        if extra:
            raise ValueError(f"unknown columns for table {schema.name!r}: {sorted(extra)}")
        self._length = length or 0

    @property
    def name(self) -> str:
        """The table's name."""
        return self.schema.name

    @property
    def num_rows(self) -> int:
        """Number of rows in the table."""
        return self._length

    def __len__(self) -> int:
        return self._length

    def column(self, name: str) -> np.ndarray:
        """Return the column array for ``name`` (shared, do not mutate)."""
        if name not in self._columns:
            raise KeyError(f"table {self.name!r} has no column {name!r}")
        return self._columns[name]

    def column_values(self, name: str, row_ids: np.ndarray | None = None) -> np.ndarray:
        """Return column values, optionally restricted to ``row_ids``."""
        values = self.column(name)
        if row_ids is None:
            return values
        return values[row_ids]

    def evaluate_predicate(self, predicate: Predicate, row_ids: np.ndarray | None = None) -> np.ndarray:
        """Return a boolean mask of rows satisfying ``predicate``.

        Args:
            predicate: a column predicate on this table.
            row_ids: if given, evaluate only those rows (the mask is aligned
                with ``row_ids``); otherwise evaluate all rows.
        """
        values = self.column_values(predicate.column, row_ids)
        if predicate.operator is ComparisonOperator.LT:
            return values < predicate.value
        if predicate.operator is ComparisonOperator.GT:
            return values > predicate.value
        return values == predicate.value

    def filter_rows(self, predicates: Iterable[Predicate]) -> np.ndarray:
        """Return the row ids satisfying all ``predicates`` (empty iterable → all rows)."""
        mask = np.ones(self._length, dtype=bool)
        for predicate in predicates:
            mask &= self.evaluate_predicate(predicate)
        return np.flatnonzero(mask)

    def value_range(self, name: str) -> tuple[float, float]:
        """Return ``(min, max)`` of a column (0, 0 for an empty table)."""
        values = self.column(name)
        if len(values) == 0:
            return 0.0, 0.0
        return float(values.min()), float(values.max())

    def sample_row_ids(self, sample_size: int, rng: np.random.Generator) -> np.ndarray:
        """Return up to ``sample_size`` distinct row ids, uniformly at random."""
        if sample_size >= self._length:
            return np.arange(self._length)
        return rng.choice(self._length, size=sample_size, replace=False)
