"""ANALYZE-style statistics catalog.

This is the substrate behind the PostgreSQL-like baseline estimator: for every
column it records the row count, minimum/maximum, number of distinct values, a
most-common-values (MCV) list with frequencies and an equi-depth histogram of
the remaining values -- the same statistics PostgreSQL's ``ANALYZE`` collects
and its selectivity functions consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.db.database import Database
from repro.sql.query import ComparisonOperator, Predicate

#: Number of most-common values kept per column (PostgreSQL's default_statistics_target
#: keeps 100; a smaller list is plenty at our scale).
DEFAULT_MCV_SIZE = 50

#: Number of equi-depth histogram buckets per column.
DEFAULT_HISTOGRAM_BUCKETS = 100


@dataclass(frozen=True)
class ColumnStatistics:
    """Statistics of a single column."""

    row_count: int
    n_distinct: int
    min_value: float
    max_value: float
    mcv_values: np.ndarray
    mcv_fractions: np.ndarray
    histogram_bounds: np.ndarray
    non_mcv_fraction: float

    @classmethod
    def from_values(
        cls,
        values: np.ndarray,
        mcv_size: int = DEFAULT_MCV_SIZE,
        histogram_buckets: int = DEFAULT_HISTOGRAM_BUCKETS,
    ) -> "ColumnStatistics":
        """Compute statistics for a column's values."""
        row_count = int(len(values))
        if row_count == 0:
            return cls(0, 0, 0.0, 0.0, np.empty(0), np.empty(0), np.empty(0), 0.0)
        uniques, counts = np.unique(values, return_counts=True)
        n_distinct = int(len(uniques))

        order = np.argsort(counts)[::-1]
        mcv_count = min(mcv_size, n_distinct)
        mcv_idx = order[:mcv_count]
        mcv_values = uniques[mcv_idx].astype(np.float64)
        mcv_fractions = counts[mcv_idx].astype(np.float64) / row_count
        non_mcv_fraction = float(1.0 - mcv_fractions.sum())

        mcv_set = set(mcv_values.tolist())
        rest_mask = ~np.isin(values, mcv_values)
        rest = values[rest_mask]
        if len(rest) >= 2:
            buckets = min(histogram_buckets, max(1, len(np.unique(rest)) - 1))
            quantiles = np.linspace(0.0, 1.0, buckets + 1)
            histogram_bounds = np.quantile(rest.astype(np.float64), quantiles)
        else:
            histogram_bounds = np.empty(0)
        return cls(
            row_count=row_count,
            n_distinct=n_distinct,
            min_value=float(values.min()),
            max_value=float(values.max()),
            mcv_values=mcv_values,
            mcv_fractions=mcv_fractions,
            histogram_bounds=histogram_bounds,
            non_mcv_fraction=non_mcv_fraction,
        )

    # ------------------------------------------------------------------ #
    # selectivity estimation (PostgreSQL-style)

    def equality_selectivity(self, value: float) -> float:
        """Estimated fraction of rows with ``column = value``."""
        if self.row_count == 0 or self.n_distinct == 0:
            return 0.0
        matches = np.flatnonzero(self.mcv_values == value)
        if len(matches) > 0:
            return float(self.mcv_fractions[matches[0]])
        remaining_distinct = max(self.n_distinct - len(self.mcv_values), 1)
        return max(self.non_mcv_fraction / remaining_distinct, 0.0)

    def range_selectivity(self, operator: ComparisonOperator, value: float) -> float:
        """Estimated fraction of rows with ``column <op> value`` for ``<`` / ``>``."""
        if self.row_count == 0:
            return 0.0
        if operator is ComparisonOperator.EQ:
            return self.equality_selectivity(value)
        mcv_fraction = 0.0
        for mcv_value, fraction in zip(self.mcv_values, self.mcv_fractions):
            if operator.evaluate(float(mcv_value), value):
                mcv_fraction += float(fraction)
        histogram_fraction = self._histogram_fraction(operator, value) * self.non_mcv_fraction
        return float(np.clip(mcv_fraction + histogram_fraction, 0.0, 1.0))

    def _histogram_fraction(self, operator: ComparisonOperator, value: float) -> float:
        bounds = self.histogram_bounds
        if len(bounds) < 2:
            # Fall back to a uniform assumption over [min, max].
            if self.max_value == self.min_value:
                below = 0.5
            else:
                below = (value - self.min_value) / (self.max_value - self.min_value)
            below = float(np.clip(below, 0.0, 1.0))
            return below if operator is ComparisonOperator.LT else 1.0 - below
        num_buckets = len(bounds) - 1
        if value <= bounds[0]:
            fraction_below = 0.0
        elif value >= bounds[-1]:
            fraction_below = 1.0
        else:
            bucket = int(np.searchsorted(bounds, value, side="right")) - 1
            bucket = min(max(bucket, 0), num_buckets - 1)
            lower, upper = float(bounds[bucket]), float(bounds[bucket + 1])
            within = 0.5 if upper == lower else (value - lower) / (upper - lower)
            fraction_below = (bucket + within) / num_buckets
        return fraction_below if operator is ComparisonOperator.LT else 1.0 - fraction_below


@dataclass(frozen=True)
class TableStatistics:
    """Statistics for a whole table."""

    name: str
    row_count: int
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStatistics:
        """Return statistics for a column."""
        if name not in self.columns:
            raise KeyError(f"no statistics for column {self.name}.{name}")
        return self.columns[name]


class StatisticsCatalog:
    """Per-database statistics (the output of an ANALYZE pass)."""

    def __init__(self, tables: dict[str, TableStatistics], alias_to_table: dict[str, str]) -> None:
        self._tables = tables
        self._alias_to_table = alias_to_table

    @classmethod
    def analyze(
        cls,
        database: Database,
        mcv_size: int = DEFAULT_MCV_SIZE,
        histogram_buckets: int = DEFAULT_HISTOGRAM_BUCKETS,
    ) -> "StatisticsCatalog":
        """Collect statistics for every column of every table in ``database``."""
        tables: dict[str, TableStatistics] = {}
        for table_schema in database.schema.tables:
            table = database.table(table_schema.name)
            columns = {
                column.name: ColumnStatistics.from_values(
                    table.column(column.name), mcv_size=mcv_size, histogram_buckets=histogram_buckets
                )
                for column in table_schema.columns
            }
            tables[table_schema.name] = TableStatistics(
                name=table_schema.name, row_count=table.num_rows, columns=columns
            )
        alias_to_table = {schema.alias: schema.name for schema in database.schema.tables}
        return cls(tables, alias_to_table)

    def table(self, name: str) -> TableStatistics:
        """Return statistics for the table called ``name``."""
        if name not in self._tables:
            raise KeyError(f"no statistics for table {name!r}")
        return self._tables[name]

    def table_by_alias(self, alias: str) -> TableStatistics:
        """Return statistics for the table with conventional alias ``alias``."""
        if alias not in self._alias_to_table:
            raise KeyError(f"no table with alias {alias!r}")
        return self.table(self._alias_to_table[alias])

    def predicate_selectivity(self, table_name: str, predicate: Predicate) -> float:
        """Estimated selectivity of a single column predicate on ``table_name``."""
        stats = self.table(table_name).column(predicate.column)
        if predicate.operator is ComparisonOperator.EQ:
            return stats.equality_selectivity(predicate.value)
        return stats.range_selectivity(predicate.operator, predicate.value)
