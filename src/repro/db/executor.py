"""Exact execution of conjunctive queries over the in-memory database.

The executor evaluates the paper's query class exactly:

1. apply each table's column predicates to obtain per-table candidate rows,
2. combine tables along the query's equi-join clauses with vectorized
   sort-merge joins (NumPy only),
3. produce the result either as a full set of row-id tuples (one row id per
   FROM-clause table) or as a count-only cardinality.

True cardinalities and true containment rates for workload labelling are
derived from this executor (see :mod:`repro.db.intersection`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.database import Database
from repro.sql.query import JoinClause, Query


class DisconnectedJoinGraphError(ValueError):
    """Raised for multi-table queries whose join graph is not connected.

    The paper's query generator only emits queries whose tables "can join with
    each other", i.e. connected join graphs, so a disconnected graph indicates
    a malformed query rather than a supported cross product.
    """


@dataclass
class ExecutionResult:
    """The result of executing a conjunctive query.

    Attributes:
        aliases: FROM-clause aliases in canonical (sorted) order.
        row_ids: integer array of shape ``(cardinality, len(aliases))``; row
            ``k`` gives, for each alias, the base-table row id contributing to
            the ``k``-th result tuple.
    """

    aliases: tuple[str, ...]
    row_ids: np.ndarray

    @property
    def cardinality(self) -> int:
        """Number of result tuples."""
        return int(self.row_ids.shape[0])

    def tuple_set(self) -> set[tuple[int, ...]]:
        """The result as a set of row-id tuples (for set-level comparisons)."""
        return {tuple(int(v) for v in row) for row in self.row_ids}


class QueryExecutor:
    """Executes conjunctive queries against a :class:`Database`."""

    def __init__(self, database: Database, max_intermediate_rows: int = 50_000_000) -> None:
        self.database = database
        self.max_intermediate_rows = max_intermediate_rows
        self._cardinality_cache: dict[Query, int] = {}

    def execute(self, query: Query) -> ExecutionResult:
        """Execute ``query`` and return the full result (row-id tuples)."""
        aliases, columns = self._execute_columns(query)
        if columns:
            row_ids = np.stack([columns[alias] for alias in aliases], axis=1)
        else:
            row_ids = np.empty((0, len(aliases)), dtype=np.int64)
        return ExecutionResult(aliases=aliases, row_ids=row_ids)

    def cardinality(self, query: Query, use_cache: bool = True) -> int:
        """Return the exact result cardinality of ``query``.

        Tree-shaped join graphs (which cover every query the paper's generator
        produces -- stars around ``title``) are counted with a bottom-up
        per-join-key aggregation that never materializes the join, so even
        predicate-free many-way joins with results in the hundreds of millions
        of tuples are counted in milliseconds.  Other queries fall back to full
        execution.  Results are memoized because workload labelling evaluates
        the same sub-queries (e.g. ``Q1`` for many ``Q1 ∩ Q2`` pairs)
        repeatedly.
        """
        if use_cache and query in self._cardinality_cache:
            return self._cardinality_cache[query]
        cardinality = self._count_tree_join(query)
        if cardinality is None:
            aliases, columns = self._execute_columns(query)
            cardinality = int(len(columns[aliases[0]])) if columns else 0
        if use_cache:
            self._cardinality_cache[query] = cardinality
        return cardinality

    def clear_cache(self) -> None:
        """Drop all memoized cardinalities."""
        self._cardinality_cache.clear()

    # ------------------------------------------------------------------ #
    # count-only fast path for acyclic join graphs

    def _count_tree_join(self, query: Query) -> int | None:
        """Exact cardinality via bottom-up aggregation, or ``None`` if unsupported.

        Supported queries have a join graph that is a tree over the FROM
        aliases (exactly ``len(aliases) - 1`` join edges, connected, one edge
        per alias pair).  The count is computed recursively: each subtree
        reports, per value of its link column to the parent, how many result
        tuples it contributes; the parent multiplies those contributions into
        its own (predicate-filtered) rows.
        """
        aliases = query.aliases
        if len(aliases) == 1:
            table = self.database.table(query.alias_to_table()[aliases[0]])
            return int(len(table.filter_rows(query.predicates_for(aliases[0]))))
        if len(query.joins) != len(aliases) - 1:
            return None
        adjacency: dict[str, list[JoinClause]] = {alias: [] for alias in aliases}
        seen_pairs: set[tuple[str, str]] = set()
        for join in query.joins:
            pair = (join.left_alias, join.right_alias)
            if pair in seen_pairs:
                return None
            seen_pairs.add(pair)
            adjacency[join.left_alias].append(join)
            adjacency[join.right_alias].append(join)

        alias_to_table = query.alias_to_table()
        root = aliases[0]
        visited: set[str] = set()

        def subtree_weights(alias: str, parent_join: JoinClause | None) -> tuple[np.ndarray, np.ndarray] | int:
            """Per-link-key tuple counts of the subtree rooted at ``alias``.

            Returns the total count (int) at the root, or ``(keys, weights)``
            aggregated over this alias's link column to its parent otherwise.
            """
            visited.add(alias)
            table = self.database.table(alias_to_table[alias])
            row_ids = table.filter_rows(query.predicates_for(alias))
            weights = np.ones(len(row_ids), dtype=np.float64)
            for join in adjacency[alias]:
                if join is parent_join:
                    continue
                child = join.right_alias if join.left_alias == alias else join.left_alias
                if child in visited:
                    continue
                child_result = subtree_weights(child, join)
                child_keys, child_weights = child_result
                own_column = join.left_column if join.left_alias == alias else join.right_column
                own_keys = table.column(own_column)[row_ids]
                positions = np.searchsorted(child_keys, own_keys)
                positions = np.clip(positions, 0, max(len(child_keys) - 1, 0))
                matched = (
                    child_keys[positions] == own_keys if len(child_keys) else np.zeros(len(own_keys), bool)
                )
                factors = np.where(matched, child_weights[positions] if len(child_keys) else 0.0, 0.0)
                weights *= factors
            if parent_join is None:
                return int(round(float(weights.sum())))
            link_column = (
                parent_join.left_column if parent_join.left_alias == alias else parent_join.right_column
            )
            link_keys = table.column(link_column)[row_ids]
            unique_keys, inverse = np.unique(link_keys, return_inverse=True)
            summed = np.zeros(len(unique_keys), dtype=np.float64)
            np.add.at(summed, inverse, weights)
            return unique_keys, summed

        total = subtree_weights(root, None)
        if visited != set(aliases):
            # Disconnected graph (should not happen for generated queries).
            return None
        return int(total)

    # ------------------------------------------------------------------ #
    # internals

    def _execute_columns(self, query: Query) -> tuple[tuple[str, ...], dict[str, np.ndarray]]:
        """Execute and return per-alias aligned row-id arrays.

        Returns ``(aliases, columns)`` where ``columns`` maps each alias to an
        equally long array of base-table row ids; an empty dict denotes an
        empty result.
        """
        aliases = query.aliases
        alias_to_table = query.alias_to_table()

        filtered: dict[str, np.ndarray] = {}
        for alias in aliases:
            table = self.database.table(alias_to_table[alias])
            row_ids = table.filter_rows(query.predicates_for(alias))
            if len(row_ids) == 0:
                return aliases, {}
            filtered[alias] = row_ids

        if len(aliases) == 1:
            alias = aliases[0]
            return aliases, {alias: filtered[alias]}

        join_order = self._join_order(aliases, query.joins)

        # Current relation: aligned row-id arrays for the aliases joined so far.
        first_alias = join_order[0][0]
        current: dict[str, np.ndarray] = {first_alias: filtered[first_alias]}

        pending_cycle_joins: list[JoinClause] = []
        for new_alias, join in join_order[1:]:
            if new_alias is None:
                # Both sides already joined: a cycle edge, apply as a filter.
                pending_cycle_joins.append(join)
                continue
            current = self._hash_join(current, filtered[new_alias], new_alias, join, alias_to_table)
            if not current:
                return aliases, {}
            current = self._apply_cycle_joins(current, pending_cycle_joins, alias_to_table)
            pending_cycle_joins = []
            if not current:
                return aliases, {}

        current = self._apply_cycle_joins(current, pending_cycle_joins, alias_to_table)
        if not current:
            return aliases, {}
        return aliases, current

    def _join_order(
        self, aliases: tuple[str, ...], joins: tuple[JoinClause, ...]
    ) -> list[tuple[str | None, JoinClause | None]]:
        """Plan a left-deep join order covering all aliases.

        Returns a list whose first entry is ``(start_alias, None)`` and whose
        subsequent entries are ``(new_alias, join)`` for expansion joins or
        ``(None, join)`` for cycle-closing joins applied as filters.
        """
        if not joins:
            raise DisconnectedJoinGraphError(
                f"query references tables {aliases} but has no join clauses"
            )
        adjacency: dict[str, list[JoinClause]] = {alias: [] for alias in aliases}
        for join in joins:
            adjacency[join.left_alias].append(join)
            adjacency[join.right_alias].append(join)

        start = aliases[0]
        visited = {start}
        order: list[tuple[str | None, JoinClause | None]] = [(start, None)]
        used_joins: set[JoinClause] = set()
        frontier = [start]
        while frontier:
            next_frontier: list[str] = []
            for alias in frontier:
                for join in adjacency[alias]:
                    if join in used_joins:
                        continue
                    other = join.right_alias if join.left_alias == alias else join.left_alias
                    if other in visited:
                        used_joins.add(join)
                        order.append((None, join))
                        continue
                    used_joins.add(join)
                    visited.add(other)
                    order.append((other, join))
                    next_frontier.append(other)
            frontier = next_frontier
        if visited != set(aliases):
            missing = set(aliases) - visited
            raise DisconnectedJoinGraphError(
                f"join graph is disconnected; unreachable tables: {sorted(missing)}"
            )
        # Any joins not reached through BFS (parallel edges) act as filters.
        for join in joins:
            if join not in used_joins:
                order.append((None, join))
        return order

    def _hash_join(
        self,
        current: dict[str, np.ndarray],
        new_rows: np.ndarray,
        new_alias: str,
        join: JoinClause,
        alias_to_table: dict[str, str],
    ) -> dict[str, np.ndarray]:
        """Join the current relation with a filtered base table along ``join``."""
        if join.left_alias == new_alias:
            probe_alias, probe_column = join.right_alias, join.right_column
            build_column = join.left_column
        else:
            probe_alias, probe_column = join.left_alias, join.left_column
            build_column = join.right_column

        probe_table = self.database.table(alias_to_table[probe_alias])
        build_table = self.database.table(alias_to_table[new_alias])

        probe_keys = probe_table.column(probe_column)[current[probe_alias]]
        build_keys = build_table.column(build_column)[new_rows]

        left_idx, right_idx = _match_keys(probe_keys, build_keys)
        if len(left_idx) > self.max_intermediate_rows:
            raise MemoryError(
                f"join result too large ({len(left_idx)} rows exceeds the "
                f"{self.max_intermediate_rows} row limit)"
            )
        if len(left_idx) == 0:
            return {}
        result = {alias: rows[left_idx] for alias, rows in current.items()}
        result[new_alias] = new_rows[right_idx]
        return result

    def _apply_cycle_joins(
        self,
        current: dict[str, np.ndarray],
        joins: list[JoinClause],
        alias_to_table: dict[str, str],
    ) -> dict[str, np.ndarray]:
        """Apply join clauses whose endpoints are both already joined (as filters)."""
        for join in joins:
            if not current:
                return {}
            left_table = self.database.table(alias_to_table[join.left_alias])
            right_table = self.database.table(alias_to_table[join.right_alias])
            left_keys = left_table.column(join.left_column)[current[join.left_alias]]
            right_keys = right_table.column(join.right_column)[current[join.right_alias]]
            mask = left_keys == right_keys
            if not mask.any():
                return {}
            current = {alias: rows[mask] for alias, rows in current.items()}
        return current


def _match_keys(left_keys: np.ndarray, right_keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return index pairs ``(i, j)`` with ``left_keys[i] == right_keys[j]``.

    Implemented as a sort-merge expansion: the right side is sorted once and,
    for each left key, the matching right range is located with binary search
    and expanded.  Complexity is ``O((n + m) log m + output)``.
    """
    if len(left_keys) == 0 or len(right_keys) == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[order]

    starts = np.searchsorted(sorted_right, left_keys, side="left")
    ends = np.searchsorted(sorted_right, left_keys, side="right")
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    left_idx = np.repeat(np.arange(len(left_keys), dtype=np.int64), counts)
    # For each matched left row, enumerate the offsets into its right range.
    offsets = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(counts) - counts, counts)
    right_positions = np.repeat(starts, counts) + offsets
    right_idx = order[right_positions]
    return left_idx, right_idx
