"""The :class:`Database`: schema + tables + lazily built catalogs."""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.db.schema import DatabaseSchema, TableSchema
from repro.db.table import Table


class Database:
    """An immutable snapshot of a database (Section 3.3: models are trained
    and evaluated on an immutable snapshot).

    The database owns the schema, the per-table columnar storage and provides
    access to the derived catalogs used by the baselines:

    * :meth:`statistics` -- the ANALYZE-style statistics catalog used by the
      PostgreSQL-like estimator.
    * :meth:`samples` -- materialized base-table samples used by the
      sampling-enhanced MSCN baseline.
    """

    def __init__(self, schema: DatabaseSchema, tables: Mapping[str, Table]) -> None:
        self.schema = schema
        self._tables: dict[str, Table] = {}
        for table_schema in schema.tables:
            if table_schema.name not in tables:
                raise ValueError(f"missing data for table {table_schema.name!r}")
            table = tables[table_schema.name]
            if table.schema.name != table_schema.name:
                raise ValueError(
                    f"table object for {table_schema.name!r} has schema {table.schema.name!r}"
                )
            self._tables[table_schema.name] = table
        extra = set(tables) - set(schema.table_names)
        if extra:
            raise ValueError(f"tables not present in the schema: {sorted(extra)}")
        self._statistics = None
        self._sample_catalogs: dict[tuple[int, int], object] = {}

    @classmethod
    def from_arrays(
        cls,
        schema: DatabaseSchema,
        data: Mapping[str, Mapping[str, Iterable[float]]],
    ) -> "Database":
        """Build a database directly from per-table column arrays."""
        tables = {
            table_schema.name: Table(table_schema, data[table_schema.name])
            for table_schema in schema.tables
        }
        return cls(schema, tables)

    def table(self, name: str) -> Table:
        """Return the table called ``name``."""
        if name not in self._tables:
            raise KeyError(f"unknown table {name!r}")
        return self._tables[name]

    def table_by_alias(self, alias: str) -> Table:
        """Return the table whose conventional alias is ``alias``."""
        return self.table(self.schema.table_by_alias(alias).name)

    @property
    def table_names(self) -> tuple[str, ...]:
        """All table names."""
        return self.schema.table_names

    def num_rows(self, name: str) -> int:
        """Number of rows of table ``name``."""
        return self.table(name).num_rows

    @property
    def total_rows(self) -> int:
        """Total number of rows across all tables."""
        return sum(table.num_rows for table in self._tables.values())

    def column_range(self, alias: str, column: str) -> tuple[float, float]:
        """Value range of ``alias.column`` (used for predicate-value normalization)."""
        return self.table_by_alias(alias).value_range(column)

    def statistics(self):
        """Return the (cached) statistics catalog for this database."""
        if self._statistics is None:
            from repro.db.statistics import StatisticsCatalog

            self._statistics = StatisticsCatalog.analyze(self)
        return self._statistics

    def samples(self, sample_size: int = 1000, seed: int = 0):
        """Return a (cached) :class:`~repro.db.sampling.SampleCatalog`.

        Args:
            sample_size: number of sample rows per base table (the paper's
                MSCN1000 variant uses 1000).
            seed: RNG seed for reproducible samples.
        """
        key = (sample_size, seed)
        if key not in self._sample_catalogs:
            from repro.db.sampling import SampleCatalog

            self._sample_catalogs[key] = SampleCatalog.build(self, sample_size=sample_size, seed=seed)
        return self._sample_catalogs[key]

    def describe(self) -> str:
        """Return a short human-readable description of the database."""
        lines = [f"Database with {len(self._tables)} tables, {self.total_rows} rows total"]
        for table_schema in self.schema.tables:
            table = self._tables[table_schema.name]
            lines.append(
                f"  {table_schema.name} ({table_schema.alias}): "
                f"{table.num_rows} rows, {len(table_schema.columns)} columns"
            )
        return "\n".join(lines)
