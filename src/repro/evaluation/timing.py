"""Prediction-time measurement (Tables 14 and 15 of the paper).

Table 14 sweeps the queries-pool size and reports accuracy together with the
average per-query prediction time; Table 15 reports the average prediction
time of every model.  Both need wall-clock measurement of single-query
estimation calls, which this module provides.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.estimators import CardinalityEstimator
from repro.core.metrics import ErrorSummary, q_errors
from repro.datasets.pairs import LabeledQuery


@dataclass(frozen=True)
class TimedEvaluation:
    """Accuracy plus timing of one estimator over one workload."""

    name: str
    summary: ErrorSummary
    mean_prediction_seconds: float

    @property
    def mean_prediction_milliseconds(self) -> float:
        """Average per-query prediction time in milliseconds."""
        return self.mean_prediction_seconds * 1000.0


def time_estimator(
    estimator: CardinalityEstimator,
    labeled_queries: Sequence[LabeledQuery],
    epsilon: float = 1.0,
) -> TimedEvaluation:
    """Estimate every query one at a time, measuring per-query latency.

    Queries are deliberately estimated individually (not batched) because the
    paper's Tables 14-15 report the latency of estimating a single incoming
    query, which is how an optimizer would invoke the model.
    """
    if not labeled_queries:
        raise ValueError("cannot time an estimator on an empty workload")
    estimates: list[float] = []
    start = time.perf_counter()
    for labeled in labeled_queries:
        estimates.append(estimator.estimate_cardinality(labeled.query))
    elapsed = time.perf_counter() - start
    truths = [labeled.cardinality for labeled in labeled_queries]
    errors = q_errors(estimates, truths, epsilon=epsilon)
    return TimedEvaluation(
        name=estimator.name,
        summary=ErrorSummary.from_errors(estimator.name, errors),
        mean_prediction_seconds=elapsed / len(labeled_queries),
    )


def time_estimators(
    estimators: Mapping[str, CardinalityEstimator],
    labeled_queries: Sequence[LabeledQuery],
    epsilon: float = 1.0,
) -> dict[str, TimedEvaluation]:
    """Time several estimators on the same workload."""
    return {
        name: time_estimator(estimator, labeled_queries, epsilon=epsilon)
        for name, estimator in estimators.items()
    }


def format_timing_table(timings: Mapping[str, TimedEvaluation], title: str = "") -> str:
    """Render a Table-15-style "average prediction time" table."""
    name_width = max([len(name) for name in timings] + [len("model")]) + 2
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("model".ljust(name_width) + "prediction time".rjust(18))
    for name, timed in timings.items():
        lines.append(name.ljust(name_width) + f"{timed.mean_prediction_milliseconds:.2f}ms".rjust(18))
    return "\n".join(lines)


def format_pool_size_table(
    rows: Sequence[tuple[int, ErrorSummary, float]], title: str = ""
) -> str:
    """Render a Table-14-style pool-size sweep (size, median, mean, time)."""
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(
        "QP size".rjust(10) + "median".rjust(12) + "mean".rjust(12) + "prediction time".rjust(18)
    )
    for size, summary, seconds in rows:
        lines.append(
            f"{size:10d}"
            + f"{summary.median:.2f}".rjust(12)
            + f"{summary.mean:.2f}".rjust(12)
            + f"{seconds * 1000:.2f}ms".rjust(18)
        )
    return "\n".join(lines)
