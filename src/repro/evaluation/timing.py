"""Prediction-time measurement (Tables 14 and 15 of the paper) and serving metrics.

Table 14 sweeps the queries-pool size and reports accuracy together with the
average per-query prediction time; Table 15 reports the average prediction
time of every model.  Both need wall-clock measurement of single-query
estimation calls, which this module provides.

On top of the paper's single-query timings, :func:`time_service` measures the
online serving path (:class:`repro.serving.EstimationService`): accuracy plus
per-request latency, throughput, and cache hit rates under cross-request
batching, rendered by :func:`format_serving_table`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.core.estimators import CardinalityEstimator
from repro.core.metrics import ErrorSummary, q_errors
from repro.datasets.pairs import LabeledQuery

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.serving.dispatcher import ServingDispatcher
    from repro.serving.feedback import FeedbackSummary
    from repro.serving.lifecycle import AdaptationManager
    from repro.serving.service import EstimationService


@dataclass(frozen=True)
class TimedEvaluation:
    """Accuracy plus timing of one estimator over one workload."""

    name: str
    summary: ErrorSummary
    mean_prediction_seconds: float

    @property
    def mean_prediction_milliseconds(self) -> float:
        """Average per-query prediction time in milliseconds."""
        return self.mean_prediction_seconds * 1000.0


def time_estimator(
    estimator: CardinalityEstimator,
    labeled_queries: Sequence[LabeledQuery],
    epsilon: float = 1.0,
) -> TimedEvaluation:
    """Estimate every query one at a time, measuring per-query latency.

    Queries are deliberately estimated individually (not batched) because the
    paper's Tables 14-15 report the latency of estimating a single incoming
    query, which is how an optimizer would invoke the model.
    """
    if not labeled_queries:
        raise ValueError("cannot time an estimator on an empty workload")
    estimates: list[float] = []
    start = time.perf_counter()
    for labeled in labeled_queries:
        estimates.append(estimator.estimate_cardinality(labeled.query))
    elapsed = time.perf_counter() - start
    truths = [labeled.cardinality for labeled in labeled_queries]
    errors = q_errors(estimates, truths, epsilon=epsilon)
    return TimedEvaluation(
        name=estimator.name,
        summary=ErrorSummary.from_errors(estimator.name, errors),
        mean_prediction_seconds=elapsed / len(labeled_queries),
    )


def time_estimators(
    estimators: Mapping[str, CardinalityEstimator],
    labeled_queries: Sequence[LabeledQuery],
    epsilon: float = 1.0,
) -> dict[str, TimedEvaluation]:
    """Time several estimators on the same workload."""
    return {
        name: time_estimator(estimator, labeled_queries, epsilon=epsilon)
        for name, estimator in estimators.items()
    }


@dataclass(frozen=True)
class ServingTimedEvaluation:
    """Accuracy plus serving metrics of one service run over one workload.

    Attributes:
        name: the estimator registry name that served the workload.
        summary: the q-error summary of the served estimates.
        mean_latency_seconds: average attributed per-request latency.
        throughput_qps: requests served per second of wall-clock time.
        featurization_hit_rate: featurization-cache hit rate over the run
            (0.0 when the service has no featurization cache).
        encoding_hit_rate: encoding-cache hit rate over the run (0.0 when the
            service has no encoding cache).
        fallbacks: requests answered by the registry fallback estimator.
    """

    name: str
    summary: ErrorSummary
    mean_latency_seconds: float
    throughput_qps: float
    featurization_hit_rate: float
    encoding_hit_rate: float
    fallbacks: int

    @property
    def mean_latency_milliseconds(self) -> float:
        """Average attributed per-request latency in milliseconds."""
        return self.mean_latency_seconds * 1000.0


def time_service(
    service: "EstimationService",
    labeled_queries: Sequence[LabeledQuery],
    estimator: str | None = None,
    epsilon: float = 1.0,
    batch_size: int | None = None,
) -> ServingTimedEvaluation:
    """Serve a labelled workload through an estimation service and measure it.

    Unlike :func:`time_estimator` — which deliberately estimates one query at
    a time to reproduce the paper's single-query latency — this submits the
    workload the way an online deployment would: in concurrent batches that
    the service plans into large deduplicated forward passes.

    Args:
        service: the estimation service under measurement.
        labeled_queries: the workload with true cardinalities.
        estimator: registry name to serve with (service default when None).
        epsilon: the q-error zero-guard.
        batch_size: requests per submitted batch (the whole workload when
            None), modelling how many requests arrive concurrently.
    """
    if not labeled_queries:
        raise ValueError("cannot time a service on an empty workload")
    queries = [labeled.query for labeled in labeled_queries]
    step = batch_size if batch_size is not None else len(queries)
    if step <= 0:
        raise ValueError("batch_size must be positive")
    cache_stats = [
        cache.stats
        for cache in (service.featurization_cache, service.encoding_cache)
        if cache is not None
    ]
    before = [(stats.hits, stats.misses) for stats in cache_stats]
    served = []
    start = time.perf_counter()
    for begin in range(0, len(queries), step):
        served.extend(service.submit_batch(queries[begin : begin + step], estimator=estimator))
    elapsed = time.perf_counter() - start
    rates = []
    for stats, (hits, misses) in zip(cache_stats, before):
        lookups = (stats.hits - hits) + (stats.misses - misses)
        rates.append((stats.hits - hits) / lookups if lookups else 0.0)
    featurization_rate = rates[0] if service.featurization_cache is not None else 0.0
    encoding_rate = rates[-1] if service.encoding_cache is not None else 0.0
    estimates = [item.estimate for item in served]
    truths = [labeled.cardinality for labeled in labeled_queries]
    name = estimator if estimator is not None else service.default_estimator
    errors = q_errors(estimates, truths, epsilon=epsilon)
    return ServingTimedEvaluation(
        name=name,
        summary=ErrorSummary.from_errors(name, errors),
        mean_latency_seconds=elapsed / len(queries),
        throughput_qps=len(queries) / elapsed if elapsed > 0 else 0.0,
        featurization_hit_rate=featurization_rate,
        encoding_hit_rate=encoding_rate,
        fallbacks=sum(1 for item in served if item.used_fallback),
    )


@dataclass(frozen=True)
class ConcurrentServingEvaluation:
    """Accuracy plus concurrency metrics of one dispatcher run.

    Attributes:
        name: the estimator registry name that served the workload (the
            service default when the run did not pick one).
        summary: the q-error summary of the served estimates.
        threads: number of submitting threads.
        requests: total requests served across all threads.
        total_seconds: wall-clock time from first submission to last result.
        throughput_qps: requests per second of wall-clock time.
        coalesced_batches: dispatcher batches executed during the run.
        mean_batch_size: average requests coalesced per batch.
        max_queue_depth: the dispatcher's queue high-water mark as of the
            end of the run.  This is a lifetime maximum, not a per-run
            value: a deeper earlier run on the same dispatcher carries over
            (call ``dispatcher.stats.reset()`` between runs for a per-run
            reading).
        failed: requests whose future resolved with an exception.
    """

    name: str
    summary: ErrorSummary
    threads: int
    requests: int
    total_seconds: float
    throughput_qps: float
    coalesced_batches: int
    mean_batch_size: float
    max_queue_depth: int
    failed: int


def time_concurrent_service(
    dispatcher: "ServingDispatcher",
    labeled_queries: Sequence[LabeledQuery],
    threads: int = 4,
    estimator: str | None = None,
    epsilon: float = 1.0,
) -> ConcurrentServingEvaluation:
    """Drive a dispatcher from ``threads`` concurrent threads and measure it.

    The workload is split round-robin across the threads; every thread
    submits its share through :meth:`ServingDispatcher.submit` and resolves
    its futures, modelling independent clients hitting the service at once.
    The dispatcher's monotonic counters (batches, completions, failures) are
    reported as deltas over the run, so back-to-back measurements do not
    bleed into each other; ``max_queue_depth`` is the exception — it is the
    dispatcher's lifetime high-water mark (reset the stats between runs for
    a per-run value).

    The dispatcher must already be started (or be used as a context
    manager around this call); it is left running afterwards.
    """
    if not labeled_queries:
        raise ValueError("cannot time a dispatcher on an empty workload")
    if threads <= 0:
        raise ValueError("threads must be positive")
    before = dispatcher.stats.snapshot()
    shares: list[list[tuple[int, LabeledQuery]]] = [[] for _ in range(threads)]
    for index, labeled in enumerate(labeled_queries):
        shares[index % threads].append((index, labeled))
    estimates: list[float | None] = [None] * len(labeled_queries)
    errors: list[BaseException] = []
    errors_lock = threading.Lock()

    def worker(share: list[tuple[int, LabeledQuery]]) -> None:
        futures = [
            (index, dispatcher.submit(labeled.query, estimator=estimator))
            for index, labeled in share
        ]
        for index, future in futures:
            try:
                estimates[index] = future.result().estimate
            except BaseException as error:  # noqa: BLE001 - reported below
                with errors_lock:
                    errors.append(error)

    pool = [
        threading.Thread(target=worker, args=(share,), name=f"serving-client-{i}")
        for i, share in enumerate(shares)
        if share
    ]
    start = time.perf_counter()
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    after = dispatcher.stats.snapshot()
    batches = int(after["coalesced_batches"] - before["coalesced_batches"])
    served = int(after["completed"] - before["completed"])
    truths = [labeled.cardinality for labeled in labeled_queries]
    name = estimator if estimator is not None else dispatcher.service.default_estimator
    q = q_errors([value for value in estimates], truths, epsilon=epsilon)
    return ConcurrentServingEvaluation(
        name=name,
        summary=ErrorSummary.from_errors(name, q),
        threads=len(pool),
        requests=len(labeled_queries),
        total_seconds=elapsed,
        throughput_qps=len(labeled_queries) / elapsed if elapsed > 0 else 0.0,
        coalesced_batches=batches,
        mean_batch_size=served / batches if batches else 0.0,
        max_queue_depth=int(after["max_queue_depth"]),
        failed=int(after["failed"] - before["failed"]),
    )


@dataclass(frozen=True)
class AdaptationEvaluation:
    """Accuracy recovery around the adaptation subsystem's hot swap(s).

    The three q-error readings are the rolling window's **median** captured
    at the three phases of an adaptation episode: healthy before the
    database update, degraded while the stale model served the updated data,
    and recovered after the background retrain was swapped in.  The median
    is the robust phase-comparison metric: the p90+ tail of a small window
    is dominated by a handful of near-zero-truth queries whose unbounded
    ratios swamp any model change, so tail quantiles of two equally healthy
    windows can differ by 2x for no modelling reason (the drift *policy*
    still watches the tail — degradation there is exactly the signal worth
    reacting to; this evaluation grades the reaction).

    Attributes:
        name: the adapted estimator's registry name.
        swaps: accepted hot swaps during the episode.
        retrains: retrain attempts (including failed/rejected ones).
        mean_retrain_seconds: average retrain duration.
        pre_update_q_error: the healthy window's reading.
        degraded_q_error: the reading that fired the drift policy.
        recovered_q_error: the post-swap rolling window's reading.
    """

    name: str
    swaps: int
    retrains: int
    mean_retrain_seconds: float
    pre_update_q_error: float
    degraded_q_error: float
    recovered_q_error: float

    @property
    def recovery_ratio(self) -> float:
        """Post-swap q-error relative to the healthy pre-update window.

        1.0 means full recovery; the adaptive-serving benchmark requires
        <= 1.5 (the acceptance bar for the feedback→retrain→swap loop).
        """
        if not self.pre_update_q_error > 0.0:
            return float("nan")
        return self.recovered_q_error / self.pre_update_q_error


def evaluate_adaptation(
    manager: "AdaptationManager",
    pre_update: "FeedbackSummary",
    degraded: "FeedbackSummary",
    recovered: "FeedbackSummary",
    name: str | None = None,
) -> AdaptationEvaluation:
    """Assemble an :class:`AdaptationEvaluation` from a manager and 3 windows.

    The caller captures :meth:`repro.serving.FeedbackCollector.summary` at
    the three phase boundaries (the collector is cleared on swap, so the
    phases cannot be reconstructed after the fact); the manager's
    :class:`repro.serving.LifecycleStats` supplies the swap/retrain counters.
    """
    snapshot = manager.stats.snapshot()
    return AdaptationEvaluation(
        name=name if name is not None else manager.estimator_name,
        swaps=int(snapshot["swaps"]),
        retrains=int(snapshot["retrains"]),
        mean_retrain_seconds=snapshot["mean_retrain_seconds"],
        pre_update_q_error=pre_update.p50,
        degraded_q_error=degraded.p50,
        recovered_q_error=recovered.p50,
    )


def format_adaptation_table(
    evaluations: Mapping[str, AdaptationEvaluation], title: str = ""
) -> str:
    """Render adaptation episodes as a fixed-width text table."""
    name_width = max([len(name) for name in evaluations] + [len("estimator")]) + 2
    headers = ["swaps", "retrains", "retrain s", "pre p50", "degraded", "recovered", "recovery"]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("estimator".ljust(name_width) + "".join(h.rjust(12) for h in headers))
    for name, evaluation in evaluations.items():
        cells = [
            str(evaluation.swaps),
            str(evaluation.retrains),
            f"{evaluation.mean_retrain_seconds:.2f}s",
            f"{evaluation.pre_update_q_error:.2f}",
            f"{evaluation.degraded_q_error:.2f}",
            f"{evaluation.recovered_q_error:.2f}",
            f"{evaluation.recovery_ratio:.2f}x",
        ]
        lines.append(name.ljust(name_width) + "".join(cell.rjust(12) for cell in cells))
    return "\n".join(lines)


def format_serving_table(
    evaluations: Mapping[str, ServingTimedEvaluation], title: str = ""
) -> str:
    """Render serving measurements as a fixed-width text table."""
    name_width = max([len(name) for name in evaluations] + [len("serving path")]) + 2
    headers = ["latency", "qps", "feat hit", "enc hit", "fallbacks"]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("serving path".ljust(name_width) + "".join(h.rjust(12) for h in headers))
    for name, evaluation in evaluations.items():
        cells = [
            f"{evaluation.mean_latency_milliseconds:.2f}ms",
            f"{evaluation.throughput_qps:.0f}",
            f"{evaluation.featurization_hit_rate:.1%}",
            f"{evaluation.encoding_hit_rate:.1%}",
            str(evaluation.fallbacks),
        ]
        lines.append(name.ljust(name_width) + "".join(cell.rjust(12) for cell in cells))
    return "\n".join(lines)


def format_concurrent_table(
    evaluations: Mapping[str, ConcurrentServingEvaluation], title: str = ""
) -> str:
    """Render concurrent-serving measurements as a fixed-width text table."""
    name_width = max([len(name) for name in evaluations] + [len("serving path")]) + 2
    headers = ["threads", "qps", "batches", "batch size", "queue depth"]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("serving path".ljust(name_width) + "".join(h.rjust(13) for h in headers))
    for name, evaluation in evaluations.items():
        cells = [
            str(evaluation.threads),
            f"{evaluation.throughput_qps:.0f}",
            str(evaluation.coalesced_batches),
            f"{evaluation.mean_batch_size:.1f}",
            str(evaluation.max_queue_depth),
        ]
        lines.append(name.ljust(name_width) + "".join(cell.rjust(13) for cell in cells))
    return "\n".join(lines)


def format_timing_table(timings: Mapping[str, TimedEvaluation], title: str = "") -> str:
    """Render a Table-15-style "average prediction time" table."""
    name_width = max([len(name) for name in timings] + [len("model")]) + 2
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("model".ljust(name_width) + "prediction time".rjust(18))
    for name, timed in timings.items():
        lines.append(name.ljust(name_width) + f"{timed.mean_prediction_milliseconds:.2f}ms".rjust(18))
    return "\n".join(lines)


def format_pool_size_table(
    rows: Sequence[tuple[int, ErrorSummary, float]], title: str = ""
) -> str:
    """Render a Table-14-style pool-size sweep (size, median, mean, time)."""
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(
        "QP size".rjust(10) + "median".rjust(12) + "mean".rjust(12) + "prediction time".rjust(18)
    )
    for size, summary, seconds in rows:
        lines.append(
            f"{size:10d}"
            + f"{summary.median:.2f}".rjust(12)
            + f"{summary.mean:.2f}".rjust(12)
            + f"{seconds * 1000:.2f}ms".rjust(18)
        )
    return "\n".join(lines)
