"""Registry of the paper's experiments: one entry per table and figure.

Every experiment takes an :class:`~repro.evaluation.harness.ExperimentHarness`
and returns an :class:`ExperimentReport` whose ``text`` reproduces the paper's
table (or the data series behind the figure) and whose ``data`` holds the raw
numbers for programmatic checks.  The benchmark suite contains one benchmark
per registry entry; EXPERIMENTS.md records paper-vs-measured numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.crn import CRNConfig
from repro.core.cnt2crd import Cnt2CrdEstimator
from repro.core.metrics import ErrorSummary, q_errors
from repro.core.training import train_crn
from repro.datasets.workloads import PairWorkload, Workload, join_distribution
from repro.evaluation.harness import (
    CARDINALITY_EPSILON,
    CONTAINMENT_EPSILON,
    ExperimentHarness,
)
from repro.evaluation.reporting import (
    boxplot_series,
    format_boxplot_series,
    format_convergence,
    format_error_table,
    format_join_distribution,
    format_per_join_table,
)
from repro.evaluation.timing import (
    format_pool_size_table,
    format_timing_table,
    time_estimator,
    time_estimators,
)


@dataclass
class ExperimentReport:
    """The outcome of one reproduced table or figure."""

    experiment_id: str
    title: str
    text: str
    data: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"== {self.experiment_id}: {self.title} ==\n{self.text}"


ExperimentFunction = Callable[[ExperimentHarness], ExperimentReport]

EXPERIMENTS: dict[str, ExperimentFunction] = {}


def experiment(experiment_id: str) -> Callable[[ExperimentFunction], ExperimentFunction]:
    """Decorator registering an experiment under ``experiment_id``."""

    def register(function: ExperimentFunction) -> ExperimentFunction:
        EXPERIMENTS[experiment_id] = function
        return function

    return register


def _sweep_training_config(harness: ExperimentHarness):
    """A cheaper training configuration for experiments that train extra models.

    The hidden-size sweep and the architecture/loss ablations each train
    several additional CRN models; running them with roughly half the main
    profile's epoch budget keeps the benchmark suite's total runtime bounded
    without changing the comparisons qualitatively.
    """
    base = harness.profile.crn_training
    return replace(
        base,
        epochs=max(8, base.epochs // 2),
        early_stopping_patience=min(base.early_stopping_patience, 8),
    )


def run_experiment(experiment_id: str, harness: ExperimentHarness) -> ExperimentReport:
    """Run one registered experiment."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[experiment_id](harness)


def list_experiments() -> list[str]:
    """All registered experiment ids."""
    return sorted(EXPERIMENTS)


# --------------------------------------------------------------------------- #
# Section 3: the CRN model itself


@experiment("fig03_hidden_size")
def fig03_hidden_size(harness: ExperimentHarness) -> ExperimentReport:
    """Figure 3: validation mean q-error as a function of the hidden layer size."""
    base_hidden = harness.profile.crn.hidden_size
    sizes = sorted({max(base_hidden // 4, 8), max(base_hidden // 2, 16), base_hidden, base_hidden * 2})
    rows: list[tuple[int, float]] = []
    for hidden_size in sizes:
        config = replace(harness.profile.crn, hidden_size=hidden_size)
        result = train_crn(
            harness.featurizer,
            harness.training_pairs,
            crn_config=config,
            training_config=_sweep_training_config(harness),
        )
        rows.append((hidden_size, result.best_validation_q_error))
    lines = ["hidden size".rjust(12) + "validation mean q-error".rjust(26)]
    lines += [f"{size:12d}" + f"{error:.3f}".rjust(26) for size, error in rows]
    return ExperimentReport(
        experiment_id="fig03_hidden_size",
        title="Validation mean q-error vs hidden layer size (Figure 3)",
        text="\n".join(lines),
        data={"rows": rows},
    )


@experiment("fig04_convergence")
def fig04_convergence(harness: ExperimentHarness) -> ExperimentReport:
    """Figure 4: convergence of the validation mean q-error over training epochs."""
    result = harness.crn_result
    history = [
        {
            "epoch": stats.epoch,
            "train_loss": stats.train_loss,
            "validation_mean_q_error": stats.validation_mean_q_error,
        }
        for stats in result.history
    ]
    return ExperimentReport(
        experiment_id="fig04_convergence",
        title="Convergence of the validation mean q-error (Figure 4)",
        text=format_convergence(history),
        data={
            "history": history,
            "best_epoch": result.best_epoch,
            "best_validation_q_error": result.best_validation_q_error,
        },
    )


# --------------------------------------------------------------------------- #
# Section 4: containment rate estimation


@experiment("table02_join_distribution")
def table02_join_distribution(harness: ExperimentHarness) -> ExperimentReport:
    """Table 2: join distribution of the containment workloads."""
    distributions = {
        "cnt_test1": join_distribution(harness.workload("cnt_test1")),
        "cnt_test2": join_distribution(harness.workload("cnt_test2")),
    }
    return ExperimentReport(
        experiment_id="table02_join_distribution",
        title="Join distribution of the containment workloads (Table 2)",
        text=format_join_distribution(distributions),
        data={"distributions": distributions},
    )


def _containment_experiment(
    harness: ExperimentHarness, workload_name: str, experiment_id: str, title: str
) -> ExperimentReport:
    workload = harness.workload(workload_name)
    assert isinstance(workload, PairWorkload)
    estimators = harness.crd2cnt_estimators()
    truths = [pair.containment_rate for pair in workload.pairs]
    pairs = [(pair.first, pair.second) for pair in workload.pairs]
    summaries: dict[str, ErrorSummary] = {}
    errors_by_model: dict[str, np.ndarray] = {}
    for name, estimator in estimators.items():
        estimates = estimator.estimate_containments(pairs)
        errors = q_errors(estimates, truths, epsilon=CONTAINMENT_EPSILON)
        errors_by_model[name] = errors
        summaries[name] = ErrorSummary.from_errors(name, errors)
    table = format_error_table(summaries)
    boxes = boxplot_series(errors_by_model)
    text = table + "\n\n" + format_boxplot_series(boxes, title="box-plot series (Figure)")
    return ExperimentReport(
        experiment_id=experiment_id,
        title=title,
        text=text,
        data={"summaries": summaries, "boxplot": boxes},
    )


@experiment("table03_cnt_test1")
def table03_cnt_test1(harness: ExperimentHarness) -> ExperimentReport:
    """Table 3 / Figure 5: containment estimation errors on cnt_test1."""
    return _containment_experiment(
        harness,
        "cnt_test1",
        "table03_cnt_test1",
        "Containment estimation errors on cnt_test1 (Table 3, Figure 5)",
    )


@experiment("table04_cnt_test2")
def table04_cnt_test2(harness: ExperimentHarness) -> ExperimentReport:
    """Table 4 / Figure 6: containment generalization to 0-5 joins on cnt_test2."""
    return _containment_experiment(
        harness,
        "cnt_test2",
        "table04_cnt_test2",
        "Containment estimation errors on cnt_test2 (Table 4, Figure 6)",
    )


# --------------------------------------------------------------------------- #
# Section 6: cardinality estimation


@experiment("table05_join_distribution")
def table05_join_distribution(harness: ExperimentHarness) -> ExperimentReport:
    """Table 5: join distribution of the cardinality workloads."""
    distributions = {
        "crd_test1": join_distribution(harness.workload("crd_test1")),
        "crd_test2": join_distribution(harness.workload("crd_test2")),
        "scale": join_distribution(harness.workload("scale")),
    }
    return ExperimentReport(
        experiment_id="table05_join_distribution",
        title="Join distribution of the cardinality workloads (Table 5)",
        text=format_join_distribution(distributions),
        data={"distributions": distributions},
    )


def _cardinality_experiment(
    harness: ExperimentHarness,
    workload_name: str,
    experiment_id: str,
    title: str,
    estimators: dict | None = None,
    min_joins: int | None = None,
    max_joins: int | None = None,
) -> ExperimentReport:
    workload = harness.workload(workload_name)
    assert isinstance(workload, Workload)
    if min_joins is not None or max_joins is not None:
        workload = workload.restrict_joins(min_joins or 0, max_joins if max_joins is not None else 99)
    estimators = estimators or harness.cardinality_estimators()
    queries = [labeled.query for labeled in workload.queries]
    truths = [labeled.cardinality for labeled in workload.queries]
    summaries: dict[str, ErrorSummary] = {}
    errors_by_model: dict[str, np.ndarray] = {}
    for name, estimator in estimators.items():
        estimates = estimator.estimate_cardinalities(queries)
        errors = q_errors(estimates, truths, epsilon=CARDINALITY_EPSILON)
        errors_by_model[name] = errors
        summaries[name] = ErrorSummary.from_errors(name, errors)
    table = format_error_table(summaries)
    boxes = boxplot_series(errors_by_model)
    text = table + "\n\n" + format_boxplot_series(boxes, title="box-plot series (Figure)")
    return ExperimentReport(
        experiment_id=experiment_id,
        title=title,
        text=text,
        data={"summaries": summaries, "boxplot": boxes},
    )


@experiment("table06_crd_test1")
def table06_crd_test1(harness: ExperimentHarness) -> ExperimentReport:
    """Table 6 / Figure 9: cardinality estimation errors on crd_test1."""
    return _cardinality_experiment(
        harness,
        "crd_test1",
        "table06_crd_test1",
        "Cardinality estimation errors on crd_test1 (Table 6, Figure 9)",
    )


@experiment("table07_crd_test2")
def table07_crd_test2(harness: ExperimentHarness) -> ExperimentReport:
    """Table 7 / Figure 10: cardinality generalization to 0-5 joins on crd_test2."""
    return _cardinality_experiment(
        harness,
        "crd_test2",
        "table07_crd_test2",
        "Cardinality estimation errors on crd_test2 (Table 7, Figure 10)",
    )


@experiment("table08_crd_test2_3to5")
def table08_crd_test2_3to5(harness: ExperimentHarness) -> ExperimentReport:
    """Table 8: crd_test2 restricted to queries with three to five joins."""
    return _cardinality_experiment(
        harness,
        "crd_test2",
        "table08_crd_test2_3to5",
        "Cardinality estimation errors on crd_test2, 3-5 joins only (Table 8)",
        min_joins=3,
        max_joins=5,
    )


@experiment("table09_per_join")
def table09_per_join(harness: ExperimentHarness) -> ExperimentReport:
    """Table 9 / Figure 11: mean and median q-error per join count on crd_test2."""
    per_join = harness.evaluate_cardinality_per_join("crd_test2")
    means = format_per_join_table(per_join, metric="mean", title="mean q-error per join count (Table 9)")
    medians = format_per_join_table(
        per_join, metric="median", title="median q-error per join count (Figure 11)"
    )
    return ExperimentReport(
        experiment_id="table09_per_join",
        title="Per-join-count q-errors on crd_test2 (Table 9, Figure 11)",
        text=means + "\n\n" + medians,
        data={"per_join": per_join},
    )


@experiment("table10_scale")
def table10_scale(harness: ExperimentHarness) -> ExperimentReport:
    """Table 10 / Figure 12: generalization to the scale workload (incl. MSCN1000)."""
    estimators = dict(harness.cardinality_estimators())
    estimators["MSCN1000"] = harness.mscn1000_estimator()
    return _cardinality_experiment(
        harness,
        "scale",
        "table10_scale",
        "Cardinality estimation errors on the scale workload (Table 10, Figure 12)",
        estimators=estimators,
    )


# --------------------------------------------------------------------------- #
# Section 7: improving existing models


@experiment("table11_improved_postgres")
def table11_improved_postgres(harness: ExperimentHarness) -> ExperimentReport:
    """Table 11: PostgreSQL vs Improved PostgreSQL on crd_test2."""
    estimators = {
        "PostgreSQL": harness.postgres_estimator(),
        "Improved PostgreSQL": harness.improved_postgres_estimator(),
    }
    return _cardinality_experiment(
        harness,
        "crd_test2",
        "table11_improved_postgres",
        "PostgreSQL vs Improved PostgreSQL on crd_test2 (Table 11)",
        estimators=estimators,
    )


@experiment("table12_improved_mscn")
def table12_improved_mscn(harness: ExperimentHarness) -> ExperimentReport:
    """Table 12: MSCN vs Improved MSCN on crd_test2."""
    estimators = {
        "MSCN": harness.mscn_estimator(),
        "Improved MSCN": harness.improved_mscn_estimator(),
    }
    return _cardinality_experiment(
        harness,
        "crd_test2",
        "table12_improved_mscn",
        "MSCN vs Improved MSCN on crd_test2 (Table 12)",
        estimators=estimators,
    )


@experiment("table13_improved_vs_crn")
def table13_improved_vs_crn(harness: ExperimentHarness) -> ExperimentReport:
    """Table 13: the improved models vs Cnt2Crd(CRN) on crd_test2."""
    estimators = {
        "Improved PostgreSQL": harness.improved_postgres_estimator(),
        "Improved MSCN": harness.improved_mscn_estimator(),
        "Cnt2Crd(CRN)": harness.cnt2crd_crn_estimator(),
    }
    return _cardinality_experiment(
        harness,
        "crd_test2",
        "table13_improved_vs_crn",
        "Improved models vs Cnt2Crd(CRN) on crd_test2 (Table 13)",
        estimators=estimators,
    )


@experiment("fig13_all_models")
def fig13_all_models(harness: ExperimentHarness) -> ExperimentReport:
    """Figure 13: crd_test2 errors for every model, including improved ones."""
    return _cardinality_experiment(
        harness,
        "crd_test2",
        "fig13_all_models",
        "Cardinality estimation errors on crd_test2, all models (Figure 13)",
        estimators=harness.all_cardinality_estimators(),
    )


# --------------------------------------------------------------------------- #
# prediction time (Tables 14-15)


@experiment("table14_pool_size")
def table14_pool_size(harness: ExperimentHarness) -> ExperimentReport:
    """Table 14: accuracy and prediction time for different queries-pool sizes."""
    workload = harness.workload("crd_test2")
    assert isinstance(workload, Workload)
    full_pool = harness.pool
    sizes = sorted({max(len(full_pool) // 6, 5), len(full_pool) // 3, len(full_pool) // 2, len(full_pool)})
    rows: list[tuple[int, ErrorSummary, float]] = []
    for size in sizes:
        pool = full_pool.subset(size)
        # Small pool subsets can lose whole FROM clauses; the paper's remedy is
        # to fall back to a basic estimator for those queries (Section 5.2).
        estimator = harness.cnt2crd_crn_estimator(pool=pool, fallback=harness.postgres_estimator())
        timed = time_estimator(estimator, list(workload.queries), epsilon=CARDINALITY_EPSILON)
        rows.append((len(pool), timed.summary, timed.mean_prediction_seconds))
    return ExperimentReport(
        experiment_id="table14_pool_size",
        title="Accuracy and prediction time vs queries-pool size (Table 14)",
        text=format_pool_size_table(rows),
        data={"rows": rows},
    )


@experiment("table15_prediction_time")
def table15_prediction_time(harness: ExperimentHarness) -> ExperimentReport:
    """Table 15: average prediction time of a single query for every model."""
    workload = harness.workload("crd_test2")
    assert isinstance(workload, Workload)
    estimators = harness.all_cardinality_estimators()
    timings = time_estimators(estimators, list(workload.queries), epsilon=CARDINALITY_EPSILON)
    return ExperimentReport(
        experiment_id="table15_prediction_time",
        title="Average prediction time of a single query (Table 15)",
        text=format_timing_table(timings),
        data={"timings": timings},
    )


# --------------------------------------------------------------------------- #
# ablations (design choices called out in DESIGN.md)


@experiment("ablation_final_function")
def ablation_final_function(harness: ExperimentHarness) -> ExperimentReport:
    """Section 5.3.1: median vs mean vs trimmed mean as the final function."""
    workload = harness.workload("crd_test2")
    assert isinstance(workload, Workload)
    queries = [labeled.query for labeled in workload.queries]
    truths = [labeled.cardinality for labeled in workload.queries]
    crn = harness.crn_estimator()
    summaries: dict[str, ErrorSummary] = {}
    for name in ("median", "mean", "trimmed_mean"):
        estimator = Cnt2CrdEstimator(crn, harness.pool, final_function=name)
        estimates = estimator.estimate_cardinalities(queries)
        summaries[name] = ErrorSummary.from_estimates(name, estimates, truths)
    return ExperimentReport(
        experiment_id="ablation_final_function",
        title="Final-function ablation for Cnt2Crd(CRN) on crd_test2 (Section 5.3.1)",
        text=format_error_table(summaries),
        data={"summaries": summaries},
    )


@experiment("ablation_loss")
def ablation_loss(harness: ExperimentHarness) -> ExperimentReport:
    """Section 3.2.4: q-error loss vs MSE vs MAE for training CRN."""
    workload = harness.workload("cnt_test1")
    assert isinstance(workload, PairWorkload)
    truths = [pair.containment_rate for pair in workload.pairs]
    pairs = [(pair.first, pair.second) for pair in workload.pairs]
    summaries: dict[str, ErrorSummary] = {}
    for loss_name in ("log_q_error", "q_error", "mse", "mae"):
        training_config = replace(_sweep_training_config(harness), loss=loss_name)
        result = train_crn(
            harness.featurizer,
            harness.training_pairs,
            crn_config=harness.profile.crn,
            training_config=training_config,
        )
        estimates = result.estimator().estimate_containments(pairs)
        errors = q_errors(estimates, truths, epsilon=CONTAINMENT_EPSILON)
        summaries[loss_name] = ErrorSummary.from_errors(loss_name, errors)
    return ExperimentReport(
        experiment_id="ablation_loss",
        title="Training-loss ablation for CRN on cnt_test1 (Section 3.2.4)",
        text=format_error_table(summaries),
        data={"summaries": summaries},
    )


@experiment("ablation_pooling")
def ablation_pooling(harness: ExperimentHarness) -> ExperimentReport:
    """Section 3.2.2: average pooling vs sum pooling in the set encoders."""
    return _crn_architecture_ablation(
        harness,
        "ablation_pooling",
        "Set-encoder pooling ablation on cnt_test2 (Section 3.2.2)",
        {
            "average pooling": replace(harness.profile.crn, pooling="average"),
            "sum pooling": replace(harness.profile.crn, pooling="sum"),
        },
    )


@experiment("ablation_expand")
def ablation_expand(harness: ExperimentHarness) -> ExperimentReport:
    """Section 3.2.3: the Expand feature map vs plain concatenation."""
    return _crn_architecture_ablation(
        harness,
        "ablation_expand",
        "Expand-features ablation on cnt_test2 (Section 3.2.3)",
        {
            "expand features": replace(harness.profile.crn, use_expand=True),
            "plain concatenation": replace(harness.profile.crn, use_expand=False),
        },
    )


def _crn_architecture_ablation(
    harness: ExperimentHarness,
    experiment_id: str,
    title: str,
    configs: dict[str, CRNConfig],
) -> ExperimentReport:
    workload = harness.workload("cnt_test2")
    assert isinstance(workload, PairWorkload)
    truths = [pair.containment_rate for pair in workload.pairs]
    pairs = [(pair.first, pair.second) for pair in workload.pairs]
    summaries: dict[str, ErrorSummary] = {}
    for name, config in configs.items():
        result = train_crn(
            harness.featurizer,
            harness.training_pairs,
            crn_config=config,
            training_config=_sweep_training_config(harness),
        )
        estimates = result.estimator().estimate_containments(pairs)
        errors = q_errors(estimates, truths, epsilon=CONTAINMENT_EPSILON)
        summaries[name] = ErrorSummary.from_errors(name, errors)
    return ExperimentReport(
        experiment_id=experiment_id,
        title=title,
        text=format_error_table(summaries),
        data={"summaries": summaries},
    )
