"""Experiment harness, per-table/figure experiment registry, reporting and timing."""

from repro.evaluation.experiments import (
    EXPERIMENTS,
    ExperimentReport,
    list_experiments,
    run_experiment,
)
from repro.evaluation.harness import (
    CARDINALITY_EPSILON,
    CONTAINMENT_EPSILON,
    DEFAULT_PROFILE,
    PAPER_PROFILE,
    PROFILES,
    SMOKE_PROFILE,
    ExperimentHarness,
    ExperimentProfile,
    get_harness,
)
from repro.evaluation.reporting import (
    boxplot_series,
    format_boxplot_series,
    format_convergence,
    format_error_table,
    format_join_distribution,
    format_per_join_table,
    format_service_stats,
)
from repro.evaluation.timing import (
    ServingTimedEvaluation,
    TimedEvaluation,
    format_pool_size_table,
    format_serving_table,
    format_timing_table,
    time_estimator,
    time_estimators,
    time_service,
)

__all__ = [
    "CARDINALITY_EPSILON",
    "CONTAINMENT_EPSILON",
    "DEFAULT_PROFILE",
    "EXPERIMENTS",
    "ExperimentHarness",
    "ExperimentProfile",
    "ExperimentReport",
    "PAPER_PROFILE",
    "PROFILES",
    "SMOKE_PROFILE",
    "ServingTimedEvaluation",
    "TimedEvaluation",
    "boxplot_series",
    "format_boxplot_series",
    "format_convergence",
    "format_error_table",
    "format_join_distribution",
    "format_per_join_table",
    "format_pool_size_table",
    "format_service_stats",
    "format_serving_table",
    "format_timing_table",
    "get_harness",
    "list_experiments",
    "run_experiment",
    "time_estimator",
    "time_estimators",
    "time_service",
]
