"""Rendering experiment results in the paper's table / figure formats.

Tables are rendered as fixed-width text with the paper's column layout
(50th/75th/90th/95th/99th percentile, max, mean).  "Figures" -- the box plots
and per-join bar charts -- are rendered as their underlying data series
(percentiles per model, or per-join means/medians), since the benchmark
harness is text-only.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.metrics import REPORTED_PERCENTILES, ErrorSummary

#: Percentiles shown by the paper's box plots (box = 25/75, whiskers = 5/95).
BOXPLOT_PERCENTILES: tuple[int, ...] = (5, 25, 50, 75, 95)


def format_error_table(
    summaries: Mapping[str, ErrorSummary],
    title: str = "",
    float_format: str = "{:.2f}",
) -> str:
    """Render error summaries as a paper-style percentile table."""
    headers = [f"{p}th" for p in REPORTED_PERCENTILES] + ["max", "mean"]
    name_width = max([len(name) for name in summaries] + [len("model")]) + 2
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("model".ljust(name_width) + "".join(header.rjust(12) for header in headers))
    for name, summary in summaries.items():
        row = summary.row()
        cells = "".join(_format_cell(row[header], float_format).rjust(12) for header in headers)
        lines.append(name.ljust(name_width) + cells)
    return "\n".join(lines)


def format_per_join_table(
    per_join: Mapping[str, Mapping[int, ErrorSummary]],
    metric: str = "mean",
    title: str = "",
) -> str:
    """Render per-join-count metrics (Table 9: means, Figure 11: medians)."""
    if metric not in ("mean", "median"):
        raise ValueError("metric must be 'mean' or 'median'")
    join_counts = sorted({joins for groups in per_join.values() for joins in groups})
    name_width = max([len(name) for name in per_join] + [len("model")]) + 2
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(
        "model".ljust(name_width)
        + "".join(f"{joins} joins".rjust(12) for joins in join_counts)
    )
    for name, groups in per_join.items():
        cells = []
        for joins in join_counts:
            if joins in groups:
                value = groups[joins].mean if metric == "mean" else groups[joins].median
                cells.append(_format_cell(value, "{:.2f}").rjust(12))
            else:
                cells.append("-".rjust(12))
        lines.append(name.ljust(name_width) + "".join(cells))
    return "\n".join(lines)


def boxplot_series(errors_by_model: Mapping[str, Sequence[float]]) -> dict[str, dict[int, float]]:
    """The data series behind the paper's box plots (Figures 5, 6, 9, 10, 12, 13).

    Returns, per model, the 5th/25th/50th/75th/95th percentiles of the q-error
    distribution -- the box boundaries and whiskers of the figures.
    """
    series: dict[str, dict[int, float]] = {}
    for name, errors in errors_by_model.items():
        values = np.asarray(list(errors), dtype=np.float64)
        if values.size == 0:
            raise ValueError(f"model {name!r} has no errors to summarize")
        series[name] = {p: float(np.percentile(values, p)) for p in BOXPLOT_PERCENTILES}
    return series


def format_boxplot_series(
    series: Mapping[str, Mapping[int, float]],
    title: str = "",
) -> str:
    """Render box-plot series as a fixed-width text table."""
    name_width = max([len(name) for name in series] + [len("model")]) + 2
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(
        "model".ljust(name_width)
        + "".join(f"p{p}".rjust(12) for p in BOXPLOT_PERCENTILES)
    )
    for name, percentiles in series.items():
        cells = "".join(
            _format_cell(percentiles[p], "{:.2f}").rjust(12) for p in BOXPLOT_PERCENTILES
        )
        lines.append(name.ljust(name_width) + cells)
    return "\n".join(lines)


def format_join_distribution(distributions: Mapping[str, Mapping[int, int]], title: str = "") -> str:
    """Render workload join distributions (Tables 2 and 5)."""
    join_counts = sorted({joins for counts in distributions.values() for joins in counts})
    name_width = max([len(name) for name in distributions] + [len("workload")]) + 2
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(
        "workload".ljust(name_width)
        + "".join(f"{joins} joins".rjust(10) for joins in join_counts)
        + "overall".rjust(10)
    )
    for name, counts in distributions.items():
        cells = "".join(str(counts.get(joins, 0)).rjust(10) for joins in join_counts)
        lines.append(name.ljust(name_width) + cells + str(sum(counts.values())).rjust(10))
    return "\n".join(lines)


def format_convergence(history: Sequence[Mapping[str, float]], title: str = "") -> str:
    """Render a training convergence history (Figure 4) as text."""
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("epoch".rjust(8) + "train loss".rjust(14) + "validation q-error".rjust(22))
    for entry in history:
        lines.append(
            f"{int(entry['epoch']):8d}"
            + _format_cell(float(entry["train_loss"]), "{:.4f}").rjust(14)
            + _format_cell(float(entry["validation_mean_q_error"]), "{:.4f}").rjust(22)
        )
    return "\n".join(lines)


#: ``stats_snapshot`` keys rendered by :func:`format_service_stats`, with label
#: and formatting (rates as percentages, latency in ms, counters as integers).
#: The tail rows cover :meth:`repro.serving.DispatcherStats.snapshot` and
#: :meth:`repro.serving.LifecycleStats.snapshot`, so one merged
#: ``{**service.stats_snapshot(), **dispatcher.stats.snapshot(),
#: **manager.stats.snapshot()}`` dict renders as a single coherent report.
_SERVICE_STAT_ROWS: tuple[tuple[str, str, str], ...] = (
    ("requests", "requests served", "{:.0f}"),
    ("batches", "batches executed", "{:.0f}"),
    ("planned_pairs", "pairs planned", "{:.0f}"),
    ("scored_pairs", "pairs scored", "{:.0f}"),
    ("deduplicated_pairs", "pairs deduplicated", "{:.0f}"),
    ("fallbacks", "fallback answers", "{:.0f}"),
    ("mean_latency_ms", "mean latency", "{:.2f}ms"),
    ("latency_p50_ms", "latency p50", "{:.2f}ms"),
    ("latency_p90_ms", "latency p90", "{:.2f}ms"),
    ("latency_p99_ms", "latency p99", "{:.2f}ms"),
    ("throughput_qps", "throughput", "{:.0f} qps"),
    ("featurization_hit_rate", "featurization hit rate", "{:.1%}"),
    ("featurization_entries", "featurizations cached", "{:.0f}"),
    ("encoding_hit_rate", "encoding hit rate", "{:.1%}"),
    ("encoding_entries", "encodings cached", "{:.0f}"),
    ("pool_index_signatures", "pool index signatures", "{:.0f}"),
    ("pool_index_rows", "pool index rows", "{:.0f}"),
    ("pool_index_served", "pool index served", "{:.0f}"),
    ("pool_index_fallbacks", "pool index fallbacks", "{:.0f}"),
    ("pool_index_builds", "pool index builds", "{:.0f}"),
    ("pool_index_rebuilds", "pool index rebuilds", "{:.0f}"),
    ("pool_index_appended_rows", "pool index rows appended", "{:.0f}"),
    ("submitted", "requests submitted", "{:.0f}"),
    ("completed", "requests completed", "{:.0f}"),
    ("failed", "requests failed", "{:.0f}"),
    ("timed_out", "requests timed out", "{:.0f}"),
    ("coalesced_batches", "coalesced batches", "{:.0f}"),
    ("coalesced_requests", "requests coalesced", "{:.0f}"),
    ("mean_batch_size", "mean batch size", "{:.1f}"),
    ("max_queue_depth", "max queue depth", "{:.0f}"),
    ("queue_wait_p50_ms", "queue wait p50", "{:.2f}ms"),
    ("queue_wait_p99_ms", "queue wait p99", "{:.2f}ms"),
    ("queue_wait_max_ms", "queue wait max", "{:.2f}ms"),
    ("evaluations", "drift evaluations", "{:.0f}"),
    ("drift_triggers", "drift triggers", "{:.0f}"),
    ("manual_triggers", "manual triggers", "{:.0f}"),
    ("retrains", "retrains", "{:.0f}"),
    ("incremental_retrains", "incremental retrains", "{:.0f}"),
    ("full_retrains", "full retrains", "{:.0f}"),
    ("retrain_failures", "retrain failures", "{:.0f}"),
    ("promote_failures", "promote failures", "{:.0f}"),
    ("escalations", "escalations to full", "{:.0f}"),
    ("candidates_rejected", "candidates rejected", "{:.0f}"),
    ("swaps", "models hot-swapped", "{:.0f}"),
    ("mean_retrain_seconds", "mean retrain time", "{:.2f}s"),
    ("last_retrain_seconds", "last retrain time", "{:.2f}s"),
    ("pre_swap_q_error", "pre-swap gate q-error", "{:.2f}"),
    ("post_swap_q_error", "post-swap gate q-error", "{:.2f}"),
    ("requests_between_swaps", "requests between swaps", "{:.0f}"),
    ("model_generation", "serving model generation", "{:.0f}"),
    ("feedback_observations", "feedback observations", "{:.0f}"),
    ("feedback_p50_q_error", "feedback p50 q-error", "{:.2f}"),
    ("feedback_p90_q_error", "feedback p90 q-error", "{:.2f}"),
    ("traces_started", "traces started", "{:.0f}"),
    ("traces_finished", "traces finished", "{:.0f}"),
    ("traces_kept", "traces kept", "{:.0f}"),
    ("traces_dropped", "traces dropped", "{:.0f}"),
    ("trace_tail_exemplars", "trace tail exemplars", "{:.0f}"),
    ("shared_spans", "shared spans recorded", "{:.0f}"),
    ("events_emitted", "events emitted", "{:.0f}"),
    ("events_buffered", "events buffered", "{:.0f}"),
    ("events_dropped", "events dropped", "{:.0f}"),
    ("events_flushed", "events flushed", "{:.0f}"),
    ("stored_events", "events stored", "{:.0f}"),
    ("stored_swaps", "swaps stored", "{:.0f}"),
    ("stored_drift_trips", "drift trips stored", "{:.0f}"),
)


def format_service_stats(snapshot: Mapping[str, float], title: str = "") -> str:
    """Render an estimation-service stats snapshot as fixed-width text.

    Takes the plain dict produced by
    :meth:`repro.serving.EstimationService.stats_snapshot` (keys absent from
    the snapshot — e.g. cache rows when the service has no caches — are
    skipped), optionally merged with
    :meth:`repro.serving.DispatcherStats.snapshot` for the dispatcher's
    concurrency counters.

    NaN values render as ``—`` ("no reading yet"): gauges like the lifecycle's
    pre/post-swap q-errors, or a :class:`repro.serving.FeedbackCollector`
    quantile over an empty window, are NaN until their first event, and a
    literal ``nan`` cell reads like a corrupted metric rather than an absent
    one.
    """
    rows = [
        (label, _format_stat(snapshot[key], fmt))
        for key, label, fmt in _SERVICE_STAT_ROWS
        if key in snapshot
    ]
    extras = sorted(set(snapshot) - {key for key, _, _ in _SERVICE_STAT_ROWS})
    rows.extend((key, _format_stat(snapshot[key], "{:.2f}")) for key in extras)
    label_width = max([len(label) for label, _ in rows] + [0]) + 2
    lines: list[str] = []
    if title:
        lines.append(title)
    for label, value in rows:
        lines.append(label.ljust(label_width) + value.rjust(14))
    return "\n".join(lines)


def _format_stat(value: float, float_format: str) -> str:
    """One service-stats cell; NaN means "no reading yet" and renders as —."""
    if isinstance(value, float) and np.isnan(value):
        return "—"
    return float_format.format(value)


def _format_cell(value: float, float_format: str) -> str:
    if value >= 1e6:
        return f"{value:.3g}"
    return float_format.format(value)
