"""The experiment harness: build the database, train the models, run workloads.

Every benchmark and example goes through :class:`ExperimentHarness`, which owns
the expensive shared artifacts (synthetic database, trained CRN / MSCN models,
queries pool, evaluation workloads) and builds each of them lazily exactly
once.  Three :class:`ExperimentProfile` presets scale the whole experiment:

* ``smoke``  -- minutes-long CI profile used by the integration tests;
* ``default`` -- the benchmark profile (laptop-scale, tens of minutes);
* ``paper``  -- the paper's published sizes (100k pairs, H=512, 120 epochs),
  provided for completeness and not executed in CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Mapping, Sequence

import numpy as np

from repro.baselines.mscn import (
    MSCNConfig,
    MSCNEstimator,
    MSCNTrainingConfig,
    MSCNTrainingResult,
    train_mscn,
)
from repro.baselines.postgres import PostgresCardinalityEstimator
from repro.core.cnt2crd import Cnt2CrdEstimator
from repro.core.crd2cnt import Crd2CntEstimator
from repro.core.crn import CRNConfig, CRNEstimator
from repro.core.estimators import CardinalityEstimator, ContainmentEstimator
from repro.core.featurization import QueryFeaturizer
from repro.core.improved import ImprovedEstimator
from repro.core.metrics import ErrorSummary, q_errors, summarize_by_group
from repro.core.queries_pool import QueriesPool
from repro.core.training import TrainingConfig, TrainingResult, train_crn
from repro.datasets.imdb import SyntheticIMDbConfig, build_synthetic_imdb
from repro.datasets.pairs import LabeledQuery, QueryPair, mscn_training_set
from repro.datasets.workloads import (
    PairWorkload,
    Workload,
    build_cnt_test1,
    build_cnt_test2,
    build_crd_test1,
    build_crd_test2,
    build_queries_pool_queries,
    build_scale_workload,
    build_training_pairs,
)
from repro.db.database import Database
from repro.db.intersection import TrueCardinalityOracle

#: q-error floor for containment rates (rates live in [0, 1] and are often 0).
CONTAINMENT_EPSILON = 1e-3

#: q-error floor for cardinalities (an empty result counts as one row).
CARDINALITY_EPSILON = 1.0


@dataclass(frozen=True)
class ExperimentProfile:
    """All knobs of one end-to-end experiment."""

    name: str
    imdb: SyntheticIMDbConfig = field(default_factory=SyntheticIMDbConfig)
    training_pairs: int = 2000
    crn: CRNConfig = field(default_factory=CRNConfig)
    crn_training: TrainingConfig = field(default_factory=TrainingConfig)
    mscn: MSCNConfig = field(default_factory=MSCNConfig)
    mscn_training: MSCNTrainingConfig = field(default_factory=MSCNTrainingConfig)
    mscn_samples: int = 200
    workload_scale: float = 0.25
    pool_size: int = 300
    seed: int = 0

    def scaled_workloads(self, scale: float) -> "ExperimentProfile":
        """Return a copy with a different evaluation workload scale."""
        return replace(self, workload_scale=scale)


#: CI-friendly profile: a small database, few pairs, a tiny CRN.
SMOKE_PROFILE = ExperimentProfile(
    name="smoke",
    imdb=SyntheticIMDbConfig(num_titles=600),
    training_pairs=400,
    crn=CRNConfig(hidden_size=32),
    crn_training=TrainingConfig(epochs=12, batch_size=32, early_stopping_patience=6),
    mscn=MSCNConfig(hidden_size=32),
    mscn_training=MSCNTrainingConfig(epochs=12),
    mscn_samples=100,
    workload_scale=0.05,
    pool_size=60,
)

#: Benchmark profile: laptop-scale but large enough for stable rankings.
DEFAULT_PROFILE = ExperimentProfile(
    name="default",
    imdb=SyntheticIMDbConfig(num_titles=2000),
    training_pairs=8000,
    crn=CRNConfig(hidden_size=128, seed=1),
    crn_training=TrainingConfig(epochs=60, batch_size=128, early_stopping_patience=12),
    mscn=MSCNConfig(hidden_size=128),
    mscn_training=MSCNTrainingConfig(epochs=60, batch_size=128),
    mscn_samples=500,
    workload_scale=0.15,
    pool_size=300,
)

#: The paper's published sizes (not run in CI; hours of NumPy training).
PAPER_PROFILE = ExperimentProfile(
    name="paper",
    imdb=SyntheticIMDbConfig(num_titles=50_000),
    training_pairs=100_000,
    crn=CRNConfig(hidden_size=512),
    crn_training=TrainingConfig(epochs=120, batch_size=128, early_stopping_patience=20),
    mscn=MSCNConfig(hidden_size=256),
    mscn_training=MSCNTrainingConfig(epochs=100),
    mscn_samples=1000,
    workload_scale=1.0,
    pool_size=300,
)

PROFILES: dict[str, ExperimentProfile] = {
    "smoke": SMOKE_PROFILE,
    "default": DEFAULT_PROFILE,
    "paper": PAPER_PROFILE,
}


class ExperimentHarness:
    """Lazily builds and caches every artifact the experiments need."""

    def __init__(self, profile: ExperimentProfile | str = "default") -> None:
        self.profile = PROFILES[profile] if isinstance(profile, str) else profile
        self._database: Database | None = None
        self._oracle: TrueCardinalityOracle | None = None
        self._featurizer: QueryFeaturizer | None = None
        self._training_pairs: list[QueryPair] | None = None
        self._mscn_training_queries: list[LabeledQuery] | None = None
        self._crn_result: TrainingResult | None = None
        self._mscn_result: MSCNTrainingResult | None = None
        self._mscn1000_result: MSCNTrainingResult | None = None
        self._pool: QueriesPool | None = None
        self._workloads: dict[str, Workload | PairWorkload] = {}

    # ------------------------------------------------------------------ #
    # shared substrate

    @property
    def database(self) -> Database:
        """The synthetic IMDb database snapshot."""
        if self._database is None:
            self._database = build_synthetic_imdb(self.profile.imdb)
        return self._database

    @property
    def oracle(self) -> TrueCardinalityOracle:
        """The shared memoizing true-cardinality oracle."""
        if self._oracle is None:
            self._oracle = TrueCardinalityOracle(self.database)
        return self._oracle

    @property
    def featurizer(self) -> QueryFeaturizer:
        """The CRN featurizer bound to the database."""
        if self._featurizer is None:
            self._featurizer = QueryFeaturizer(self.database)
        return self._featurizer

    @property
    def training_pairs(self) -> list[QueryPair]:
        """The CRN training corpus (pairs with 0-2 joins)."""
        if self._training_pairs is None:
            self._training_pairs = build_training_pairs(
                self.database,
                count=self.profile.training_pairs,
                seed=self.profile.seed + 1,
                oracle=self.oracle,
            )
        return self._training_pairs

    @property
    def mscn_training_queries(self) -> list[LabeledQuery]:
        """The MSCN training set derived from the CRN pairs (Section 4.1.2)."""
        if self._mscn_training_queries is None:
            self._mscn_training_queries = mscn_training_set(
                self.database, self.training_pairs, oracle=self.oracle
            )
        return self._mscn_training_queries

    # ------------------------------------------------------------------ #
    # trained models

    @property
    def crn_result(self) -> TrainingResult:
        """The trained CRN model (trained on first access)."""
        if self._crn_result is None:
            self._crn_result = train_crn(
                self.featurizer,
                self.training_pairs,
                crn_config=self.profile.crn,
                training_config=self.profile.crn_training,
            )
        return self._crn_result

    @property
    def mscn_result(self) -> MSCNTrainingResult:
        """The trained MSCN model (no samples)."""
        if self._mscn_result is None:
            self._mscn_result = train_mscn(
                self.database,
                self.mscn_training_queries,
                mscn_config=self.profile.mscn,
                training_config=self.profile.mscn_training,
            )
        return self._mscn_result

    @property
    def mscn1000_result(self) -> MSCNTrainingResult:
        """The trained sample-bitmap MSCN variant ("MSCN with samples")."""
        if self._mscn1000_result is None:
            config = replace(
                self.profile.mscn, use_samples=True, sample_size=self.profile.mscn_samples
            )
            self._mscn1000_result = train_mscn(
                self.database,
                self.mscn_training_queries,
                mscn_config=config,
                training_config=self.profile.mscn_training,
            )
        return self._mscn1000_result

    # ------------------------------------------------------------------ #
    # estimators

    def crn_estimator(self) -> CRNEstimator:
        """The trained CRN containment estimator."""
        return self.crn_result.estimator()

    def postgres_estimator(self) -> PostgresCardinalityEstimator:
        """The PostgreSQL-style statistics baseline."""
        return PostgresCardinalityEstimator(self.database)

    def mscn_estimator(self) -> MSCNEstimator:
        """The MSCN cardinality baseline."""
        return self.mscn_result.estimator()

    def mscn1000_estimator(self) -> MSCNEstimator:
        """The sample-enhanced MSCN baseline."""
        return self.mscn1000_result.estimator()

    def crd2cnt_estimators(self) -> dict[str, ContainmentEstimator]:
        """The containment estimators compared in Section 4 (CRN + Crd2Cnt baselines)."""
        return {
            "Crd2Cnt(PostgreSQL)": Crd2CntEstimator(self.postgres_estimator()),
            "Crd2Cnt(MSCN)": Crd2CntEstimator(self.mscn_estimator()),
            "CRN": self.crn_estimator(),
        }

    @property
    def pool(self) -> QueriesPool:
        """The queries pool of Section 6.2."""
        if self._pool is None:
            labelled = build_queries_pool_queries(
                self.database,
                count=self.profile.pool_size,
                seed=self.profile.seed + 29,
                oracle=self.oracle,
            )
            self._pool = QueriesPool.from_labeled_queries(labelled)
        return self._pool

    def cnt2crd_crn_estimator(
        self,
        pool: QueriesPool | None = None,
        fallback: CardinalityEstimator | None = None,
    ) -> Cnt2CrdEstimator:
        """The paper's proposed cardinality estimator ``Cnt2Crd(CRN)``.

        Args:
            pool: queries pool to use (defaults to the harness pool).
            fallback: estimator consulted when a query's FROM clause has no
                pool match (Section 5.2 suggests falling back to a basic
                estimator); only needed for artificially small pools.
        """
        return Cnt2CrdEstimator(self.crn_estimator(), pool or self.pool, fallback=fallback)

    def improved_postgres_estimator(self, pool: QueriesPool | None = None) -> ImprovedEstimator:
        """``Improved PostgreSQL`` = Cnt2Crd(Crd2Cnt(PostgreSQL))."""
        return ImprovedEstimator(self.postgres_estimator(), pool or self.pool)

    def improved_mscn_estimator(self, pool: QueriesPool | None = None) -> ImprovedEstimator:
        """``Improved MSCN`` = Cnt2Crd(Crd2Cnt(MSCN))."""
        return ImprovedEstimator(self.mscn_estimator(), pool or self.pool)

    def cardinality_estimators(self) -> dict[str, CardinalityEstimator]:
        """The cardinality estimators compared in Section 6 (Tables 6-10)."""
        return {
            "PostgreSQL": self.postgres_estimator(),
            "MSCN": self.mscn_estimator(),
            "Cnt2Crd(CRN)": self.cnt2crd_crn_estimator(),
        }

    def all_cardinality_estimators(self) -> dict[str, CardinalityEstimator]:
        """Every cardinality estimator in the paper, including the improved models."""
        estimators = self.cardinality_estimators()
        estimators["Improved PostgreSQL"] = self.improved_postgres_estimator()
        estimators["Improved MSCN"] = self.improved_mscn_estimator()
        estimators["MSCN1000"] = self.mscn1000_estimator()
        return estimators

    # ------------------------------------------------------------------ #
    # workloads

    def workload(self, name: str) -> Workload | PairWorkload:
        """Build (once) and return one of the paper's evaluation workloads.

        Supported names: ``cnt_test1``, ``cnt_test2``, ``crd_test1``,
        ``crd_test2``, ``scale``.
        """
        if name not in self._workloads:
            scale = self.profile.workload_scale
            seed = self.profile.seed
            builders = {
                "cnt_test1": lambda: build_cnt_test1(self.database, scale=scale, seed=seed + 11, oracle=self.oracle),
                "cnt_test2": lambda: build_cnt_test2(self.database, scale=scale, seed=seed + 13, oracle=self.oracle),
                "crd_test1": lambda: build_crd_test1(self.database, scale=scale, seed=seed + 17, oracle=self.oracle),
                "crd_test2": lambda: build_crd_test2(self.database, scale=scale, seed=seed + 19, oracle=self.oracle),
                "scale": lambda: build_scale_workload(self.database, scale=scale, seed=seed + 23, oracle=self.oracle),
            }
            if name not in builders:
                raise KeyError(f"unknown workload {name!r}; available: {sorted(builders)}")
            self._workloads[name] = builders[name]()
        return self._workloads[name]

    # ------------------------------------------------------------------ #
    # evaluation

    def evaluate_containment(
        self,
        workload_name: str,
        estimators: Mapping[str, ContainmentEstimator] | None = None,
    ) -> dict[str, ErrorSummary]:
        """Evaluate containment estimators on a pair workload (Tables 3-4)."""
        workload = self.workload(workload_name)
        if not isinstance(workload, PairWorkload):
            raise TypeError(f"workload {workload_name!r} is not a pair workload")
        estimators = estimators or self.crd2cnt_estimators()
        truths = [pair.containment_rate for pair in workload.pairs]
        pairs = [(pair.first, pair.second) for pair in workload.pairs]
        summaries: dict[str, ErrorSummary] = {}
        for name, estimator in estimators.items():
            estimates = estimator.estimate_containments(pairs)
            errors = q_errors(estimates, truths, epsilon=CONTAINMENT_EPSILON)
            summaries[name] = ErrorSummary.from_errors(name, errors)
        return summaries

    def evaluate_cardinality(
        self,
        workload_name: str,
        estimators: Mapping[str, CardinalityEstimator] | None = None,
        min_joins: int | None = None,
        max_joins: int | None = None,
    ) -> dict[str, ErrorSummary]:
        """Evaluate cardinality estimators on a query workload (Tables 6-13)."""
        workload = self.workload(workload_name)
        if not isinstance(workload, Workload):
            raise TypeError(f"workload {workload_name!r} is not a cardinality workload")
        if min_joins is not None or max_joins is not None:
            workload = workload.restrict_joins(min_joins or 0, max_joins if max_joins is not None else 99)
        estimators = estimators or self.cardinality_estimators()
        queries = [labeled.query for labeled in workload.queries]
        truths = [labeled.cardinality for labeled in workload.queries]
        summaries: dict[str, ErrorSummary] = {}
        for name, estimator in estimators.items():
            estimates = estimator.estimate_cardinalities(queries)
            errors = q_errors(estimates, truths, epsilon=CARDINALITY_EPSILON)
            summaries[name] = ErrorSummary.from_errors(name, errors)
        return summaries

    def evaluate_cardinality_per_join(
        self,
        workload_name: str,
        estimators: Mapping[str, CardinalityEstimator] | None = None,
    ) -> dict[str, dict[int, ErrorSummary]]:
        """Per-join-count error summaries (Table 9 / Figure 11)."""
        workload = self.workload(workload_name)
        if not isinstance(workload, Workload):
            raise TypeError(f"workload {workload_name!r} is not a cardinality workload")
        estimators = estimators or self.cardinality_estimators()
        queries = [labeled.query for labeled in workload.queries]
        truths = [labeled.cardinality for labeled in workload.queries]
        groups = [labeled.num_joins for labeled in workload.queries]
        result: dict[str, dict[int, ErrorSummary]] = {}
        for name, estimator in estimators.items():
            estimates = estimator.estimate_cardinalities(queries)
            result[name] = summarize_by_group(
                name, estimates, truths, groups, epsilon=CARDINALITY_EPSILON
            )
        return result


@lru_cache(maxsize=4)
def get_harness(profile: str = "default") -> ExperimentHarness:
    """Shared harness instances keyed by profile name.

    Benchmarks and examples call this so the expensive artifacts (database,
    trained models, workloads) are built once per process and reused.
    """
    return ExperimentHarness(profile)
