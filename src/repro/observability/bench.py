"""Machine-readable benchmark results: schema, env fingerprint, trajectory.

Every ``benchmarks/bench_*.py`` run used to print its numbers to stdout and
lose them; this module gives those numbers a durable, diffable form.  A
**row** is one measured metric::

    {
      "schema_version": 1,
      "suite": "serving",                  # which BENCH_<suite>.json it belongs to
      "benchmark": "bench_serving_throughput",
      "metric": "served_speedup",
      "value": 5.6,
      "units": "x",                        # "x" | "ms" | "s" | "qps" | ...
      "higher_is_better": true,
      "profile": "smoke",                  # REPRO_SMOKE / REPRO_BENCH_PROFILE scale
      "git_rev": "d62521a",
      "recorded_at": 1754630000.0,
      "env": {"python": "3.12.3", "platform": "Linux-...", ...}
    }

A **trajectory** file (``BENCH_serving.json`` / ``BENCH_repro.json``,
checked into the repo root) is ``{"schema_version": 1, "rows": [...]}``,
deduplicated on ``(benchmark, metric, profile, git_rev)`` — re-running a
benchmark at the same revision *replaces* its row instead of appending a
duplicate, while new revisions grow the history.  ``scripts/bench_report.py``
diffs trajectories and gates regressions; the benchmark suite's conftest
records rows automatically and merges them when ``REPRO_BENCH_UPDATE=1``.

The clock is injectable everywhere (``BenchRun(clock=...)``) so tests can
pin ``recorded_at`` and assert byte-stable round-trips.
"""

from __future__ import annotations

import json
import math
import os
import platform
import subprocess
import sys
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

__all__ = [
    "SCHEMA_VERSION",
    "BenchRun",
    "current_profile",
    "env_fingerprint",
    "git_revision",
    "load_rows",
    "load_trajectory",
    "merge_trajectory",
    "row_key",
    "validate_row",
    "write_rows",
]

SCHEMA_VERSION = 1

#: Required row fields and their types (``value`` may be NaN — "no signal").
_REQUIRED: tuple[tuple[str, type | tuple[type, ...]], ...] = (
    ("schema_version", int),
    ("suite", str),
    ("benchmark", str),
    ("metric", str),
    ("value", (int, float)),
    ("units", str),
    ("higher_is_better", bool),
    ("profile", str),
    ("git_rev", str),
    ("recorded_at", (int, float)),
    ("env", dict),
)

_SUITES = ("serving", "repro")


def current_profile() -> str:
    """The scale the current process is benchmarking at.

    ``REPRO_SMOKE=1`` and ``REPRO_BENCH_PROFILE=smoke`` both mean "smoke":
    rows are only comparable within one profile, so the gate never diffs a
    smoke run against a paper-scale one.
    """
    if os.environ.get("REPRO_SMOKE", "") == "1":
        return "smoke"
    return os.environ.get("REPRO_BENCH_PROFILE", "smoke")


def env_fingerprint() -> dict[str, Any]:
    """Where this row was measured: interpreter, platform, library versions."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = "unknown"
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 0,
        "numpy": numpy_version,
        "argv0": Path(sys.argv[0]).name if sys.argv else "",
    }


def git_revision() -> str:
    """The repo's short HEAD revision (``"unknown"`` outside a checkout)."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    revision = completed.stdout.strip()
    return revision if completed.returncode == 0 and revision else "unknown"


def validate_row(row: Mapping[str, Any]) -> dict[str, Any]:
    """Check one row against the schema; returns it as a plain dict.

    Raises:
        ValueError: naming every violated constraint — a malformed row must
            fail loudly at emission time, not corrupt a trajectory.
    """
    problems: list[str] = []
    for name, types in _REQUIRED:
        if name not in row:
            problems.append(f"missing field {name!r}")
            continue
        value = row[name]
        if isinstance(value, bool) and not (
            types is bool or (isinstance(types, tuple) and bool in types)
        ):
            problems.append(f"field {name!r} must be {types}, got bool")
        elif not isinstance(value, types):
            problems.append(
                f"field {name!r} must be {types}, got {type(value).__name__}"
            )
    if not problems:
        if row["schema_version"] != SCHEMA_VERSION:
            problems.append(
                f"schema_version must be {SCHEMA_VERSION}, got {row['schema_version']}"
            )
        if row["suite"] not in _SUITES:
            problems.append(f"suite must be one of {_SUITES}, got {row['suite']!r}")
        for name in ("benchmark", "metric", "units", "profile", "git_rev"):
            if not row[name]:
                problems.append(f"field {name!r} must be non-empty")
        value = row["value"]
        if isinstance(value, float) and math.isinf(value):
            problems.append("value must be finite or NaN, got infinity")
    if problems:
        raise ValueError(
            f"invalid benchmark row ({'; '.join(problems)}): {dict(row)!r}"
        )
    return dict(row)


def row_key(row: Mapping[str, Any]) -> tuple[str, str, str, str]:
    """The trajectory dedup key: ``(benchmark, metric, profile, git_rev)``."""
    return (row["benchmark"], row["metric"], row["profile"], row["git_rev"])


class BenchRun:
    """Collects one process's benchmark rows with a shared fingerprint.

    Args:
        suite: which trajectory the rows belong to (``"serving"`` /
            ``"repro"``).
        clock: ``recorded_at`` source, injectable for deterministic tests.
        git_rev / profile / env: overrides for the auto-detected values
            (tests pin them; real runs take the defaults).
    """

    def __init__(
        self,
        suite: str,
        clock: Callable[[], float] | None = None,
        git_rev: str | None = None,
        profile: str | None = None,
        env: Mapping[str, Any] | None = None,
    ) -> None:
        if suite not in _SUITES:
            raise ValueError(f"suite must be one of {_SUITES}, got {suite!r}")
        if clock is None:
            import time

            clock = time.time
        self.suite = suite
        self._clock = clock
        self._git_rev = git_rev if git_rev is not None else git_revision()
        self._profile = profile if profile is not None else current_profile()
        self._env = dict(env) if env is not None else env_fingerprint()
        self.rows: list[dict[str, Any]] = []

    def record(
        self,
        benchmark: str,
        metric: str,
        value: float,
        units: str,
        higher_is_better: bool,
    ) -> dict[str, Any]:
        """Record one validated metric row and return it.

        A repeated ``(benchmark, metric)`` in the same run replaces the
        earlier row (last measurement wins), mirroring the trajectory's
        dedup semantics.
        """
        row = validate_row(
            {
                "schema_version": SCHEMA_VERSION,
                "suite": self.suite,
                "benchmark": benchmark,
                "metric": metric,
                "value": float(value),
                "units": units,
                "higher_is_better": higher_is_better,
                "profile": self._profile,
                "git_rev": self._git_rev,
                "recorded_at": float(self._clock()),
                "env": dict(self._env),
            }
        )
        self.rows = [
            existing for existing in self.rows if row_key(existing) != row_key(row)
        ]
        self.rows.append(row)
        return row


# ---------------------------------------------------------------------- #
# trajectory files


def _nan_safe_dump(payload: Any) -> str:
    """JSON with NaN spelled as the string ``"NaN"`` (strict JSON has no NaN)."""

    def encode(value: Any) -> Any:
        if isinstance(value, float) and math.isnan(value):
            return "NaN"
        if isinstance(value, dict):
            return {key: encode(item) for key, item in value.items()}
        if isinstance(value, list):
            return [encode(item) for item in value]
        return value

    return json.dumps(encode(payload), indent=2, sort_keys=True) + "\n"


def _nan_safe_load(text: str) -> Any:
    def decode(value: Any) -> Any:
        if value == "NaN":
            return float("nan")
        if isinstance(value, dict):
            return {key: decode(item) for key, item in value.items()}
        if isinstance(value, list):
            return [decode(item) for item in value]
        return value

    return decode(json.loads(text))


def write_rows(path: str | Path, rows: Iterable[Mapping[str, Any]]) -> None:
    """Write a bare row list (a session's emissions, not a trajectory)."""
    validated = [validate_row(row) for row in rows]
    Path(path).write_text(_nan_safe_dump(validated))


def load_rows(path: str | Path) -> list[dict[str, Any]]:
    """Load rows from either a bare row list or a trajectory file."""
    payload = _nan_safe_load(Path(path).read_text())
    if isinstance(payload, Mapping):
        payload = payload.get("rows", [])
    return [validate_row(row) for row in payload]


def load_trajectory(path: str | Path) -> list[dict[str, Any]]:
    """Load a trajectory file's rows ([] when the file does not exist)."""
    path = Path(path)
    if not path.exists():
        return []
    return load_rows(path)


def merge_trajectory(
    path: str | Path, rows: Iterable[Mapping[str, Any]]
) -> list[dict[str, Any]]:
    """Merge ``rows`` into the trajectory at ``path`` (created when absent).

    Deduplicates on :func:`row_key`: a re-run at the same revision replaces
    its old row, new revisions append.  Rows are kept sorted by
    ``(benchmark, metric, profile, recorded_at)`` so diffs of the checked-in
    file stay readable.  Returns the merged row list.
    """
    merged: dict[tuple, dict[str, Any]] = {
        row_key(row): row for row in load_trajectory(path)
    }
    for row in rows:
        row = validate_row(row)
        merged[row_key(row)] = row
    ordered = sorted(
        merged.values(),
        key=lambda row: (
            row["benchmark"],
            row["metric"],
            row["profile"],
            row["recorded_at"],
        ),
    )
    Path(path).write_text(
        _nan_safe_dump({"schema_version": SCHEMA_VERSION, "rows": ordered})
    )
    return ordered
