"""The persistent event store: SQLite with deduplicated records and views.

Follows the eval-results-database shape (deduplicated result records +
aggregate views): every event lands in one ``events`` table keyed by
``(source, sequence)`` with ``INSERT OR IGNORE``, so flushing the same
drained batch twice — a retried flush, overlapping consumers, a crash
between flush and ack — cannot double-count anything.  The event's primary
scalar (:meth:`repro.observability.Event.value`) and its attribution columns
(estimator, model generation) are hoisted out of the JSON payload into real
columns, so the aggregate views are plain SQL over indexed data:

* ``view_per_estimator_q_error`` — feedback q-error aggregates per registry
  name (count / mean / max);
* ``view_tail_latency`` — request-latency aggregates per registry name (the
  exact quantiles come from :meth:`EventStore.latency_quantile`, since
  SQLite has no percentile aggregate);
* ``view_swap_history`` — every promoted hot swap, keyed by
  ``model_generation`` — the same number stamped on every
  :class:`repro.serving.EstimateResult`, so responses and swap records
  attribute to the same model;
* ``view_plan_history`` — every compiled-inference-plan lifecycle event
  (``plan_compile`` / ``plan_swap``), keyed by ``model_generation`` so plan
  compiles and handovers line up next to the swap history they belong to;
* ``view_artifact_history`` — every artifact lifecycle event (saved /
  loaded / promoted / rolled back), keyed by ``model_generation`` so the
  on-disk snapshot record lines up against the swap and plan history;
* ``view_generation_provenance`` — one row per model generation joining
  requests served, swaps, and artifact lifecycle counts, so "which snapshot
  answered this request" is answerable from the store alone;
* ``view_event_counts`` — events per kind (the taxonomy's census).

The store is thread-safe (one connection, writes serialized on an internal
lock) and file-backed by default, so a restarted process — or a CI artifact
download — can query the full history of a serving run.
"""

from __future__ import annotations

import json
import math
import sqlite3
import threading
from typing import Any, Iterable, Sequence

from repro.observability.buffer import BufferedEvent
from repro.observability.events import Event, event_from_payload

__all__ = ["EventStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS events (
    source TEXT NOT NULL,
    sequence INTEGER NOT NULL,
    ts REAL NOT NULL,
    kind TEXT NOT NULL,
    estimator TEXT,
    model_generation INTEGER,
    value REAL,
    payload TEXT NOT NULL,
    PRIMARY KEY (source, sequence)
);
CREATE INDEX IF NOT EXISTS idx_events_kind ON events (kind);
CREATE INDEX IF NOT EXISTS idx_events_estimator ON events (estimator);
-- The composite index the quantile/aggregate queries actually want: every
-- one of them filters on kind (often plus estimator), and the single-column
-- indexes above cannot serve both predicates at once.
CREATE INDEX IF NOT EXISTS idx_events_kind_estimator ON events (kind, estimator);

CREATE TABLE IF NOT EXISTS spans (
    source TEXT NOT NULL,
    sequence INTEGER NOT NULL,
    ts REAL NOT NULL,
    trace_id TEXT NOT NULL,
    span_id TEXT NOT NULL,
    parent_id TEXT NOT NULL,
    name TEXT NOT NULL,
    start REAL NOT NULL,
    duration_seconds REAL NOT NULL,
    estimator TEXT,
    members INTEGER NOT NULL DEFAULT 1,
    attributes TEXT NOT NULL,
    PRIMARY KEY (source, sequence)
);
CREATE INDEX IF NOT EXISTS idx_spans_trace ON spans (trace_id);
CREATE INDEX IF NOT EXISTS idx_spans_name ON spans (name);

CREATE TABLE IF NOT EXISTS span_links (
    source TEXT NOT NULL,
    sequence INTEGER NOT NULL,
    ts REAL NOT NULL,
    trace_id TEXT NOT NULL,
    span_id TEXT NOT NULL,
    span_name TEXT NOT NULL,
    amortized_seconds REAL NOT NULL,
    members INTEGER NOT NULL DEFAULT 1,
    link_kind TEXT NOT NULL,
    PRIMARY KEY (source, sequence)
);
CREATE INDEX IF NOT EXISTS idx_span_links_trace ON span_links (trace_id);

CREATE VIEW IF NOT EXISTS view_per_estimator_q_error AS
    SELECT estimator,
           COUNT(*)   AS observations,
           AVG(value) AS mean_q_error,
           MIN(value) AS min_q_error,
           MAX(value) AS max_q_error
    FROM events
    WHERE kind = 'feedback' AND value IS NOT NULL
    GROUP BY estimator;

CREATE VIEW IF NOT EXISTS view_tail_latency AS
    SELECT estimator,
           COUNT(*)          AS requests,
           AVG(value) * 1000 AS mean_latency_ms,
           MAX(value) * 1000 AS max_latency_ms
    FROM events
    WHERE kind = 'request_served' AND value IS NOT NULL
    GROUP BY estimator;

CREATE VIEW IF NOT EXISTS view_swap_history AS
    SELECT model_generation,
           estimator,
           ts,
           json_extract(payload, '$.pre_swap_q_error')        AS pre_swap_q_error,
           json_extract(payload, '$.post_swap_q_error')       AS post_swap_q_error,
           json_extract(payload, '$.requests_between_swaps')  AS requests_between_swaps,
           json_extract(payload, '$.mode')                    AS mode
    FROM events
    WHERE kind = 'model_swap'
    ORDER BY model_generation;

CREATE VIEW IF NOT EXISTS view_plan_history AS
    SELECT model_generation,
           estimator,
           ts,
           kind,
           json_extract(payload, '$.dtype')   AS dtype,
           json_extract(payload, '$.nodes')   AS nodes,
           json_extract(payload, '$.outcome') AS outcome
    FROM events
    WHERE kind IN ('plan_compile', 'plan_swap')
    ORDER BY model_generation, ts;

CREATE VIEW IF NOT EXISTS view_artifact_history AS
    SELECT model_generation,
           ts,
           kind,
           json_extract(payload, '$.source')           AS source,
           json_extract(payload, '$.size_bytes')       AS size_bytes,
           json_extract(payload, '$.previous')         AS previous,
           json_extract(payload, '$.rolled_back_from') AS rolled_back_from
    FROM events
    WHERE kind IN ('artifact_saved', 'artifact_loaded',
                   'artifact_promoted', 'artifact_rolled_back')
    ORDER BY model_generation, ts;

-- One row per model generation, joining serving traffic against the swap
-- and artifact lifecycle: the provenance answer "which snapshot (and which
-- swap) stands behind the requests this generation answered".
CREATE VIEW IF NOT EXISTS view_generation_provenance AS
    SELECT model_generation,
           SUM(kind = 'request_served')       AS requests_served,
           SUM(kind = 'model_swap')           AS swaps,
           SUM(kind = 'artifact_saved')       AS artifacts_saved,
           SUM(kind = 'artifact_loaded')      AS artifacts_loaded,
           SUM(kind = 'artifact_promoted')    AS artifacts_promoted,
           SUM(kind = 'artifact_rolled_back') AS artifact_rollbacks
    FROM events
    WHERE model_generation IS NOT NULL
    GROUP BY model_generation
    ORDER BY model_generation;

CREATE VIEW IF NOT EXISTS view_event_counts AS
    SELECT kind, COUNT(*) AS events
    FROM events
    GROUP BY kind;

CREATE VIEW IF NOT EXISTS view_span_kind_latency AS
    SELECT name,
           COUNT(*)                     AS spans,
           SUM(duration_seconds)        AS total_seconds,
           AVG(duration_seconds) * 1000 AS mean_ms,
           MAX(duration_seconds) * 1000 AS max_ms
    FROM spans
    GROUP BY name;

-- Critical-path breakdown per traced request: the root span's wall time,
-- the sum of its request-owned stage spans, and the sum of its amortized
-- shares of linked batch/kernel spans.  The fan-in attribution contract is
-- own_seconds + amortized_seconds ~= latency-accounted time (context links
-- are excluded: they carry attribution, not additional wall clock).
CREATE VIEW IF NOT EXISTS view_trace_accounting AS
    SELECT s.trace_id,
           s.source,
           s.estimator,
           s.start,
           s.duration_seconds AS root_seconds,
           CAST(json_extract(s.attributes, '$.latency_seconds') AS REAL)
               AS latency_seconds,
           (SELECT COALESCE(SUM(c.duration_seconds), 0)
              FROM spans c
             WHERE c.trace_id = s.trace_id AND c.parent_id = s.span_id)
               AS own_seconds,
           (SELECT COALESCE(SUM(l.amortized_seconds), 0)
              FROM span_links l
             WHERE l.trace_id = s.trace_id AND l.link_kind = 'amortized')
               AS amortized_seconds
    FROM spans s
    WHERE s.parent_id = '' AND s.name = 'request';
"""


def _clean(value: float | None) -> float | None:
    """NaN has no SQL ordering and would poison aggregates; store NULL."""
    if value is None:
        return None
    value = float(value)
    return None if math.isnan(value) else value


class EventStore:
    """A SQLite-backed sink of :class:`repro.observability.Event` records.

    Args:
        path: database file (``":memory:"`` for an in-process store — still
            queryable, just not durable).
    """

    def __init__(self, path: str = ":memory:") -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._connection = sqlite3.connect(self.path, check_same_thread=False)
        self._connection.row_factory = sqlite3.Row
        with self._lock:
            self._connection.executescript(_SCHEMA)
            self._connection.commit()

    # ------------------------------------------------------------------ #
    # writing

    def insert(self, source: str, events: Iterable[BufferedEvent]) -> int:
        """Sink a drained batch; returns how many records were *new*.

        Records are deduplicated on ``(source, sequence)`` with
        ``INSERT OR IGNORE``: flushing the same batch twice is a no-op, so
        at-least-once delivery from the buffer becomes exactly-once storage.
        Tracing events are routed to their own tables (``span`` →
        ``spans``, ``span_link`` → ``span_links``); sequences come from the
        recorder's single counter, so the dedup key stays unique across all
        three tables.
        """
        rows = []
        span_rows = []
        link_rows = []
        for item in events:
            event = item.event
            if event.kind == "span":
                span_rows.append(
                    (
                        source,
                        item.sequence,
                        item.timestamp,
                        event.trace_id,
                        event.span_id,
                        event.parent_id,
                        event.name,
                        event.start,
                        event.duration_seconds,
                        event.estimator() or None,
                        event.members,
                        json.dumps(dict(event.attributes)),
                    )
                )
            elif event.kind == "span_link":
                link_rows.append(
                    (
                        source,
                        item.sequence,
                        item.timestamp,
                        event.trace_id,
                        event.span_id,
                        event.span_name,
                        event.amortized_seconds,
                        event.members,
                        event.link_kind,
                    )
                )
            else:
                rows.append(
                    (
                        source,
                        item.sequence,
                        item.timestamp,
                        event.kind,
                        event.estimator(),
                        event.model_generation(),
                        _clean(event.value()),
                        json.dumps(event.payload(), default=str),
                    )
                )
        if not rows and not span_rows and not link_rows:
            return 0
        with self._lock:
            before = self._connection.total_changes
            if rows:
                self._connection.executemany(
                    "INSERT OR IGNORE INTO events "
                    "(source, sequence, ts, kind, estimator, model_generation, value, payload) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    rows,
                )
            if span_rows:
                self._connection.executemany(
                    "INSERT OR IGNORE INTO spans "
                    "(source, sequence, ts, trace_id, span_id, parent_id, name, "
                    "start, duration_seconds, estimator, members, attributes) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    span_rows,
                )
            if link_rows:
                self._connection.executemany(
                    "INSERT OR IGNORE INTO span_links "
                    "(source, sequence, ts, trace_id, span_id, span_name, "
                    "amortized_seconds, members, link_kind) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    link_rows,
                )
            self._connection.commit()
            return self._connection.total_changes - before

    # ------------------------------------------------------------------ #
    # querying

    def query(self, sql: str, parameters: Sequence[Any] = ()) -> list[dict[str, Any]]:
        """Run arbitrary SQL (views included) and return plain dict rows."""
        with self._lock:
            cursor = self._connection.execute(sql, tuple(parameters))
            return [dict(row) for row in cursor.fetchall()]

    def events(self, kind: str | None = None, source: str | None = None) -> list[Event]:
        """Typed events back out of storage, in ``(source, sequence)`` order."""
        clauses, parameters = [], []
        if kind is not None:
            clauses.append("kind = ?")
            parameters.append(kind)
        if source is not None:
            clauses.append("source = ?")
            parameters.append(source)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        rows = self.query(
            f"SELECT kind, payload FROM events {where} ORDER BY source, sequence",
            parameters,
        )
        return [
            event_from_payload(row["kind"], json.loads(row["payload"])) for row in rows
        ]

    def counts(self) -> dict[str, int]:
        """Events per kind (``view_event_counts`` plus the span tables)."""
        counts = {
            row["kind"]: int(row["events"])
            for row in self.query("SELECT * FROM view_event_counts")
        }
        for kind, table in (("span", "spans"), ("span_link", "span_links")):
            n = int(self.query(f"SELECT COUNT(*) AS n FROM {table}")[0]["n"])
            if n:
                counts[kind] = n
        return counts

    def per_estimator_q_error(self) -> list[dict[str, Any]]:
        """The ``view_per_estimator_q_error`` rows."""
        return self.query("SELECT * FROM view_per_estimator_q_error ORDER BY estimator")

    def tail_latency(self) -> list[dict[str, Any]]:
        """The ``view_tail_latency`` rows."""
        return self.query("SELECT * FROM view_tail_latency ORDER BY estimator")

    def swap_history(self) -> list[dict[str, Any]]:
        """Every promoted hot swap, keyed (and ordered) by model generation."""
        return self.query("SELECT * FROM view_swap_history")

    def plan_history(self) -> list[dict[str, Any]]:
        """Compiled-plan lifecycle (compiles and handovers) by model generation."""
        return self.query("SELECT * FROM view_plan_history")

    def artifact_history(self) -> list[dict[str, Any]]:
        """Artifact lifecycle (saves/loads/promotes/rollbacks) by model generation."""
        return self.query("SELECT * FROM view_artifact_history")

    def generation_provenance(self) -> list[dict[str, Any]]:
        """The ``view_generation_provenance`` rows: traffic ⋈ swaps ⋈ artifacts."""
        return self.query("SELECT * FROM view_generation_provenance")

    def latency_quantile(
        self, q: float, estimator: str | None = None, window: int | None = None
    ) -> float:
        """An exact request-latency quantile in seconds (NaN with no data).

        SQLite has no percentile aggregate, so the quantile is computed by
        ordering and offsetting — exact, if not O(1).  ``window`` restricts
        the computation to the most recent N matching events: periodic
        ``stats()`` merges over a long episode should not rescan the full
        table on every call.
        """
        return self._value_quantile("request_served", q, estimator, window)

    def q_error_quantile(
        self, q: float, estimator: str | None = None, window: int | None = None
    ) -> float:
        """An exact feedback q-error quantile (NaN with no data)."""
        return self._value_quantile("feedback", q, estimator, window)

    def _value_quantile(
        self,
        kind: str,
        q: float,
        estimator: str | None,
        window: int | None = None,
    ) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must lie in [0, 1], got {q!r}")
        if window is not None and window <= 0:
            raise ValueError(f"window must be positive (or None), got {window!r}")
        clauses = ["kind = ?", "value IS NOT NULL"]
        parameters: list[Any] = [kind]
        if estimator is not None:
            clauses.append("estimator = ?")
            parameters.append(estimator)
        where = " AND ".join(clauses)
        # The recency window keys on rowid: insertion order, which for one
        # recorder is sequence order.  The (kind, estimator) composite index
        # serves both the filter and the count without a full-table scan.
        source = f"events WHERE {where}"
        if window is not None:
            source = (
                f"(SELECT value FROM events WHERE {where} "
                f"ORDER BY rowid DESC LIMIT {int(window)})"
            )
        rows = self.query(f"SELECT COUNT(*) AS n FROM {source}", parameters)
        count = int(rows[0]["n"])
        if not count:
            return float("nan")
        offset = min(count - 1, max(0, round(q * (count - 1))))
        if window is not None:
            rows = self.query(
                f"SELECT value FROM {source} ORDER BY value LIMIT 1 OFFSET ?",
                parameters + [offset],
            )
        else:
            rows = self.query(
                f"SELECT value FROM events WHERE {where} "
                f"ORDER BY value LIMIT 1 OFFSET ?",
                parameters + [offset],
            )
        return float(rows[0]["value"])

    # ------------------------------------------------------------------ #
    # traces

    def spans_for_trace(self, trace_id: str) -> list[dict[str, Any]]:
        """Every stored span of one trace, in start order, attributes parsed."""
        rows = self.query(
            "SELECT * FROM spans WHERE trace_id = ? ORDER BY start, sequence",
            [trace_id],
        )
        for row in rows:
            row["attributes"] = json.loads(row["attributes"])
        return rows

    def links_for_trace(self, trace_id: str) -> list[dict[str, Any]]:
        """One trace's fan-in links, joined to the shared spans they name."""
        return self.query(
            "SELECT l.*, s.duration_seconds, s.start AS span_start, "
            "       s.members AS span_members "
            "FROM span_links l "
            "LEFT JOIN spans s ON s.source = l.source AND s.span_id = l.span_id "
            "WHERE l.trace_id = ? ORDER BY l.sequence",
            [trace_id],
        )

    def slowest_traces(self, n: int = 10) -> list[dict[str, Any]]:
        """The N slowest fully-traced requests (root spans by duration)."""
        return self.query(
            "SELECT trace_id, source, estimator, start, duration_seconds "
            "FROM spans WHERE parent_id = '' AND name = 'request' "
            "ORDER BY duration_seconds DESC LIMIT ?",
            [int(n)],
        )

    def span_kind_latency(self) -> list[dict[str, Any]]:
        """The ``view_span_kind_latency`` rows (per-stage aggregates)."""
        return self.query("SELECT * FROM view_span_kind_latency ORDER BY name")

    def trace_accounting(self) -> list[dict[str, Any]]:
        """The ``view_trace_accounting`` rows (critical-path breakdown)."""
        return self.query(
            "SELECT * FROM view_trace_accounting ORDER BY root_seconds DESC"
        )

    def span_duration_quantile(self, name: str, q: float) -> float:
        """An exact per-stage duration quantile in seconds (NaN with no data)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must lie in [0, 1], got {q!r}")
        rows = self.query(
            "SELECT COUNT(*) AS n FROM spans WHERE name = ?", [name]
        )
        count = int(rows[0]["n"])
        if not count:
            return float("nan")
        offset = min(count - 1, max(0, round(q * (count - 1))))
        rows = self.query(
            "SELECT duration_seconds FROM spans WHERE name = ? "
            "ORDER BY duration_seconds LIMIT 1 OFFSET ?",
            [name, offset],
        )
        return float(rows[0]["duration_seconds"])

    def drained_totals(self) -> dict[str, float]:
        """The summed ``stats_drained`` counters across every drained interval.

        This is the other half of the drain-consistency contract: the
        service's all-time totals are always *these sums plus the live
        counters*, so :meth:`repro.serving.ServingClient.stats` and the
        store can never disagree about how much traffic was served (see
        ``tests/test_observability_serving.py``).
        """
        rows = self.query(
            "SELECT "
            "COALESCE(SUM(json_extract(payload, '$.requests')), 0)      AS requests, "
            "COALESCE(SUM(json_extract(payload, '$.batches')), 0)       AS batches, "
            "COALESCE(SUM(json_extract(payload, '$.planned_pairs')), 0) AS planned_pairs, "
            "COALESCE(SUM(json_extract(payload, '$.scored_pairs')), 0)  AS scored_pairs, "
            "COALESCE(SUM(json_extract(payload, '$.fallbacks')), 0)     AS fallbacks, "
            "COALESCE(SUM(json_extract(payload, '$.total_seconds')), 0) AS total_seconds "
            "FROM events WHERE kind = 'stats_drained'"
        )
        return {key: float(value) for key, value in rows[0].items()}

    def stats_snapshot(self) -> dict[str, float]:
        """Store-level gauges, mergeable into ``format_service_stats``."""
        counts = self.counts()
        return {
            "stored_events": float(sum(counts.values())),
            "stored_swaps": float(counts.get("model_swap", 0)),
            "stored_drift_trips": float(counts.get("drift_trip", 0)),
            "stored_artifact_saves": float(counts.get("artifact_saved", 0)),
        }

    # ------------------------------------------------------------------ #
    # lifecycle

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            self._connection.close()

    def __enter__(self) -> "EventStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
