"""Production observability: a persistent metrics/event store and a recorded
perf trajectory.

Until now every perf claim this repo makes (serving speedups, pool-index
scoring wins, Table 15 prediction latency) was printed to stdout and lost,
and ``stats()`` snapshots vanished on drain.  This package makes both
durable:

* :mod:`repro.observability.events` — the typed event taxonomy (requests
  served, cache hit/miss deltas, dispatcher batches, pool-index builds,
  feedback observations, drift trips, accept-gate decisions, model swaps,
  drained stats snapshots);
* :mod:`repro.observability.buffer` — :class:`EventBuffer`, the bounded
  lock-free-on-the-hot-path buffer instrumentation emits into (its ordering
  contract is pinned by a hypothesis property test);
* :mod:`repro.observability.store` — :class:`EventStore`, the SQLite sink
  with deduplicated records and queryable aggregate views (per-estimator
  q-error, tail latency, swap history keyed by ``model_generation``);
* :mod:`repro.observability.recorder` — :class:`EventRecorder`, the
  buffer+store façade the serving stack holds (enabled through
  :class:`repro.serving.ObservabilityConfig`);
* :mod:`repro.observability.tracing` — :class:`Tracer`, per-request span
  trees with coalescing-aware fan-in attribution (shared batch/kernel spans
  recorded once, linked to member traces with explicit amortized shares)
  and head + tail-exemplar sampling;
* :mod:`repro.observability.histogram` — :class:`LatencyHistogram`,
  fixed-memory log-bucketed latency distributions with mergeable snapshots
  and a one-bucket-width quantile error bound;
* :mod:`repro.observability.bench` — the machine-readable benchmark result
  schema and the ``BENCH_serving.json`` / ``BENCH_repro.json`` trajectory
  files that ``scripts/bench_report.py`` diffs and gates in CI.

See the "Observability" section of ``docs/architecture.md`` for the event
taxonomy, the SQLite schema, and how to query the views.
"""

from repro.observability.bench import (
    SCHEMA_VERSION,
    BenchRun,
    current_profile,
    env_fingerprint,
    git_revision,
    load_rows,
    load_trajectory,
    merge_trajectory,
    row_key,
    validate_row,
    write_rows,
)
from repro.observability.buffer import BufferedEvent, EventBuffer
from repro.observability.events import (
    EVENT_KINDS,
    AcceptGateDecision,
    ArtifactLoaded,
    ArtifactPromoted,
    ArtifactRolledBack,
    ArtifactSaved,
    BatchServed,
    DispatcherBatch,
    DriftTrip,
    Event,
    FeedbackRecorded,
    IndexBuild,
    ModelSwap,
    PlanCompiled,
    PlanSwap,
    RequestServed,
    SpanLinked,
    SpanRecorded,
    StatsDrained,
    event_from_payload,
)
from repro.observability.histogram import HistogramSnapshot, LatencyHistogram
from repro.observability.recorder import EventRecorder
from repro.observability.store import EventStore
from repro.observability.tracing import RequestTrace, SpanHandle, Tracer

__all__ = [
    "AcceptGateDecision",
    "ArtifactLoaded",
    "ArtifactPromoted",
    "ArtifactRolledBack",
    "ArtifactSaved",
    "BatchServed",
    "BenchRun",
    "BufferedEvent",
    "DispatcherBatch",
    "DriftTrip",
    "EVENT_KINDS",
    "Event",
    "EventBuffer",
    "EventRecorder",
    "EventStore",
    "FeedbackRecorded",
    "HistogramSnapshot",
    "IndexBuild",
    "LatencyHistogram",
    "ModelSwap",
    "PlanCompiled",
    "PlanSwap",
    "RequestServed",
    "RequestTrace",
    "SCHEMA_VERSION",
    "SpanHandle",
    "SpanLinked",
    "SpanRecorded",
    "StatsDrained",
    "Tracer",
    "current_profile",
    "env_fingerprint",
    "event_from_payload",
    "git_revision",
    "load_rows",
    "load_trajectory",
    "merge_trajectory",
    "row_key",
    "validate_row",
    "write_rows",
]
