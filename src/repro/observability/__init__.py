"""Production observability: a persistent metrics/event store and a recorded
perf trajectory.

Until now every perf claim this repo makes (serving speedups, pool-index
scoring wins, Table 15 prediction latency) was printed to stdout and lost,
and ``stats()`` snapshots vanished on drain.  This package makes both
durable:

* :mod:`repro.observability.events` — the typed event taxonomy (requests
  served, cache hit/miss deltas, dispatcher batches, pool-index builds,
  feedback observations, drift trips, accept-gate decisions, model swaps,
  drained stats snapshots);
* :mod:`repro.observability.buffer` — :class:`EventBuffer`, the bounded
  lock-free-on-the-hot-path buffer instrumentation emits into (its ordering
  contract is pinned by a hypothesis property test);
* :mod:`repro.observability.store` — :class:`EventStore`, the SQLite sink
  with deduplicated records and queryable aggregate views (per-estimator
  q-error, tail latency, swap history keyed by ``model_generation``);
* :mod:`repro.observability.recorder` — :class:`EventRecorder`, the
  buffer+store façade the serving stack holds (enabled through
  :class:`repro.serving.ObservabilityConfig`);
* :mod:`repro.observability.bench` — the machine-readable benchmark result
  schema and the ``BENCH_serving.json`` / ``BENCH_repro.json`` trajectory
  files that ``scripts/bench_report.py`` diffs and gates in CI.

See the "Observability" section of ``docs/architecture.md`` for the event
taxonomy, the SQLite schema, and how to query the views.
"""

from repro.observability.bench import (
    SCHEMA_VERSION,
    BenchRun,
    current_profile,
    env_fingerprint,
    git_revision,
    load_rows,
    load_trajectory,
    merge_trajectory,
    row_key,
    validate_row,
    write_rows,
)
from repro.observability.buffer import BufferedEvent, EventBuffer
from repro.observability.events import (
    EVENT_KINDS,
    AcceptGateDecision,
    BatchServed,
    DispatcherBatch,
    DriftTrip,
    Event,
    FeedbackRecorded,
    IndexBuild,
    ModelSwap,
    PlanCompiled,
    PlanSwap,
    RequestServed,
    StatsDrained,
    event_from_payload,
)
from repro.observability.recorder import EventRecorder
from repro.observability.store import EventStore

__all__ = [
    "AcceptGateDecision",
    "BatchServed",
    "BenchRun",
    "BufferedEvent",
    "DispatcherBatch",
    "DriftTrip",
    "EVENT_KINDS",
    "Event",
    "EventBuffer",
    "EventRecorder",
    "EventStore",
    "FeedbackRecorded",
    "IndexBuild",
    "ModelSwap",
    "PlanCompiled",
    "PlanSwap",
    "RequestServed",
    "SCHEMA_VERSION",
    "StatsDrained",
    "current_profile",
    "env_fingerprint",
    "event_from_payload",
    "git_revision",
    "load_rows",
    "load_trajectory",
    "merge_trajectory",
    "row_key",
    "validate_row",
    "write_rows",
]
