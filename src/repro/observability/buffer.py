"""A bounded, lock-free-on-the-hot-path event buffer.

The serving hot path (``submit_batch``, the dispatcher thread) must be able
to emit events without ever contending on a lock with the consumer that
drains them into SQLite.  :class:`EventBuffer` gets there by leaning on two
CPython guarantees:

* ``collections.deque.append`` / ``popleft`` are atomic (implemented in C,
  no lock needed under the GIL), and
* ``next(itertools.count())`` is atomic, so sequence numbers are assigned
  contention-free.

``emit`` is therefore one counter increment plus one deque append — no lock
acquisition at all on the common (non-overflow) path.  Draining takes the
drain lock, which only drainers contend on; emitters never touch it.

Ordering contract (pinned by the hypothesis property test in
``tests/test_observability_buffer.py``):

1. **Per-thread order is emit order.**  Events emitted by one thread are
   drained in exactly the order that thread emitted them — never reordered,
   never duplicated.
2. **Sequence numbers are a total order.**  Every emitted event gets a
   unique, strictly increasing sequence number consistent with every
   thread's emit order; drained batches are sorted by it.
3. **Nothing is lost while the buffer has room.**  An event is either
   buffered (drained by exactly one drainer, exactly once) or — only when
   the buffer is over capacity — *dropped from the oldest end* and counted
   in :attr:`EventBuffer.dropped`.  Gaps in drained sequence numbers
   therefore always equal the drop count; silent loss is impossible.
4. **Emit/flush/drain interleave freely.**  Any number of emitting threads
   may run concurrently with drains; concurrent drains serialize on the
   drain lock, and their union sees every non-dropped event exactly once.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.observability.events import Event

__all__ = ["BufferedEvent", "EventBuffer"]


@dataclass(frozen=True)
class BufferedEvent:
    """One emitted event, stamped with its sequence number and wall time."""

    sequence: int
    timestamp: float
    event: Event


class EventBuffer:
    """A bounded multi-producer / single-drainer-at-a-time event buffer.

    Args:
        capacity: most events held at once.  Overflow drops the *oldest*
            buffered events (the freshest signal is the one worth keeping
            for an observer arriving late) and counts them in
            :attr:`dropped`.
        clock: timestamp source (``time.time``-like); injectable so tests
            and deterministic replays can pin event times.
    """

    def __init__(self, capacity: int = 8192, clock: Callable[[], float] | None = None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        if clock is None:
            import time

            clock = time.time
        self._clock = clock
        self._events: deque[BufferedEvent] = deque()
        self._sequence = itertools.count()
        self._dropped = 0
        # Overflow is off the hot path (it only runs once the buffer is
        # full), so a plain lock there is fine; emit itself never takes it.
        self._overflow_lock = threading.Lock()
        self._drain_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # hot path

    def emit(self, event: Event) -> int:
        """Buffer one event; returns its sequence number.

        Safe from any number of threads concurrently; no lock is taken
        unless the buffer is over capacity.
        """
        sequence = next(self._sequence)
        self._events.append(BufferedEvent(sequence, self._clock(), event))
        if len(self._events) > self.capacity:
            with self._overflow_lock:
                while len(self._events) > self.capacity:
                    try:
                        self._events.popleft()
                    except IndexError:  # pragma: no cover - drained underneath us
                        break
                    self._dropped += 1
        return sequence

    # ------------------------------------------------------------------ #
    # consumer side

    def drain(self) -> list[BufferedEvent]:
        """Remove and return everything currently buffered, in sequence order.

        Concurrent drains serialize; events emitted *during* a drain are
        either included or left for the next drain, never lost or
        duplicated.
        """
        drained: list[BufferedEvent] = []
        with self._drain_lock:
            while True:
                try:
                    drained.append(self._events.popleft())
                except IndexError:
                    break
        # Arrival order already equals sequence order except for the rare
        # window where two emitters interleave counter-assignment and
        # append; one sort makes the contract unconditional.
        drained.sort(key=lambda item: item.sequence)
        return drained

    def __len__(self) -> int:
        """Events currently buffered (approximate under concurrent emits)."""
        return len(self._events)

    @property
    def dropped(self) -> int:
        """Events lost to overflow since construction."""
        return self._dropped

    @property
    def emitted(self) -> int:
        """Events ever emitted (the next sequence number)."""
        # itertools.count has no non-consuming read; peek via repr, which
        # CPython renders as "count(<next value>)".
        text = repr(self._sequence)
        return int(text[text.index("(") + 1 : -1])
