"""The recorder: the hot-path handle the serving stack emits through.

:class:`EventRecorder` glues a lock-free-on-the-hot-path
:class:`repro.observability.EventBuffer` to an optional persistent
:class:`repro.observability.EventStore`.  Instrumentation points hold a
``recorder`` attribute that is ``None`` by default, so an un-instrumented
deployment pays exactly one attribute load and one ``is None`` test per
batch — and an instrumented one pays one deque append per event, never a
SQLite write, on the serving path.  Sinking to SQLite happens only when a
consumer calls :meth:`EventRecorder.flush` (the client does this on
``shutdown`` and whenever ``stats()`` is asked for store-backed gauges).
"""

from __future__ import annotations

from typing import Callable

from repro.observability.buffer import BufferedEvent, EventBuffer
from repro.observability.events import Event
from repro.observability.store import EventStore

__all__ = ["EventRecorder"]


class EventRecorder:
    """Buffered event emission with optional SQLite persistence.

    Args:
        store: the persistent sink :meth:`flush` drains into (None keeps
            events purely in-memory until a store is attached or the caller
            drains the buffer itself).
        capacity: the buffer bound (overflow drops oldest, counted).
        clock: timestamp source, injectable for deterministic tests.
        source: the identity this recorder's events are deduplicated under
            in the store — two recorders flushing into one store must use
            distinct sources.
    """

    def __init__(
        self,
        store: EventStore | None = None,
        capacity: int = 8192,
        clock: Callable[[], float] | None = None,
        source: str = "serving",
    ) -> None:
        if not source:
            raise ValueError("source must be non-empty")
        self.store = store
        self.source = source
        self.buffer = EventBuffer(capacity=capacity, clock=clock)
        self._flushed = 0

    # ------------------------------------------------------------------ #
    # hot path

    def emit(self, event: Event) -> int:
        """Buffer one event (no I/O); returns its sequence number."""
        return self.buffer.emit(event)

    # ------------------------------------------------------------------ #
    # consumer side

    def flush(self) -> list[BufferedEvent]:
        """Drain the buffer, sink to the store (when attached), return the batch.

        Safe to call from any thread and at any frequency; the store's
        ``(source, sequence)`` dedup makes repeated or overlapping flushes
        idempotent.
        """
        drained = self.buffer.drain()
        if drained and self.store is not None:
            self.store.insert(self.source, drained)
            self._flushed += len(drained)
        return drained

    @property
    def flushed(self) -> int:
        """Events sunk to the store so far."""
        return self._flushed

    def stats_snapshot(self) -> dict[str, float]:
        """Recorder gauges, mergeable into ``format_service_stats``."""
        return {
            "events_emitted": float(self.buffer.emitted),
            "events_buffered": float(len(self.buffer)),
            "events_dropped": float(self.buffer.dropped),
            "events_flushed": float(self._flushed),
        }
