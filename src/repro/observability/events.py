"""The typed event taxonomy of the serving stack.

Every observable thing the serving layer does is one of the frozen event
dataclasses below, emitted through an
:class:`repro.observability.EventRecorder` and sunk to the SQLite-backed
:class:`repro.observability.EventStore`.  Events are *data*, not behaviour:
each one is a flat record of scalars (plus short strings), cheap to
construct on a hot path and trivially serializable.

The taxonomy (``kind`` → emitted by):

========================  ====================================================
``request_served``        :meth:`repro.serving.EstimationService.submit_batch`,
                          one per answered request (estimator, resolution,
                          model generation, attributed latency).
``batch_served``          the same method, one per planned batch — carries the
                          batch's cache hit/miss deltas, so cache behaviour is
                          on the record without touching the cache hot path.
``dispatcher_batch``      :class:`repro.serving.ServingDispatcher`, one per
                          coalesced batch drained from the queue.
``index_build``           :class:`repro.serving.PoolEncodingIndex`, one per
                          slab build / rebuild / incremental append.
``feedback``              :class:`repro.serving.FeedbackCollector`, one per
                          recorded ground-truth observation (the q-error
                          signal behind the per-estimator views).
``drift_trip``            :class:`repro.serving.AdaptationManager`, one per
                          drift evaluation whose policy fired.
``accept_gate``           the same manager, one per candidate gate decision
                          (accepted or rejected, with both q-error readings).
``model_swap``            the same manager, one per promoted hot swap — keyed
                          by ``model_generation``, the number stamped on every
                          subsequent :class:`repro.serving.EstimateResult`.
``plan_compile``          :func:`repro.serving.build_service_stack` and the
                          adaptation promote path, one per compiled
                          :class:`repro.serving.InferencePlan` (dtype, node
                          count, compile time), keyed by the generation the
                          plan serves.
``plan_swap``             :class:`repro.serving.AdaptationManager`, one per
                          plan handover — ``promoted`` when the candidate's
                          freshly compiled plan goes live with the swap,
                          ``rollback`` when a failed promote leaves the
                          incumbent's plan bound.
``artifact_saved``        :class:`repro.artifacts.ArtifactStore`, one per
                          snapshot bundle persisted (build, adaptation
                          promote, or manual save), keyed by the generation
                          the bundle serves.
``artifact_loaded``       the same store, one per verified bundle
                          deserialized for a cold-start boot.
``artifact_promoted``     the same store, one per atomic ``latest``-pointer
                          advance (with the previous generation on record).
``artifact_rolled_back``  the same store, one per pointer rollback to the
                          previous generation.
``stats_drained``         :meth:`repro.serving.EstimationService.drain_stats`
                          — the drained counter snapshot, so draining moves
                          history into the store instead of discarding it.
``span``                  :class:`repro.observability.tracing.Tracer`, one per
                          completed (and kept) tracing span — request roots,
                          per-request stages, and shared batch/kernel spans.
                          Routed to the store's ``spans`` table.
``span_link``             the same tracer, one per fan-in link from a request
                          trace to a shared span, carrying the request's
                          ``amortized_seconds`` share.  Routed to the store's
                          ``span_links`` table.
========================  ====================================================

Each event exposes :meth:`Event.payload` (every field, a plain dict) and
:meth:`Event.value` — the event's *primary scalar* (a request's latency, a
feedback observation's q-error, ...), hoisted into its own SQL column so the
store's aggregate views never need to parse JSON.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, ClassVar


@dataclass(frozen=True)
class Event:
    """Base class of every serving event.

    Subclasses set ``kind`` (the store's discriminator column) and may
    override :meth:`value`, :attr:`estimator_field`, or
    :attr:`generation_field` to surface their primary scalar / grouping
    columns to the store.
    """

    kind: ClassVar[str] = "event"

    def payload(self) -> dict[str, Any]:
        """Every field as a plain dict (JSON-ready)."""
        return asdict(self)

    def value(self) -> float | None:
        """The event's primary scalar, or None when it has no single one."""
        return None

    def estimator(self) -> str | None:
        """The registry name this event attributes to, when any."""
        return getattr(self, "estimator_name", None)

    def model_generation(self) -> int | None:
        """The model generation this event attributes to, when any."""
        generation = getattr(self, "generation", None)
        return int(generation) if generation is not None else None


@dataclass(frozen=True)
class RequestServed(Event):
    """One answered estimation request."""

    kind: ClassVar[str] = "request_served"

    estimator_name: str
    resolution: str
    generation: int
    estimate: float
    latency_seconds: float
    pool_matches: int
    pairs_scored: int
    used_fallback: bool

    def value(self) -> float:
        return self.latency_seconds


@dataclass(frozen=True)
class BatchServed(Event):
    """One planned service batch, with its cache hit/miss deltas."""

    kind: ClassVar[str] = "batch_served"

    estimator_name: str
    size: int
    elapsed_seconds: float
    planned_pairs: int
    scored_pairs: int
    featurization_hits: int
    featurization_misses: int
    encoding_hits: int
    encoding_misses: int

    def value(self) -> float:
        return self.elapsed_seconds


@dataclass(frozen=True)
class DispatcherBatch(Event):
    """One batch the dispatcher coalesced and handed to the service."""

    kind: ClassVar[str] = "dispatcher_batch"

    size: int
    groups: int
    cancelled: int
    queue_depth: int

    def value(self) -> float:
        return float(self.size)


@dataclass(frozen=True)
class IndexBuild(Event):
    """One pool-index slab build, rebuild, or incremental append."""

    kind: ClassVar[str] = "index_build"

    signature: str
    rows: int
    mode: str  # "build" | "rebuild" | "append"

    def value(self) -> float:
        return float(self.rows)


@dataclass(frozen=True)
class FeedbackRecorded(Event):
    """One ground-truth observation landing in the feedback window."""

    kind: ClassVar[str] = "feedback"

    estimator_name: str
    estimate: float
    true_cardinality: float
    q_error: float
    sequence: int

    def value(self) -> float:
        return self.q_error


@dataclass(frozen=True)
class DriftTrip(Event):
    """One drift evaluation whose policy fired."""

    kind: ClassVar[str] = "drift_trip"

    estimator_name: str
    q_error: float
    baseline_q_error: float
    observations: int
    row_delta: float
    reasons: tuple[str, ...]

    def value(self) -> float:
        return self.q_error


@dataclass(frozen=True)
class AcceptGateDecision(Event):
    """One candidate validation verdict (shadow deployment gate)."""

    kind: ClassVar[str] = "accept_gate"

    estimator_name: str
    accepted: bool
    incumbent_q_error: float
    candidate_q_error: float
    holdout_size: int
    mode: str  # "incremental" | "full"

    def value(self) -> float:
        return self.candidate_q_error


@dataclass(frozen=True)
class ModelSwap(Event):
    """One promoted zero-downtime hot swap, keyed by model generation."""

    kind: ClassVar[str] = "model_swap"

    estimator_name: str
    generation: int
    pre_swap_q_error: float
    post_swap_q_error: float
    requests_between_swaps: int
    mode: str
    retrain_seconds: float

    def value(self) -> float:
        return self.post_swap_q_error


@dataclass(frozen=True)
class PlanCompiled(Event):
    """One compiled inference plan (build-time or pre-swap recompile)."""

    kind: ClassVar[str] = "plan_compile"

    estimator_name: str
    generation: int
    dtype: str
    nodes: int
    constants: int
    compile_seconds: float

    def value(self) -> float:
        return self.compile_seconds


@dataclass(frozen=True)
class PlanSwap(Event):
    """One inference-plan handover during an adaptation promote.

    ``outcome`` is ``"promoted"`` when the candidate's recompiled plan went
    live with the model swap, ``"rollback"`` when the promote failed and the
    incumbent kept serving on its own plan (mirroring the index rebind
    discipline — the incumbent's plan was never replaced, so rollback is a
    statement of fact, not a re-attach).
    """

    kind: ClassVar[str] = "plan_swap"

    estimator_name: str
    generation: int
    dtype: str
    outcome: str  # "promoted" | "rollback"

    def value(self) -> float:
        return float(self.generation)


@dataclass(frozen=True)
class SpanRecorded(Event):
    """One completed tracing span (see :mod:`repro.observability.tracing`).

    A span is a timed region of the serving pipeline, attributed to a trace
    (one request, or one shared batch).  ``parent_id`` is empty for a trace's
    root span; ``members`` is how many requests a *shared* span served (1 for
    request-owned spans).  ``name`` is the span taxonomy kind (``request``,
    ``queue_wait``, ``dispatcher_batch``, ``service_batch``, ``plan``,
    ``pair_rates``, ``slab_kernel``, ``collapse``, ``index_build``, ...);
    the event-kind discriminator stays ``span`` so every span lands in the
    store's ``spans`` table.
    """

    kind: ClassVar[str] = "span"

    trace_id: str
    span_id: str
    parent_id: str
    name: str
    start: float
    duration_seconds: float
    estimator_name: str = ""
    members: int = 1
    attributes: tuple[tuple[str, str], ...] = ()

    def value(self) -> float:
        return self.duration_seconds


@dataclass(frozen=True)
class SpanLinked(Event):
    """One fan-in link from a request trace to a shared span.

    Coalescing means one ``dispatcher_batch`` / ``service_batch`` /
    ``slab_kernel`` span serves N requests; the shared span is recorded
    **once** (:class:`SpanRecorded`) and each member request links to it
    here, with its share of the shared time made explicit in
    ``amortized_seconds``.  ``link_kind`` is ``"amortized"`` when the share
    counts toward the request's ``latency_seconds`` accounting, or
    ``"context"`` for links that carry attribution without time (the
    dispatcher batch wraps the service batch, so counting both would
    double-book the same wall clock).
    """

    kind: ClassVar[str] = "span_link"

    trace_id: str
    span_id: str
    span_name: str
    amortized_seconds: float
    members: int = 1
    link_kind: str = "amortized"

    def value(self) -> float:
        return self.amortized_seconds


@dataclass(frozen=True)
class ArtifactSaved(Event):
    """One snapshot bundle persisted to the generational artifact store.

    ``generation`` is the registry model generation the bundle serves — the
    same number on :class:`ModelSwap` and every
    :class:`repro.serving.EstimateResult`, so the store's views can join
    "which snapshot" against "which swap" and "which answers".
    """

    kind: ClassVar[str] = "artifact_saved"

    generation: int
    source: str  # "build" | "promote" | "manual"
    size_bytes: int

    def value(self) -> float:
        return float(self.size_bytes)


@dataclass(frozen=True)
class ArtifactLoaded(Event):
    """One checksum-verified bundle deserialized for a cold-start boot."""

    kind: ClassVar[str] = "artifact_loaded"

    generation: int
    source: str  # the loaded bundle's recorded save source
    adaptation_downgraded: bool = False

    def value(self) -> float:
        return float(self.generation)


@dataclass(frozen=True)
class ArtifactPromoted(Event):
    """One atomic advance of the store's ``latest`` pointer."""

    kind: ClassVar[str] = "artifact_promoted"

    generation: int
    previous: int | None

    def value(self) -> float:
        return float(self.generation)


@dataclass(frozen=True)
class ArtifactRolledBack(Event):
    """One ``latest``-pointer rollback to the previous generation."""

    kind: ClassVar[str] = "artifact_rolled_back"

    generation: int  # now serving again
    rolled_back_from: int | None

    def value(self) -> float:
        return float(self.generation)


@dataclass(frozen=True)
class StatsDrained(Event):
    """One drained service-counter snapshot.

    :meth:`repro.serving.EstimationService.drain_stats` used to *discard*
    the drained interval; emitting it here is what keeps the event store
    and live ``stats()`` consistent — the all-time totals are always
    ``sum(stats_drained events) + the live counters``.
    """

    kind: ClassVar[str] = "stats_drained"

    requests: int
    batches: int
    planned_pairs: int
    scored_pairs: int
    fallbacks: int
    total_seconds: float

    def value(self) -> float:
        return float(self.requests)


#: Every event class, keyed by its ``kind`` discriminator.
EVENT_KINDS: dict[str, type[Event]] = {
    cls.kind: cls
    for cls in (
        RequestServed,
        BatchServed,
        DispatcherBatch,
        IndexBuild,
        FeedbackRecorded,
        DriftTrip,
        AcceptGateDecision,
        ModelSwap,
        PlanCompiled,
        PlanSwap,
        SpanRecorded,
        SpanLinked,
        ArtifactSaved,
        ArtifactLoaded,
        ArtifactPromoted,
        ArtifactRolledBack,
        StatsDrained,
    )
}


def event_from_payload(kind: str, payload: dict[str, Any]) -> Event:
    """Rebuild a typed event from a stored ``(kind, payload)`` record.

    Raises:
        KeyError: for an unknown ``kind``.
        TypeError: when the payload does not match the event's fields.
    """
    cls = EVENT_KINDS[kind]
    known = {spec.name for spec in fields(cls)}
    values = {key: value for key, value in payload.items() if key in known}
    if "reasons" in values and isinstance(values["reasons"], list):
        values["reasons"] = tuple(values["reasons"])
    if "attributes" in values and isinstance(values["attributes"], list):
        values["attributes"] = tuple(
            (str(key), str(value)) for key, value in values["attributes"]
        )
    return cls(**values)
