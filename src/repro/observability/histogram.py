"""Fixed-memory log-bucketed latency histograms.

The live serving stats used to answer quantile questions by scanning every
recorded value (the feedback window's numpy sort, the event store's
ORDER-BY-OFFSET query) — exact, but O(n) per question and unbounded in
memory when the caller wants quantiles over *everything ever served*.
:class:`LatencyHistogram` trades a bounded, documented error for O(1)
memory and O(1) recording: values land in geometrically spaced buckets
(each ``growth``× wider than the last), so any quantile is answerable from
the bucket counts alone with at most **one bucket width** of error — with
the default ``growth = 2 ** 0.25``, every answer is within ±19% of the
exact value, at any traffic volume, forever.

Three shapes live here:

* :class:`LatencyHistogram` — the mutable, thread-safe accumulator the
  serving components hold (``record()`` is a bucket-index computation plus
  one locked increment);
* :class:`HistogramSnapshot` — a frozen copy with the same read surface,
  safe to hand across threads and to **merge** (shards, per-worker
  histograms, before/after intervals) — merging is exact because bucket
  boundaries are construction parameters, not data-dependent;
* the quantile contract — ``quantile(q)`` returns the geometric midpoint of
  the bucket holding rank ``round(q * (count - 1))``, the same rank
  convention as :meth:`repro.observability.EventStore.latency_quantile`, so
  the two agree within one bucket width (pinned by
  ``tests/test_observability_histogram.py``).

Values below ``min_value`` land in an underflow bucket (reported as the
exact minimum seen), values at or above ``max_value`` in an overflow bucket
(reported as the exact maximum seen) — no value is ever dropped, and the
true min/max are tracked exactly regardless of bucketing.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_right
from dataclasses import dataclass

__all__ = ["HistogramSnapshot", "LatencyHistogram"]

#: Default bucket growth factor: four buckets per doubling (±~9% half-width,
#: ≤19% worst-case quantile error).
DEFAULT_GROWTH = 2.0 ** 0.25


def _bucket_count(min_value: float, max_value: float, growth: float) -> int:
    """Interior buckets covering [min_value, max_value) at ``growth`` spacing."""
    return max(1, math.ceil(math.log(max_value / min_value) / math.log(growth)))


@dataclass(frozen=True)
class HistogramSnapshot:
    """A frozen, mergeable view of a :class:`LatencyHistogram`.

    ``counts`` has ``len == interior buckets + 2``: index 0 is the underflow
    bucket (< ``min_value``), the last index is the overflow bucket
    (>= ``max_value``), and interior index ``i`` covers
    ``[min_value * growth**(i-1), min_value * growth**i)``.
    """

    min_value: float
    max_value: float
    growth: float
    counts: tuple[int, ...]
    total_sum: float
    min_seen: float
    max_seen: float

    @property
    def count(self) -> int:
        """Total recorded observations."""
        return sum(self.counts)

    @property
    def mean(self) -> float:
        """Exact mean of every recorded value (NaN when empty)."""
        n = self.count
        return self.total_sum / n if n else float("nan")

    def bucket_bounds(self, index: int) -> tuple[float, float]:
        """The ``[low, high)`` value range of bucket ``index``."""
        if index <= 0:
            return 0.0, self.min_value
        if index >= len(self.counts) - 1:
            return self.max_value, float("inf")
        return (
            self.min_value * self.growth ** (index - 1),
            self.min_value * self.growth ** index,
        )

    def _quantile_bucket(self, q: float) -> int:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must lie in [0, 1], got {q!r}")
        n = self.count
        if not n:
            raise ValueError("histogram is empty")
        # Same rank convention as EventStore._value_quantile: the value at
        # offset round(q * (n - 1)) of the sorted sequence.
        rank = min(n - 1, max(0, round(q * (n - 1))))
        cumulative = 0
        for index, bucket in enumerate(self.counts):
            cumulative += bucket
            if rank < cumulative:
                return index
        return len(self.counts) - 1  # pragma: no cover - unreachable

    def quantile(self, q: float) -> float:
        """The ``q`` quantile, within one bucket width of exact (NaN if empty).

        Interior buckets answer with their geometric midpoint, clamped to
        the exact ``[min_seen, max_seen]`` range (a p99 reported above the
        exact maximum reads as a contradiction in a stats table); the
        underflow and overflow buckets answer with the exact min/max seen
        (those are tracked exactly, so the extremes never suffer bucket
        rounding).
        """
        if not self.count:
            return float("nan")
        index = self._quantile_bucket(q)
        if index == 0:
            return self.min_seen
        if index == len(self.counts) - 1:
            return self.max_seen
        low, high = self.bucket_bounds(index)
        return min(max(math.sqrt(low * high), self.min_seen), self.max_seen)

    def quantile_lower_bound(self, q: float) -> float:
        """The lower edge of the bucket holding the ``q`` quantile.

        Comparing a new value to the *lower* edge (instead of the bucket
        midpoint) guarantees every value at or above the true quantile
        clears the bar — bucket rounding can only admit extra values, never
        reject one genuinely above the quantile.  NaN when empty.
        """
        if not self.count:
            return float("nan")
        index = self._quantile_bucket(q)
        low, _ = self.bucket_bounds(index)
        return low

    def quantile_upper_bound(self, q: float) -> float:
        """The exclusive upper edge of the bucket holding the ``q`` quantile.

        A value at or above this edge is strictly slower than anything the
        quantile bucket can hold — one bucket width above
        :meth:`quantile_lower_bound`.  This is the tracer's tail-exemplar
        threshold: requiring a keeper to clear the whole quantile bucket
        means a degenerate distribution (every observation landing in one
        bucket, e.g. a single coalesced batch stamping the identical
        latency on all its members) produces no tail keepers beyond the
        running maximum.  ``inf`` when empty or when the quantile falls in
        the overflow bucket (only a new maximum can qualify there).
        """
        if not self.count:
            return math.inf
        _, high = self.bucket_bounds(self._quantile_bucket(q))
        return high

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Exact union of two snapshots with identical bucket layouts.

        Raises:
            ValueError: when the layouts differ — merging across layouts
                would silently misattribute counts.
        """
        if (
            self.min_value != other.min_value
            or self.max_value != other.max_value
            or self.growth != other.growth
        ):
            raise ValueError(
                "cannot merge histograms with different bucket layouts: "
                f"({self.min_value}, {self.max_value}, {self.growth}) vs "
                f"({other.min_value}, {other.max_value}, {other.growth})"
            )
        return HistogramSnapshot(
            min_value=self.min_value,
            max_value=self.max_value,
            growth=self.growth,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            total_sum=self.total_sum + other.total_sum,
            min_seen=min(self.min_seen, other.min_seen),
            max_seen=max(self.max_seen, other.max_seen),
        )


class LatencyHistogram:
    """A thread-safe fixed-memory accumulator of positive durations.

    Args:
        min_value: lower edge of the first interior bucket.  The default
            (1 microsecond) is below anything the serving path can measure.
        max_value: lower edge of the overflow bucket.  The default (64
            seconds) is far beyond any sane request latency; slower values
            are still counted (overflow) and still reported exactly as the
            max.
        growth: bucket width ratio.  The quantile error bound is one bucket
            width, i.e. a factor of ``growth`` — the default is four buckets
            per doubling (±~9%).
    """

    def __init__(
        self,
        min_value: float = 1e-6,
        max_value: float = 64.0,
        growth: float = DEFAULT_GROWTH,
    ) -> None:
        if min_value <= 0:
            raise ValueError(f"min_value must be positive, got {min_value!r}")
        if max_value <= min_value:
            raise ValueError(
                f"max_value must exceed min_value, got {max_value!r} <= {min_value!r}"
            )
        if growth <= 1.0:
            raise ValueError(f"growth must exceed 1, got {growth!r}")
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self.growth = float(growth)
        self._interior = _bucket_count(self.min_value, self.max_value, self.growth)
        # Interior lower edges, same expression :meth:`bucket_bounds` uses,
        # so a bisect against them is float-exactly consistent with the
        # bounds the snapshot reports (no log/pow rounding at the edges).
        self._edges = [
            self.min_value * self.growth**power for power in range(self._interior)
        ]
        self._counts = [0] * (self._interior + 2)
        self._total_sum = 0.0
        self._min_seen = float("inf")
        self._max_seen = float("-inf")
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._counts)

    @property
    def count(self) -> int:
        """Total recorded observations."""
        with self._lock:
            return sum(self._counts)

    def _index(self, value: float) -> int:
        # bisect against the precomputed edges: values below min_value fall
        # to 0 (underflow) because they sit left of every edge; interior
        # values land in the bucket whose [low, high) contains them.
        if value >= self.max_value:
            return self._interior + 1
        return bisect_right(self._edges, value)

    def record(self, value: float, count: int = 1) -> None:
        """Record ``count`` observations of ``value`` (NaN is ignored)."""
        value = float(value)
        if math.isnan(value) or count <= 0:
            return
        value = max(value, 0.0)
        index = self._index(value)
        with self._lock:
            self._counts[index] += count
            self._total_sum += value * count
            if value < self._min_seen:
                self._min_seen = value
            if value > self._max_seen:
                self._max_seen = value

    def snapshot(self) -> HistogramSnapshot:
        """A frozen, mergeable copy of the current state."""
        with self._lock:
            return HistogramSnapshot(
                min_value=self.min_value,
                max_value=self.max_value,
                growth=self.growth,
                counts=tuple(self._counts),
                total_sum=self._total_sum,
                min_seen=self._min_seen,
                max_seen=self._max_seen,
            )

    def merge_snapshot(self, other: HistogramSnapshot) -> None:
        """Fold a snapshot (same layout) into this live histogram."""
        if (
            self.min_value != other.min_value
            or self.max_value != other.max_value
            or self.growth != other.growth
        ):
            raise ValueError(
                "cannot merge a snapshot with a different bucket layout"
            )
        with self._lock:
            for index, bucket in enumerate(other.counts):
                self._counts[index] += bucket
            self._total_sum += other.total_sum
            self._min_seen = min(self._min_seen, other.min_seen)
            self._max_seen = max(self._max_seen, other.max_seen)

    def reset(self) -> None:
        """Zero every bucket and the exact min/max/sum."""
        with self._lock:
            self._counts = [0] * (self._interior + 2)
            self._total_sum = 0.0
            self._min_seen = float("inf")
            self._max_seen = float("-inf")

    # Read-side conveniences delegate to a snapshot: one lock acquisition,
    # then lock-free math.

    def quantile(self, q: float) -> float:
        """See :meth:`HistogramSnapshot.quantile`."""
        return self.snapshot().quantile(q)

    def quantile_lower_bound(self, q: float) -> float:
        """See :meth:`HistogramSnapshot.quantile_lower_bound`."""
        return self.snapshot().quantile_lower_bound(q)

    @property
    def mean(self) -> float:
        """Exact mean of every recorded value (NaN when empty)."""
        return self.snapshot().mean

    @property
    def max_seen(self) -> float:
        """Exact maximum recorded value (-inf when empty)."""
        with self._lock:
            return self._max_seen

    @property
    def min_seen(self) -> float:
        """Exact minimum recorded value (inf when empty)."""
        with self._lock:
            return self._min_seen
