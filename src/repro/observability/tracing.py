"""Request-scoped distributed tracing with coalescing-aware attribution.

Every latency layer this repo has stacked — the coalescing dispatcher, the
pool-index slabs, the compiled inference plans — amortizes work across
requests, which is exactly what makes a slow request hard to explain from
end-to-end numbers alone.  :class:`Tracer` produces **span trees**: each
request gets a trace (``trace_id``) whose root ``request`` span is broken
into timed stages, and each stage is either

* a **request-owned span** (``queue_wait`` — time between dispatcher enqueue
  and batch pickup), recorded under the request's own trace, or
* a **link to a shared span**: one ``dispatcher_batch`` / ``service_batch``
  / ``plan`` / ``pair_rates`` / ``slab_kernel`` / ``collapse`` /
  ``index_build`` span serves N coalesced requests, so it is recorded
  *once* (under its own batch trace) and every member request records a
  :class:`repro.observability.SpanLinked` pointing at it.

The attribution rule that keeps the books balanced: a shared span's time is
divided into an explicit ``amortized_seconds = duration / members`` on each
link, and only links of kind ``"amortized"`` count toward a request's
latency — the ``service_batch`` link uses the *same* elapsed/size division
that produces :attr:`repro.serving.EstimateResult.latency_seconds`, so for
every traced request

    sum(amortized links) == latency_seconds        (exactly), and
    root duration ≈ queue_wait + latency_seconds   (within scheduling noise).

Nested shared spans (the service batch inside a dispatcher batch, the slab
kernel inside the service batch) link with kind ``"context"``: they carry
attribution without re-counting wall clock that an enclosing amortized link
already books.  ``tests/test_observability_tracing.py`` pins the identity.

**Cost discipline.**  Like ``recorder is None``, the whole instrumentation
collapses to one attribute test per call site when tracing is off.  When
on, shared spans are always emitted (a handful per batch), while request
traces are *sampled*: every ``sample_every``-th request is kept
(head sampling), plus tail exemplars — any request that is **strictly** the
slowest seen so far, and any request at least one histogram bucket slower
than the ``tail_quantile`` of the tracer's own latency histogram — so a p99
investigation always finds a concrete full trace.  Ties with the bulk are
deliberately *not* tail keepers (a coalesced batch stamps one latency on
every member; head sampling covers those), and the tail threshold is a
cached float refreshed every ``_TAIL_REFRESH`` finishes, so a dropped
trace costs a handful of dataclass constructions, two short lock windows,
and zero buffer traffic.

Shared spans nest through a thread-local stack: :meth:`Tracer.begin` inside
an open span parents to it automatically (the dispatcher thread opens
``dispatcher_batch``, the service's ``service_batch`` lands inside it, the
kernel spans inside that), and a :meth:`Tracer.begin` with an empty stack
starts a standalone trace (warm-time index builds, lifecycle swaps).
"""

from __future__ import annotations

import itertools
import math
import threading
import time
import uuid
from typing import Any, Callable

from repro.observability.events import SpanLinked, SpanRecorded
from repro.observability.histogram import LatencyHistogram

__all__ = ["RequestTrace", "SpanHandle", "Tracer"]

#: Finishes between tail-threshold recomputations.  Each refresh pays one
#: histogram snapshot (a bucket-tuple copy plus a quantile walk); in between
#: the hot path compares against a cached float.
_TAIL_REFRESH = 64


def _stringify(attributes: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    """Attribute values as repr-round-trippable strings, sorted by key."""
    return tuple(
        (key, repr(value) if isinstance(value, float) else str(value))
        for key, value in sorted(attributes.items())
    )


class SpanHandle:
    """A span in progress (shared/batch side).

    Mutable and cheap; holds identity (so links can reference it after it
    closes) plus the start instants.  Close through :meth:`Tracer.end` (or
    the :meth:`Tracer.span` context manager).
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start_wall",
        "start_perf",
        "estimator_name",
        "members",
        "attributes",
        "duration_seconds",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: str,
        name: str,
        start_wall: float,
        start_perf: float,
        estimator_name: str = "",
        members: int = 1,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_wall = start_wall
        self.start_perf = start_perf
        self.estimator_name = estimator_name
        self.members = members
        self.attributes: dict[str, Any] = {}
        self.duration_seconds = 0.0

    def set(self, **attributes: Any) -> "SpanHandle":
        """Attach attributes (merged; later keys win)."""
        self.attributes.update(attributes)
        return self


class RequestTrace:
    """One request's span tree, accumulated on the caller/dispatcher side.

    Owned by a single request at a time (created at submit, finished when the
    request's result is stamped), so it takes no locks of its own.  Spans and
    links accumulate locally and are emitted — or dropped — in one decision
    at :meth:`finish`, which is what makes sampling free for dropped traces.
    """

    __slots__ = ("tracer", "trace_id", "root", "_spans", "_links", "_done")

    def __init__(self, tracer: "Tracer", trace_id: str, root: SpanHandle) -> None:
        self.tracer = tracer
        self.trace_id = trace_id
        self.root = root
        self._spans: list[SpanHandle] = []
        self._links: list[tuple[str, str, float, int, str]] = []
        self._done = False

    def add_span(
        self, name: str, duration_seconds: float, start: float | None = None, **attributes: Any
    ) -> None:
        """Record a completed request-owned stage (child of the root span)."""
        handle = SpanHandle(
            trace_id=self.trace_id,
            span_id=self.tracer._new_span_id(),
            parent_id=self.root.span_id,
            name=name,
            start_wall=start if start is not None else self.tracer.wall_clock(),
            start_perf=0.0,
            estimator_name=self.root.estimator_name,
        )
        handle.duration_seconds = float(duration_seconds)
        handle.attributes.update(attributes)
        self._spans.append(handle)

    def link(
        self,
        shared: SpanHandle,
        amortized_seconds: float,
        link_kind: str = "amortized",
    ) -> None:
        """Link this trace to a shared span with its amortized time share.

        Stored as a raw tuple; the :class:`repro.observability.SpanLinked`
        event is materialized at :meth:`finish` only if the trace is kept,
        so dropped traces never pay dataclass construction.
        """
        self._links.append(
            (
                shared.span_id,
                shared.name,
                float(amortized_seconds),
                shared.members,
                link_kind,
            )
        )

    def fail(self, error: BaseException | str) -> None:
        """Finish a trace whose request errored.  Error traces always keep."""
        self.root.attributes["error"] = (
            f"{type(error).__name__}: {error}"
            if isinstance(error, BaseException)
            else str(error)
        )
        self.finish(force_keep=True)

    def abandon(self) -> None:
        """Discard a trace whose request was cancelled before serving."""
        if self._done:
            return
        self._done = True
        self.tracer._count_finish(kept=False, tail=False)

    def finish(
        self,
        latency_seconds: float = float("nan"),
        force_keep: bool = False,
        end_perf: float | None = None,
        **attributes: Any,
    ) -> bool:
        """Close the root span, apply the sampling policy, emit if kept.

        ``latency_seconds`` (the service's attributed per-request latency)
        is stamped on the root span so a stored trace carries the number its
        stages must account for.  ``end_perf`` lets a batch owner finish
        every member against one shared end instant — without it, the
        member-by-member finish loop itself skews the root durations into a
        strictly increasing ramp, and the "slowest so far" exemplar rule
        would keep a slow batch wholesale.  Returns whether the trace was
        kept.  Idempotent: a second finish is a no-op.
        """
        if self._done:
            return False
        self._done = True
        tracer = self.tracer
        end = tracer.clock() if end_perf is None else end_perf
        self.root.duration_seconds = end - self.root.start_perf
        if not math.isnan(latency_seconds):
            self.root.attributes["latency_seconds"] = float(latency_seconds)
        if attributes:
            self.root.attributes.update(attributes)
        kept, _ = tracer._sample(self.root.duration_seconds, force_keep)
        if not kept:
            return False
        recorder = tracer.recorder
        recorder.emit(tracer._span_event(self.root))
        for handle in self._spans:
            recorder.emit(tracer._span_event(handle))
        for span_id, span_name, amortized, members, link_kind in self._links:
            recorder.emit(
                SpanLinked(
                    trace_id=self.trace_id,
                    span_id=span_id,
                    span_name=span_name,
                    amortized_seconds=amortized,
                    members=members,
                    link_kind=link_kind,
                )
            )
        return True


class Tracer:
    """The span factory the serving stack shares.

    Args:
        recorder: the :class:`repro.observability.EventRecorder` spans sink
            through (same bounded buffer, same ``(source, sequence)`` dedup
            in the store as every other event).
        sample_every: keep every N-th finished request trace (head
            sampling).  1 keeps everything; 0 disables head sampling
            entirely (tail exemplars still keep the slow ones).
        tail_quantile: requests at least one histogram bucket slower than
            this quantile of the tracer's own latency histogram are kept
            regardless of head sampling (the comparison uses the quantile
            bucket's *upper* edge — see
            :meth:`repro.observability.histogram.HistogramSnapshot.quantile_upper_bound`
            — so a degenerate distribution where every request ties does
            not keep everything).  A request strictly slower than
            everything before it is always kept, even before the histogram
            has warmed up.
        min_tail_observations: how many finished requests the histogram
            needs before the tail threshold is trusted.
        clock: monotonic duration clock (``time.perf_counter``).
        wall_clock: epoch clock for span start timestamps (``time.time``).
    """

    def __init__(
        self,
        recorder,
        sample_every: int = 1,
        tail_quantile: float = 0.95,
        min_tail_observations: int = 32,
        clock: Callable[[], float] = time.perf_counter,
        wall_clock: Callable[[], float] = time.time,
    ) -> None:
        if recorder is None:
            raise ValueError(
                "Tracer needs an EventRecorder; to disable tracing, hold "
                "tracer=None (the same discipline as recorder=None)"
            )
        if sample_every < 0:
            raise ValueError(f"sample_every must be >= 0, got {sample_every!r}")
        if not 0.0 < tail_quantile <= 1.0:
            raise ValueError(
                f"tail_quantile must lie in (0, 1], got {tail_quantile!r}"
            )
        self.recorder = recorder
        self.sample_every = int(sample_every)
        self.tail_quantile = float(tail_quantile)
        self.min_tail_observations = int(min_tail_observations)
        self.clock = clock
        self.wall_clock = wall_clock
        #: Root-request durations; drives the tail-exemplar threshold and
        #: the ``trace_*`` quantile gauges.
        self.histogram = LatencyHistogram()
        # IDs are a per-tracer counter behind a random prefix: cheap on the
        # hot path, and two processes flushing into one store cannot collide.
        self._id_prefix = uuid.uuid4().hex[:8]
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._stats_lock = threading.Lock()
        self._started = 0
        self._finished = 0
        self._kept = 0
        self._tail_exemplars = 0
        self._shared_spans = 0
        # Tail-exemplar state (guarded by _stats_lock): the strict running
        # maximum, and a cached threshold refreshed every _TAIL_REFRESH
        # finishes so the hot path never walks the histogram buckets.
        self._observed = 0
        self._max_observed = -math.inf
        self._tail_threshold = math.inf
        self._tail_refreshed_at = 0

    # ------------------------------------------------------------------ #
    # identity

    def _new_id(self) -> str:
        return f"{self._id_prefix}-{next(self._ids):x}"

    def _new_span_id(self) -> str:
        return self._new_id()

    def _stack(self) -> list[SpanHandle]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _span_event(self, handle: SpanHandle) -> SpanRecorded:
        return SpanRecorded(
            trace_id=handle.trace_id,
            span_id=handle.span_id,
            parent_id=handle.parent_id,
            name=handle.name,
            start=handle.start_wall,
            duration_seconds=handle.duration_seconds,
            estimator_name=handle.estimator_name,
            members=handle.members,
            attributes=_stringify(handle.attributes),
        )

    # ------------------------------------------------------------------ #
    # request traces

    def start_request(self, estimator_name: str = "") -> RequestTrace:
        """Open a request trace; close it with :meth:`RequestTrace.finish`."""
        # One counter draw per request: the root span derives its id from
        # the trace id with a "-r" suffix (counter ids are bare hex, so the
        # suffixed form cannot collide with any other id).
        trace_id = self._new_id()
        root = SpanHandle(
            trace_id=trace_id,
            span_id=trace_id + "-r",
            parent_id="",
            name="request",
            start_wall=self.wall_clock(),
            start_perf=self.clock(),
            estimator_name=estimator_name,
        )
        with self._stats_lock:
            self._started += 1
        return RequestTrace(self, trace_id, root)

    def _sample(self, duration: float, force_keep: bool) -> tuple[bool, bool]:
        """The keep decision for one finished request: ``(kept, is_tail)``.

        A tail exemplar is a request **strictly** slower than everything
        before it (trivially so for the first), or one at or above the
        cached tail threshold — the *upper* edge of the histogram bucket
        holding ``tail_quantile``, i.e. at least one bucket width (~19%)
        slower than the quantile itself.  Ties with the bulk never qualify:
        a coalesced batch stamps the identical latency on every member, and
        admitting ties would keep whole batches wholesale (head sampling
        covers them instead).  The threshold is recomputed from a histogram
        snapshot only every ``_TAIL_REFRESH`` finishes, so it lags by at
        most that many observations; "slowest so far" does not lag at all.

        Also books the finish counters (one lock window for the whole
        decision); :meth:`_count_finish` remains for abandoned traces only.
        """
        tail = False
        refresh = False
        with self._stats_lock:
            self._observed += 1
            observed = self._observed
            if duration > self._max_observed or observed == 1:
                tail = True  # strictly the slowest so far: always a keeper
                self._max_observed = duration
            elif duration >= self._tail_threshold:
                tail = True
            if observed >= self.min_tail_observations and (
                self._tail_refreshed_at == 0
                or observed - self._tail_refreshed_at >= _TAIL_REFRESH
            ):
                self._tail_refreshed_at = observed
                refresh = True
            kept = (
                force_keep
                or tail
                or (
                    self.sample_every > 0
                    and self._finished % self.sample_every == 0
                )
            )
            self._finished += 1
            if kept:
                self._kept += 1
            if tail:
                self._tail_exemplars += 1
        self.histogram.record(duration)
        if refresh:
            threshold = self.histogram.snapshot().quantile_upper_bound(
                self.tail_quantile
            )
            with self._stats_lock:
                self._tail_threshold = threshold
        return kept, tail

    def sample_owned_batch(self, members: int, duration: float) -> list[int]:
        """Bulk keep decision for a service-owned homogeneous batch.

        Synchronous callers (``estimate`` / ``estimate_many``) hand the
        service a batch whose members all share one root duration, one
        amortized link, and one latency — so the per-member sampling loop
        collapses: one lock window counts all ``members`` as started and
        finished, head sampling reduces to modular arithmetic over the
        finish counter (bit-identical to ``members`` sequential
        :meth:`_sample` calls), the histogram takes one bulk record, and a
        batch in the tail contributes exactly ONE exemplar (member 0) —
        its members are indistinguishable, so keeping more would spam the
        store with copies.  Returns the kept member indices; the caller
        materializes span events only for those (dropped members cost no
        allocation at all).
        """
        refresh = False
        kept: list[int] = []
        with self._stats_lock:
            tail = False
            observed = self._observed + members
            self._observed = observed
            if duration > self._max_observed or observed == members:
                tail = True
                self._max_observed = duration
            elif duration >= self._tail_threshold:
                tail = True
            if observed >= self.min_tail_observations and (
                self._tail_refreshed_at == 0
                or observed - self._tail_refreshed_at >= _TAIL_REFRESH
            ):
                self._tail_refreshed_at = observed
                refresh = True
            if self.sample_every > 0:
                first = (-self._finished) % self.sample_every
                kept = list(range(first, members, self.sample_every))
            if tail and (not kept or kept[0] != 0):
                kept.insert(0, 0)
            self._started += members
            self._finished += members
            self._kept += len(kept)
            if tail:
                self._tail_exemplars += 1
        self.histogram.record(duration, count=members)
        if refresh:
            threshold = self.histogram.snapshot().quantile_upper_bound(
                self.tail_quantile
            )
            with self._stats_lock:
                self._tail_threshold = threshold
        return kept

    def emit_owned_member(
        self,
        estimator_name: str,
        start_wall: float,
        start_perf: float,
        end_perf: float,
        batch_span: SpanHandle,
        amortized_seconds: float,
        **attributes: Any,
    ) -> str:
        """Materialize one kept member of an owned batch straight to events.

        The root ``request`` span plus its amortized link to ``batch_span``
        — no :class:`RequestTrace` needed, because an owned member has no
        request-owned child stages.  Sampling and counting already happened
        in :meth:`sample_owned_batch`.  Returns the new trace id.
        """
        trace_id = self._new_id()
        root = SpanHandle(
            trace_id=trace_id,
            span_id=trace_id + "-r",
            parent_id="",
            name="request",
            start_wall=start_wall,
            start_perf=start_perf,
            estimator_name=estimator_name,
        )
        root.duration_seconds = end_perf - start_perf
        root.attributes.update(attributes)
        self.recorder.emit(self._span_event(root))
        self.recorder.emit(
            SpanLinked(
                trace_id=trace_id,
                span_id=batch_span.span_id,
                span_name=batch_span.name,
                amortized_seconds=float(amortized_seconds),
                members=batch_span.members,
                link_kind="amortized",
            )
        )
        return trace_id

    def _count_finish(self, kept: bool, tail: bool) -> None:
        with self._stats_lock:
            self._finished += 1
            if kept:
                self._kept += 1
            if tail:
                self._tail_exemplars += 1

    # ------------------------------------------------------------------ #
    # shared / batch spans

    def begin(
        self,
        name: str,
        members: int = 1,
        estimator_name: str = "",
        **attributes: Any,
    ) -> SpanHandle:
        """Open a shared span on this thread's stack.

        Inside an open span it nests (same trace, parented); with an empty
        stack it starts a standalone trace.  Always paired with :meth:`end`
        on the same thread.
        """
        stack = self._stack()
        if stack:
            parent = stack[-1]
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = self._new_id(), ""
        handle = SpanHandle(
            trace_id=trace_id,
            span_id=self._new_span_id(),
            parent_id=parent_id,
            name=name,
            start_wall=self.wall_clock(),
            start_perf=self.clock(),
            estimator_name=estimator_name,
            members=members,
        )
        handle.attributes.update(attributes)
        stack.append(handle)
        return handle

    def end(self, handle: SpanHandle, **attributes: Any) -> SpanHandle:
        """Close a shared span and emit it (shared spans are never sampled).

        Pops the thread-local stack down to (and including) ``handle``, so a
        call site that leaks a nested span via an exception cannot poison
        the parenting of later batches on this thread.
        """
        handle.duration_seconds = self.clock() - handle.start_perf
        handle.attributes.update(attributes)
        stack = self._stack()
        while stack:
            top = stack.pop()
            if top is handle:
                break
        self.recorder.emit(self._span_event(handle))
        with self._stats_lock:
            self._shared_spans += 1
        return handle

    class _SpanContext:
        __slots__ = ("_tracer", "_name", "_kwargs", "handle")

        def __init__(self, tracer: "Tracer", name: str, kwargs: dict[str, Any]) -> None:
            self._tracer = tracer
            self._name = name
            self._kwargs = kwargs
            self.handle: SpanHandle | None = None

        def __enter__(self) -> SpanHandle:
            self.handle = self._tracer.begin(self._name, **self._kwargs)
            return self.handle

        def __exit__(self, exc_type, exc, tb) -> None:
            self._tracer.end(self.handle)

    def span(
        self, name: str, members: int = 1, estimator_name: str = "", **attributes: Any
    ) -> "_SpanContext":
        """``with tracer.span("index_build") as handle: ...`` convenience."""
        return self._SpanContext(
            self,
            name,
            {"members": members, "estimator_name": estimator_name, **attributes},
        )

    # ------------------------------------------------------------------ #
    # reporting

    def stats_snapshot(self) -> dict[str, float]:
        """Tracer gauges, mergeable into ``format_service_stats``."""
        with self._stats_lock:
            started = self._started
            finished = self._finished
            kept = self._kept
            tail = self._tail_exemplars
            shared = self._shared_spans
        return {
            "traces_started": float(started),
            "traces_finished": float(finished),
            "traces_kept": float(kept),
            "traces_dropped": float(finished - kept),
            "trace_tail_exemplars": float(tail),
            "shared_spans": float(shared),
        }
