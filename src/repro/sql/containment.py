"""Analytic containment checks on conjunctive queries.

The paper contrasts *analytic* containment -- ``Q1 ⊆ Q2`` must hold for every
database state -- with the *containment rate* on a specific database.  This
module provides the analytic side for the paper's query class, both as a
baseline sanity check for the learned model (an analytically contained pair
must have containment rate 100%) and to support the related-work discussion.

For queries restricted to the paper's class (identical FROM clauses, equi-joins
between named aliases, and range/equality predicates over the same columns),
analytic containment reduces to predicate-interval implication: ``Q1 ⊆ Q2``
iff Q2's join set is a subset of Q1's and, for every column, the value
interval allowed by Q1's predicates is included in the interval allowed by
Q2's predicates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sql.intersection import same_from_clause
from repro.sql.query import ComparisonOperator, Predicate, Query


@dataclass(frozen=True)
class ValueInterval:
    """An interval of allowed values for one column, possibly degenerate.

    ``lower``/``upper`` are exclusive bounds (matching the strict ``<`` / ``>``
    operators of the query class); ``point`` is set when an equality predicate
    pins the column to a single value.
    """

    lower: float = -math.inf
    upper: float = math.inf
    point: float | None = None

    @property
    def is_empty(self) -> bool:
        """Whether no value can satisfy the constraints."""
        if self.point is not None:
            return not (self.lower < self.point < self.upper)
        return self.lower >= self.upper

    def contains_interval(self, other: "ValueInterval") -> bool:
        """Whether every value satisfying ``other`` also satisfies ``self``."""
        if other.is_empty:
            return True
        if self.is_empty:
            # An empty interval contains only empty intervals; without this
            # guard an unsatisfiable point interval (e.g. from
            # ``kind < 1 AND kind = 1``) would still "contain" a matching
            # non-empty equality interval via the point comparison below.
            return False
        if self.point is not None:
            return other.point == self.point
        if other.point is not None:
            return self.lower < other.point < self.upper
        return self.lower <= other.lower and other.upper <= self.upper


def column_intervals(query: Query) -> dict[str, ValueInterval]:
    """Fold a query's predicates into one :class:`ValueInterval` per column."""
    intervals: dict[str, ValueInterval] = {}
    for predicate in query.predicates:
        key = predicate.qualified_column
        interval = intervals.get(key, ValueInterval())
        intervals[key] = _tighten(interval, predicate)
    return intervals


def _tighten(interval: ValueInterval, predicate: Predicate) -> ValueInterval:
    if predicate.operator is ComparisonOperator.EQ:
        if interval.point is not None and interval.point != predicate.value:
            # Two different equality constraints: empty interval.
            return ValueInterval(lower=0.0, upper=0.0, point=None)
        return ValueInterval(interval.lower, interval.upper, predicate.value)
    if predicate.operator is ComparisonOperator.LT:
        return ValueInterval(interval.lower, min(interval.upper, predicate.value), interval.point)
    return ValueInterval(max(interval.lower, predicate.value), interval.upper, interval.point)


def analytically_contained(first: Query, second: Query) -> bool:
    """Return whether ``first ⊆ second`` holds on *every* database state.

    This is a sound and complete test within the paper's query class when both
    queries share a FROM clause; it is used as an invariant check for the
    learned estimators (analytic containment implies a 100% containment rate
    on any database).
    """
    if not same_from_clause(first, second):
        return False
    if not set(second.joins).issubset(set(first.joins)):
        return False
    first_intervals = column_intervals(first)
    # If Q1 is unsatisfiable on every database it is trivially contained.
    if any(interval.is_empty for interval in first_intervals.values()):
        return True
    second_intervals = column_intervals(second)
    for column, second_interval in second_intervals.items():
        first_interval = first_intervals.get(column, ValueInterval())
        if not second_interval.contains_interval(first_interval):
            return False
    return True


def analytically_equivalent(first: Query, second: Query) -> bool:
    """Return whether the two queries are analytically equivalent."""
    return analytically_contained(first, second) and analytically_contained(second, first)
