"""Immutable dataclasses describing the paper's conjunctive query class.

The paper (Section 2) restricts attention to ``SELECT * FROM ... WHERE ...``
queries whose WHERE clause is a conjunction of equi-join clauses
(``a.col = b.col``) and column predicates (``col <op> value`` with
``op in {<, =, >}``).  The classes below are deliberately small, hashable and
order-insensitive where SQL is order-insensitive (FROM and WHERE are sets),
so that queries can be used as dictionary keys, deduplicated, and compared
structurally.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Sequence


class ComparisonOperator(enum.Enum):
    """The predicate operators supported by the paper's query generator."""

    LT = "<"
    EQ = "="
    GT = ">"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    def __lt__(self, other: "ComparisonOperator") -> bool:
        # Ordering lets predicates (and therefore queries) sort canonically.
        if not isinstance(other, ComparisonOperator):
            return NotImplemented
        return self.value < other.value

    @classmethod
    def from_symbol(cls, symbol: str) -> "ComparisonOperator":
        """Return the operator for ``symbol`` (one of ``<``, ``=``, ``>``)."""
        for op in cls:
            if op.value == symbol:
                return op
        raise ValueError(f"unsupported comparison operator: {symbol!r}")

    def evaluate(self, left: float, right: float) -> bool:
        """Evaluate ``left <op> right`` for scalar operands."""
        if self is ComparisonOperator.LT:
            return left < right
        if self is ComparisonOperator.GT:
            return left > right
        return left == right

    def flipped(self) -> "ComparisonOperator":
        """Return the operator with its operands swapped (``a < b`` == ``b > a``)."""
        if self is ComparisonOperator.LT:
            return ComparisonOperator.GT
        if self is ComparisonOperator.GT:
            return ComparisonOperator.LT
        return ComparisonOperator.EQ


#: All operators, in the canonical order used by the featurizer's one-hot layout.
OPERATORS: tuple[ComparisonOperator, ...] = (
    ComparisonOperator.LT,
    ComparisonOperator.EQ,
    ComparisonOperator.GT,
)


@dataclass(frozen=True, order=True)
class TableRef:
    """A table referenced in a query's FROM clause.

    Attributes:
        name: the table's name in the database schema.
        alias: the alias used to reference the table in joins/predicates.
            The paper's workloads always use the table's conventional short
            alias (e.g. ``t`` for ``title``); when omitted the table name
            itself is the alias.
    """

    name: str
    alias: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("table name must be non-empty")
        if not self.alias:
            object.__setattr__(self, "alias", self.name)

    def __str__(self) -> str:
        if self.alias == self.name:
            return self.name
        return f"{self.name} {self.alias}"


@dataclass(frozen=True, order=True)
class JoinClause:
    """An equi-join clause ``left_alias.left_column = right_alias.right_column``.

    Join clauses are stored in a canonical orientation (lexicographically
    smallest side first) so that structurally identical joins compare equal
    regardless of how they were written.
    """

    left_alias: str
    left_column: str
    right_alias: str
    right_column: str

    def __post_init__(self) -> None:
        if not all((self.left_alias, self.left_column, self.right_alias, self.right_column)):
            raise ValueError("join clause components must be non-empty")
        left = (self.left_alias, self.left_column)
        right = (self.right_alias, self.right_column)
        if left > right:
            object.__setattr__(self, "left_alias", right[0])
            object.__setattr__(self, "left_column", right[1])
            object.__setattr__(self, "right_alias", left[0])
            object.__setattr__(self, "right_column", left[1])

    @property
    def left(self) -> str:
        """Qualified left column, e.g. ``t.id``."""
        return f"{self.left_alias}.{self.left_column}"

    @property
    def right(self) -> str:
        """Qualified right column, e.g. ``mc.movie_id``."""
        return f"{self.right_alias}.{self.right_column}"

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True, order=True)
class Predicate:
    """A column predicate ``alias.column <op> value``.

    Values are stored as floats; integer columns simply use integral floats.
    String-valued predicates are supported through the extension in
    :mod:`repro.extensions.strings`, which hashes strings into the integer
    domain before constructing the predicate.
    """

    alias: str
    column: str
    operator: ComparisonOperator
    value: float

    def __post_init__(self) -> None:
        if not self.alias or not self.column:
            raise ValueError("predicate alias and column must be non-empty")
        object.__setattr__(self, "value", float(self.value))

    @property
    def qualified_column(self) -> str:
        """Qualified column name, e.g. ``t.production_year``."""
        return f"{self.alias}.{self.column}"

    def __str__(self) -> str:
        value = self.value
        rendered = str(int(value)) if float(value).is_integer() else f"{value!r}"
        return f"{self.qualified_column} {self.operator.value} {rendered}"


@dataclass(frozen=True)
class Query:
    """A conjunctive ``SELECT * FROM ... WHERE ...`` query.

    The FROM clause (``tables``), join clauses (``joins``) and column
    predicates (``predicates``) are stored as sorted tuples so two queries
    with the same clauses in different orders are equal and hash identically.
    """

    tables: tuple[TableRef, ...]
    joins: tuple[JoinClause, ...] = ()
    predicates: tuple[Predicate, ...] = ()

    def __post_init__(self) -> None:
        tables = tuple(sorted(set(self.tables)))
        joins = tuple(sorted(set(self.joins)))
        predicates = tuple(sorted(set(self.predicates)))
        if not tables:
            raise ValueError("a query must reference at least one table")
        aliases = [table.alias for table in tables]
        if len(aliases) != len(set(aliases)):
            raise ValueError(f"duplicate table aliases in FROM clause: {aliases}")
        object.__setattr__(self, "tables", tables)
        object.__setattr__(self, "joins", joins)
        object.__setattr__(self, "predicates", predicates)
        # Queries are used as dictionary keys on hot paths (featurization /
        # encoding caches, batch planning), where recomputing the recursive
        # clause-tuple hash on every lookup dominates; hash once at
        # construction -- all fields are immutable.
        object.__setattr__(self, "_hash", hash((tables, joins, predicates)))
        known_aliases = set(aliases)
        for join in joins:
            if join.left_alias not in known_aliases or join.right_alias not in known_aliases:
                raise ValueError(f"join {join} references an alias outside the FROM clause")
        for predicate in predicates:
            if predicate.alias not in known_aliases:
                raise ValueError(
                    f"predicate {predicate} references an alias outside the FROM clause"
                )

    def __hash__(self) -> int:
        return self._hash

    @classmethod
    def create(
        cls,
        tables: Iterable[TableRef],
        joins: Iterable[JoinClause] = (),
        predicates: Iterable[Predicate] = (),
    ) -> "Query":
        """Build a query from arbitrary iterables of clause objects."""
        return cls(tuple(tables), tuple(joins), tuple(predicates))

    @property
    def aliases(self) -> tuple[str, ...]:
        """Aliases of all referenced tables, in canonical (sorted) order."""
        return tuple(table.alias for table in self.tables)

    @property
    def table_names(self) -> tuple[str, ...]:
        """Names of all referenced tables, in canonical (sorted) order."""
        return tuple(table.name for table in self.tables)

    @property
    def num_joins(self) -> int:
        """Number of join clauses (the paper's "number of joins")."""
        return len(self.joins)

    @property
    def num_predicates(self) -> int:
        """Number of column predicates."""
        return len(self.predicates)

    def from_signature(self) -> tuple[tuple[str, str], ...]:
        """A hashable signature of the FROM clause: sorted (name, alias) pairs.

        Two queries can only be compared for containment (and used together
        in Cnt2Crd) when their FROM signatures are identical (Section 2).
        """
        return tuple((table.name, table.alias) for table in self.tables)

    def alias_to_table(self) -> dict[str, str]:
        """Mapping from alias to table name."""
        return {table.alias: table.name for table in self.tables}

    def predicates_for(self, alias: str) -> tuple[Predicate, ...]:
        """All column predicates on the table bound to ``alias``."""
        return tuple(pred for pred in self.predicates if pred.alias == alias)

    def with_predicates(self, predicates: Iterable[Predicate]) -> "Query":
        """Return a copy of this query with ``predicates`` as its predicate set."""
        return Query(self.tables, self.joins, tuple(predicates))

    def add_predicates(self, predicates: Iterable[Predicate]) -> "Query":
        """Return a copy of this query with ``predicates`` added."""
        return Query(self.tables, self.joins, self.predicates + tuple(predicates))

    def without_predicates(self) -> "Query":
        """Return this query's "frame": same FROM and joins, empty WHERE predicates.

        This matches the paper's suggestion (Section 5.2) of seeding the
        queries pool with ``SELECT * FROM <tables> WHERE TRUE`` queries.
        """
        return Query(self.tables, self.joins, ())

    def __str__(self) -> str:
        from repro.sql.parser import format_query

        return format_query(self)


def queries_with_same_from(queries: Sequence[Query]) -> dict[tuple[tuple[str, str], ...], list[Query]]:
    """Group ``queries`` by their FROM-clause signature."""
    groups: dict[tuple[tuple[str, str], ...], list[Query]] = {}
    for query in queries:
        groups.setdefault(query.from_signature(), []).append(query)
    return groups
