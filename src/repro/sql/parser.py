"""Parsing and formatting for the paper's conjunctive SQL subset.

The grammar covered (case-insensitive keywords)::

    SELECT * FROM table [alias] (, table [alias])*
    [WHERE condition (AND condition)*]

    condition := alias.column (= | < | >) alias.column     -- equi-join
               | alias.column (= | < | >) numeric-literal  -- column predicate

``format_query`` is the inverse: it renders a :class:`Query` back into SQL in
a canonical order, so ``parse_query(format_query(q)) == q`` for every query in
the supported class.
"""

from __future__ import annotations

import re

from repro.sql.query import ComparisonOperator, JoinClause, Predicate, Query, TableRef

_CONDITION_RE = re.compile(
    r"^\s*(?P<left>[A-Za-z_][\w]*\.[A-Za-z_][\w]*)\s*"
    r"(?P<op><|=|>)\s*"
    r"(?P<right>[A-Za-z_][\w]*\.[A-Za-z_][\w]*|[-+]?\d+(?:\.\d+)?)\s*$"
)

_QUALIFIED_RE = re.compile(r"^[A-Za-z_][\w]*\.[A-Za-z_][\w]*$")


class SQLParseError(ValueError):
    """Raised when a SQL string is outside the supported conjunctive subset."""


def parse_query(sql: str) -> Query:
    """Parse a conjunctive ``SELECT * FROM ... WHERE ...`` statement.

    Args:
        sql: the SQL text.  Keywords are case-insensitive and a trailing
            semicolon is allowed.

    Returns:
        The parsed, canonicalized :class:`Query`.

    Raises:
        SQLParseError: if the statement is not in the supported subset.
    """
    text = sql.strip().rstrip(";").strip()
    match = re.match(
        r"^select\s+\*\s+from\s+(?P<from>.+?)(?:\s+where\s+(?P<where>.+))?$",
        text,
        flags=re.IGNORECASE | re.DOTALL,
    )
    if match is None:
        raise SQLParseError(f"not a supported SELECT * query: {sql!r}")

    tables = _parse_from_clause(match.group("from"))
    joins: list[JoinClause] = []
    predicates: list[Predicate] = []
    where = match.group("where")
    if where is not None and where.strip():
        for condition in re.split(r"\s+and\s+", where.strip(), flags=re.IGNORECASE):
            if condition.strip().lower() == "true":
                continue
            join, predicate = _parse_condition(condition)
            if join is not None:
                joins.append(join)
            if predicate is not None:
                predicates.append(predicate)
    try:
        return Query.create(tables, joins, predicates)
    except ValueError as exc:
        raise SQLParseError(str(exc)) from exc


def _parse_from_clause(from_clause: str) -> list[TableRef]:
    tables: list[TableRef] = []
    for item in from_clause.split(","):
        parts = item.split()
        if len(parts) == 1:
            tables.append(TableRef(parts[0]))
        elif len(parts) == 2:
            tables.append(TableRef(parts[0], parts[1]))
        elif len(parts) == 3 and parts[1].lower() == "as":
            tables.append(TableRef(parts[0], parts[2]))
        else:
            raise SQLParseError(f"unsupported FROM item: {item.strip()!r}")
    return tables


def _parse_condition(condition: str) -> tuple[JoinClause | None, Predicate | None]:
    match = _CONDITION_RE.match(condition)
    if match is None:
        raise SQLParseError(f"unsupported WHERE condition: {condition.strip()!r}")
    left = match.group("left")
    operator = ComparisonOperator.from_symbol(match.group("op"))
    right = match.group("right")
    left_alias, left_column = left.split(".")
    if _QUALIFIED_RE.match(right):
        if operator is not ComparisonOperator.EQ:
            raise SQLParseError(f"only equi-joins are supported, got: {condition.strip()!r}")
        right_alias, right_column = right.split(".")
        return JoinClause(left_alias, left_column, right_alias, right_column), None
    return None, Predicate(left_alias, left_column, operator, float(right))


def format_query(query: Query) -> str:
    """Render ``query`` back into canonical SQL text."""
    from_clause = ", ".join(str(table) for table in query.tables)
    conditions = [str(join) for join in query.joins] + [str(pred) for pred in query.predicates]
    if not conditions:
        return f"SELECT * FROM {from_clause}"
    return f"SELECT * FROM {from_clause} WHERE {' AND '.join(conditions)}"
