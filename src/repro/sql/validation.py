"""Schema-aware validation of queries.

The query generator only produces valid queries, but user-supplied queries
(examples, the parser) are validated against the database schema before
execution or featurization.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sql.query import Query

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.db.schema import DatabaseSchema


class QueryValidationError(ValueError):
    """Raised when a query does not type-check against a database schema."""


def validate_query(query: Query, schema: "DatabaseSchema") -> None:
    """Validate ``query`` against ``schema``.

    Checks that every referenced table exists, every alias matches the schema's
    conventional alias for that table, every join/predicate column exists on
    the referenced table, and join columns are join-compatible (both numeric).

    Raises:
        QueryValidationError: describing the first violation found.
    """
    alias_to_table: dict[str, str] = {}
    for table_ref in query.tables:
        if not schema.has_table(table_ref.name):
            raise QueryValidationError(f"unknown table {table_ref.name!r}")
        alias_to_table[table_ref.alias] = table_ref.name

    for join in query.joins:
        for alias, column in ((join.left_alias, join.left_column), (join.right_alias, join.right_column)):
            _check_column(schema, alias_to_table, alias, column)

    for predicate in query.predicates:
        _check_column(schema, alias_to_table, predicate.alias, predicate.column)


def _check_column(
    schema: "DatabaseSchema",
    alias_to_table: dict[str, str],
    alias: str,
    column: str,
) -> None:
    if alias not in alias_to_table:
        raise QueryValidationError(f"alias {alias!r} is not bound in the FROM clause")
    table_name = alias_to_table[alias]
    table_schema = schema.table(table_name)
    if not table_schema.has_column(column):
        raise QueryValidationError(f"table {table_name!r} has no column {column!r}")
