"""Query intersection ``Q1 ∩ Q2`` (Section 4.1.1 of the paper).

The intersection of two queries with identical SELECT and FROM clauses is the
query with the same SELECT/FROM and a WHERE clause that is the conjunction of
both queries' WHERE clauses.  It is the workhorse of both the Crd2Cnt
transformation (containment via cardinalities) and the ground-truth labelling
of training pairs.
"""

from __future__ import annotations

from repro.sql.query import Query


class FromClauseMismatchError(ValueError):
    """Raised when two queries do not share the same FROM clause."""


def same_from_clause(first: Query, second: Query) -> bool:
    """Return whether the two queries have identical FROM clauses.

    Containment rates (and therefore the Cnt2Crd technique) are only defined
    for pairs of queries with identical SELECT and FROM clauses (Section 2).
    """
    return first.from_signature() == second.from_signature()


def intersect_queries(first: Query, second: Query) -> Query:
    """Return the intersection query ``first ∩ second``.

    The result's FROM clause equals both inputs' FROM clause, its join set is
    the union of both join sets and its predicate set is the union of both
    predicate sets (conjunction of the WHERE clauses).

    Raises:
        FromClauseMismatchError: if the FROM clauses differ.
    """
    if not same_from_clause(first, second):
        raise FromClauseMismatchError(
            "query intersection requires identical FROM clauses: "
            f"{first.from_signature()} vs {second.from_signature()}"
        )
    return Query(
        first.tables,
        first.joins + second.joins,
        first.predicates + second.predicates,
    )
