"""Conjunctive query model for the containment-rate reproduction.

This package models the query class the paper works with: ``SELECT * FROM
<tables> WHERE <equi-joins> AND <column predicates>`` conjunctive queries.
It provides:

* :mod:`repro.sql.query` -- immutable dataclasses (:class:`Query`,
  :class:`TableRef`, :class:`JoinClause`, :class:`Predicate`).
* :mod:`repro.sql.builder` -- a fluent :class:`QueryBuilder`.
* :mod:`repro.sql.parser` -- a small SQL parser/serializer for the subset.
* :mod:`repro.sql.intersection` -- the ``Q1 ∩ Q2`` intersection query used by
  the Crd2Cnt transformation.
* :mod:`repro.sql.containment` -- analytic (database-independent) containment
  checks on conjunctive queries.
* :mod:`repro.sql.validation` -- schema-aware query validation.
"""

from repro.sql.builder import QueryBuilder
from repro.sql.containment import analytically_contained, analytically_equivalent
from repro.sql.intersection import intersect_queries, same_from_clause
from repro.sql.parser import format_query, parse_query
from repro.sql.query import (
    ComparisonOperator,
    JoinClause,
    Predicate,
    Query,
    TableRef,
)
from repro.sql.validation import QueryValidationError, validate_query

__all__ = [
    "ComparisonOperator",
    "JoinClause",
    "Predicate",
    "Query",
    "QueryBuilder",
    "QueryValidationError",
    "TableRef",
    "analytically_contained",
    "analytically_equivalent",
    "format_query",
    "intersect_queries",
    "parse_query",
    "same_from_clause",
    "validate_query",
]
