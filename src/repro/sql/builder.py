"""A fluent builder for :class:`repro.sql.query.Query` objects.

The builder is a convenience for examples and tests; the query generator in
:mod:`repro.datasets.generator` constructs :class:`Query` objects directly.
"""

from __future__ import annotations

from typing import Union

from repro.sql.query import ComparisonOperator, JoinClause, Predicate, Query, TableRef

OperatorLike = Union[str, ComparisonOperator]


def _as_operator(operator: OperatorLike) -> ComparisonOperator:
    if isinstance(operator, ComparisonOperator):
        return operator
    return ComparisonOperator.from_symbol(operator)


class QueryBuilder:
    """Accumulates FROM / JOIN / WHERE clauses and builds an immutable query.

    Example:
        >>> query = (
        ...     QueryBuilder()
        ...     .table("title", "t")
        ...     .table("movie_companies", "mc")
        ...     .join("t.id", "mc.movie_id")
        ...     .where("t.production_year", ">", 1995)
        ...     .build()
        ... )
        >>> query.num_joins
        1
    """

    def __init__(self) -> None:
        self._tables: list[TableRef] = []
        self._joins: list[JoinClause] = []
        self._predicates: list[Predicate] = []

    def table(self, name: str, alias: str = "") -> "QueryBuilder":
        """Add a table to the FROM clause."""
        self._tables.append(TableRef(name, alias or name))
        return self

    def join(self, left: str, right: str) -> "QueryBuilder":
        """Add an equi-join clause given two qualified columns (``alias.column``)."""
        left_alias, left_column = _split_qualified(left)
        right_alias, right_column = _split_qualified(right)
        self._joins.append(JoinClause(left_alias, left_column, right_alias, right_column))
        return self

    def where(self, column: str, operator: OperatorLike, value: float) -> "QueryBuilder":
        """Add a column predicate given a qualified column, an operator and a value."""
        alias, column_name = _split_qualified(column)
        self._predicates.append(Predicate(alias, column_name, _as_operator(operator), value))
        return self

    def build(self) -> Query:
        """Return the accumulated immutable :class:`Query`."""
        return Query.create(self._tables, self._joins, self._predicates)


def _split_qualified(qualified: str) -> tuple[str, str]:
    """Split ``alias.column`` into its two components."""
    alias, sep, column = qualified.partition(".")
    if not sep or not alias or not column:
        raise ValueError(f"expected a qualified column 'alias.column', got {qualified!r}")
    return alias, column
