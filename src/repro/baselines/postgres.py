"""A PostgreSQL-style statistics-based cardinality estimator.

The paper compares against the PostgreSQL version 11 estimator (Section 4.1.3),
which derives estimates from ANALYZE statistics under the classic System-R
assumptions:

* per-column selectivities come from most-common-value lists and equi-depth
  histograms;
* predicates on the same or different tables are assumed independent, so
  selectivities multiply (the *attribute value independence* assumption);
* an equi-join's selectivity is ``1 / max(n_distinct(left), n_distinct(right))``
  (the *join uniformity* assumption).

These assumptions are exactly what breaks on join-crossing correlations, which
is why the paper's multi-join experiments show the characteristic exponential
error growth for this baseline.
"""

from __future__ import annotations

from repro.core.estimators import CardinalityEstimator
from repro.db.database import Database
from repro.db.statistics import StatisticsCatalog
from repro.sql.query import JoinClause, Query


class PostgresCardinalityEstimator(CardinalityEstimator):
    """Statistics-based estimator mirroring PostgreSQL's selectivity logic.

    Args:
        database: the database snapshot (its cached statistics catalog is used).
        min_rows: lower bound on any estimate; PostgreSQL never estimates
            fewer than one row.
    """

    name = "PostgreSQL"

    def __init__(self, database: Database, min_rows: float = 1.0) -> None:
        self.database = database
        self.statistics: StatisticsCatalog = database.statistics()
        self.min_rows = min_rows

    def estimate_cardinality(self, query: Query) -> float:
        alias_to_table = query.alias_to_table()

        # Base cardinality: the cross product of all referenced tables.
        cardinality = 1.0
        for alias in query.aliases:
            cardinality *= max(self.statistics.table(alias_to_table[alias]).row_count, 1)

        # Column predicates: independent selectivities multiply.
        for predicate in query.predicates:
            table_name = alias_to_table[predicate.alias]
            selectivity = self.statistics.predicate_selectivity(table_name, predicate)
            cardinality *= selectivity

        # Equi-joins: uniformity assumption on the join keys.
        for join in query.joins:
            cardinality *= self._join_selectivity(join, alias_to_table)

        return max(float(cardinality), self.min_rows)

    def _join_selectivity(self, join: JoinClause, alias_to_table: dict[str, str]) -> float:
        left_stats = self.statistics.table(alias_to_table[join.left_alias]).column(join.left_column)
        right_stats = self.statistics.table(alias_to_table[join.right_alias]).column(join.right_column)
        distinct = max(left_stats.n_distinct, right_stats.n_distinct, 1)
        return 1.0 / distinct
