"""Sampling-based cardinality baselines.

The paper cites Random Sampling (RS) and Index-Based Join Sampling (IBJS) as
the strongest pre-learning baselines that MSCN was shown to beat; they are
provided here both for completeness and as additional models the benchmark
harness can include.

* :class:`RandomSamplingEstimator` evaluates each table's predicates on a
  materialized uniform sample to get per-table selectivities, then combines
  them with the same join-uniformity assumption as the PostgreSQL baseline.
* :class:`IndexBasedJoinSamplingEstimator` goes further: it executes the query
  exactly on a database restricted to a sample of the fact-table rows and
  scales the result up, which captures join-crossing correlations much better
  at a higher estimation cost.
"""

from __future__ import annotations

import numpy as np

from repro.core.estimators import CardinalityEstimator
from repro.db.database import Database
from repro.db.executor import QueryExecutor
from repro.db.sampling import SampleCatalog
from repro.sql.query import Query


class RandomSamplingEstimator(CardinalityEstimator):
    """Per-table sample selectivities combined under independence assumptions."""

    name = "RandomSampling"

    def __init__(self, database: Database, sample_size: int = 1000, seed: int = 0) -> None:
        self.database = database
        self.samples: SampleCatalog = database.samples(sample_size=sample_size, seed=seed)
        self.statistics = database.statistics()

    def estimate_cardinality(self, query: Query) -> float:
        alias_to_table = query.alias_to_table()
        cardinality = 1.0
        for alias in query.aliases:
            table_name = alias_to_table[alias]
            row_count = max(self.statistics.table(table_name).row_count, 1)
            selectivity = self.samples.selectivity(table_name, query.predicates_for(alias))
            # A sample selectivity of zero means "fewer matches than one sample
            # row"; estimate half a sample row instead of an impossible zero.
            if selectivity <= 0.0:
                selectivity = 0.5 / max(self.samples.sample(table_name).actual_size, 1)
            cardinality *= row_count * selectivity
        for join in query.joins:
            left_stats = self.statistics.table(alias_to_table[join.left_alias]).column(join.left_column)
            right_stats = self.statistics.table(alias_to_table[join.right_alias]).column(join.right_column)
            cardinality /= max(left_stats.n_distinct, right_stats.n_distinct, 1)
        return max(float(cardinality), 1.0)


class IndexBasedJoinSamplingEstimator(CardinalityEstimator):
    """Join sampling: execute the query with one table restricted to a sample.

    The query's largest table is replaced by a uniform row sample (the "driver"
    of the join sampling walk); the query is then executed exactly against that
    restricted database -- which is what index lookups on the join keys of the
    sampled rows would compute -- and the resulting count is scaled up by the
    inverse sampling fraction.
    """

    name = "IndexBasedJoinSampling"

    def __init__(self, database: Database, sample_size: int = 1000, seed: int = 0) -> None:
        self.database = database
        self.sample_size = sample_size
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._restricted_cache: dict[str, Database] = {}

    def estimate_cardinality(self, query: Query) -> float:
        alias_to_table = query.alias_to_table()
        driver_alias = max(
            query.aliases, key=lambda alias: self.database.table(alias_to_table[alias]).num_rows
        )
        driver_name = alias_to_table[driver_alias]
        driver_table = self.database.table(driver_name)
        if driver_table.num_rows == 0:
            return 1.0
        restricted = self._restricted_database(driver_name)
        sampling_fraction = min(self.sample_size, driver_table.num_rows) / driver_table.num_rows
        sampled_count = QueryExecutor(restricted).cardinality(query)
        return max(sampled_count / max(sampling_fraction, 1e-12), 1.0)

    def _restricted_database(self, driver_name: str) -> Database:
        """A database identical to the original except ``driver_name`` is sampled."""
        if driver_name in self._restricted_cache:
            return self._restricted_cache[driver_name]
        from repro.db.table import Table

        driver_table = self.database.table(driver_name)
        sample_rows = driver_table.sample_row_ids(self.sample_size, self._rng)
        schema = self.database.schema
        tables = {name: self.database.table(name) for name in self.database.table_names}
        tables[driver_name] = Table(
            schema.table(driver_name),
            {
                column.name: driver_table.column(column.name)[sample_rows]
                for column in schema.table(driver_name).columns
            },
        )
        restricted = Database(schema, tables)
        self._restricted_cache[driver_name] = restricted
        return restricted
