"""MSCN: the multi-set convolutional network of Kipf et al. (CIDR 2019).

The paper uses MSCN as its learned baseline, both directly as a cardinality
estimator and routed through the Crd2Cnt transformation as a containment
baseline.  This is a faithful re-implementation on the NumPy substrate:

* a query is featurized as three separate sets -- tables, joins, predicates --
  each with its own vector layout (unlike CRN's shared layout);
* each set runs through its own set module (one fully connected layer + ReLU)
  and is average-pooled into a fixed-size representation;
* the three representations are concatenated and pushed through a two-layer
  output network that predicts the query's cardinality in normalized log
  space.

The "MSCN with 1000 samples" variant (Section 6.6 of the paper) appends a
bitmap of sample rows satisfying the query's predicates to each table vector.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.estimators import CardinalityEstimator
from repro.core.metrics import q_errors
from repro.datasets.pairs import LabeledQuery
from repro.db.database import Database
from repro.db.sampling import SampleCatalog
from repro.nn.data import BatchIterator, train_validation_split
from repro.nn.layers import Linear, Module
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, concatenate, no_grad
from repro.sql.query import OPERATORS, Query


@dataclass(frozen=True)
class MSCNConfig:
    """Architecture hyperparameters of the MSCN model.

    Attributes:
        hidden_size: hidden dimension of the set modules and the output network.
        use_samples: enable the sample-bitmap variant (MSCN1000 in the paper).
        sample_size: number of materialized sample rows per base table when
            ``use_samples`` is enabled.
        seed: RNG seed for weight initialisation.
    """

    hidden_size: int = 64
    use_samples: bool = False
    sample_size: int = 1000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.hidden_size <= 0:
            raise ValueError("hidden_size must be positive")
        if self.sample_size <= 0:
            raise ValueError("sample_size must be positive")


@dataclass(frozen=True)
class CardinalityNormalizer:
    """Min-max normalization of log cardinalities (MSCN's target encoding)."""

    min_log: float
    max_log: float

    @classmethod
    def fit(cls, cardinalities: Sequence[int]) -> "CardinalityNormalizer":
        """Fit the normalizer on the training cardinalities."""
        logs = np.log1p(np.asarray(cardinalities, dtype=np.float64))
        min_log = float(logs.min()) if logs.size else 0.0
        max_log = float(logs.max()) if logs.size else 1.0
        if max_log <= min_log:
            max_log = min_log + 1.0
        return cls(min_log=min_log, max_log=max_log)

    def normalize(self, cardinalities: Sequence[float]) -> np.ndarray:
        """Map cardinalities to [0, 1] in log space."""
        logs = np.log1p(np.asarray(cardinalities, dtype=np.float64))
        return np.clip((logs - self.min_log) / (self.max_log - self.min_log), 0.0, 1.0)

    def denormalize(self, values: np.ndarray) -> np.ndarray:
        """Map normalized predictions back to cardinalities."""
        logs = np.asarray(values, dtype=np.float64) * (self.max_log - self.min_log) + self.min_log
        return np.expm1(logs)

    def denormalize_tensor(self, values: Tensor) -> Tensor:
        """Differentiable denormalization (used inside the q-error loss)."""
        logs = values * (self.max_log - self.min_log) + self.min_log
        return logs.exp() - 1.0


class MSCNFeaturizer:
    """Featurizes queries into MSCN's three per-set vector layouts."""

    def __init__(self, database: Database, config: MSCNConfig | None = None) -> None:
        self.database = database
        self.config = config or MSCNConfig()
        schema = database.schema
        self._table_index = {alias: i for i, alias in enumerate(schema.aliases)}
        self._column_index = {name: i for i, name in enumerate(schema.qualified_columns())}
        self._operator_index = {op: i for i, op in enumerate(OPERATORS)}
        self._join_index = {
            self._join_key(left_alias, left_column, right_alias, right_column): i
            for i, (left_alias, left_column, right_alias, right_column) in enumerate(
                schema.join_edges()
            )
        }
        self._value_ranges = {
            qualified: database.column_range(*qualified.split(".", 1))
            for qualified in self._column_index
        }
        self._samples: SampleCatalog | None = None
        if self.config.use_samples:
            self._samples = database.samples(sample_size=self.config.sample_size)

    # ------------------------------------------------------------------ #
    # layout sizes

    @property
    def table_vector_size(self) -> int:
        """Size of a table-set vector (one-hot table, plus optional sample bitmap)."""
        bitmap = self.config.sample_size if self.config.use_samples else 0
        return len(self._table_index) + bitmap

    @property
    def join_vector_size(self) -> int:
        """Size of a join-set vector (one-hot over the schema's join edges)."""
        return max(len(self._join_index), 1)

    @property
    def predicate_vector_size(self) -> int:
        """Size of a predicate-set vector (column one-hot, operator one-hot, value)."""
        return len(self._column_index) + len(self._operator_index) + 1

    # ------------------------------------------------------------------ #
    # featurization

    def featurize(self, query: Query) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return the query's (tables, joins, predicates) vector sets."""
        table_rows = []
        for table in query.tables:
            vector = np.zeros(self.table_vector_size)
            vector[self._table_index[table.alias]] = 1.0
            if self._samples is not None:
                bitmap = self._samples.bitmap(table.name, query.predicates_for(table.alias))
                vector[len(self._table_index) :] = bitmap
            table_rows.append(vector)
        tables = np.stack(table_rows, axis=0)

        join_rows = []
        for join in query.joins:
            vector = np.zeros(self.join_vector_size)
            key = self._join_key(join.left_alias, join.left_column, join.right_alias, join.right_column)
            if key in self._join_index:
                vector[self._join_index[key]] = 1.0
            join_rows.append(vector)
        joins = (
            np.stack(join_rows, axis=0) if join_rows else np.zeros((0, self.join_vector_size))
        )

        predicate_rows = []
        for predicate in query.predicates:
            vector = np.zeros(self.predicate_vector_size)
            vector[self._column_index[predicate.qualified_column]] = 1.0
            vector[len(self._column_index) + self._operator_index[predicate.operator]] = 1.0
            vector[-1] = self._normalize_value(predicate.qualified_column, predicate.value)
            predicate_rows.append(vector)
        predicates = (
            np.stack(predicate_rows, axis=0)
            if predicate_rows
            else np.zeros((0, self.predicate_vector_size))
        )
        return tables, joins, predicates

    def pad_batch(
        self, sets: list[np.ndarray], vector_size: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pad a list of (possibly empty) vector sets into a dense masked batch."""
        max_size = max(max((matrix.shape[0] for matrix in sets), default=0), 1)
        batch = np.zeros((len(sets), max_size, vector_size))
        mask = np.zeros((len(sets), max_size, 1))
        for index, matrix in enumerate(sets):
            if matrix.shape[0]:
                batch[index, : matrix.shape[0], :] = matrix
                mask[index, : matrix.shape[0], 0] = 1.0
        return batch, mask

    def featurize_batch(
        self, queries: Sequence[Query]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Featurize and pad a batch of queries into the three masked set batches."""
        featurized = [self.featurize(query) for query in queries]
        tables, table_mask = self.pad_batch([f[0] for f in featurized], self.table_vector_size)
        joins, join_mask = self.pad_batch([f[1] for f in featurized], self.join_vector_size)
        predicates, predicate_mask = self.pad_batch(
            [f[2] for f in featurized], self.predicate_vector_size
        )
        return tables, table_mask, joins, join_mask, predicates, predicate_mask

    # ------------------------------------------------------------------ #
    # internals

    def _normalize_value(self, qualified_column: str, value: float) -> float:
        low, high = self._value_ranges[qualified_column]
        if high == low:
            return 0.5
        return float(np.clip((value - low) / (high - low), 0.0, 1.0))

    @staticmethod
    def _join_key(left_alias: str, left_column: str, right_alias: str, right_column: str) -> tuple:
        left = (left_alias, left_column)
        right = (right_alias, right_column)
        return (left, right) if left <= right else (right, left)


class MSCNModel(Module):
    """The multi-set convolutional network."""

    def __init__(
        self,
        table_vector_size: int,
        join_vector_size: int,
        predicate_vector_size: int,
        config: MSCNConfig | None = None,
    ) -> None:
        self.config = config or MSCNConfig()
        hidden = self.config.hidden_size
        rng = np.random.default_rng(self.config.seed)
        self.table_vector_size = table_vector_size
        self.join_vector_size = join_vector_size
        self.predicate_vector_size = predicate_vector_size
        self.table_module = Linear(table_vector_size, hidden, rng=rng)
        self.join_module = Linear(join_vector_size, hidden, rng=rng)
        self.predicate_module = Linear(predicate_vector_size, hidden, rng=rng)
        self.out_hidden = Linear(3 * hidden, hidden, rng=rng)
        self.out_final = Linear(hidden, 1, rng=rng)

    @property
    def hidden_size(self) -> int:
        """The hidden dimension."""
        return self.config.hidden_size

    def _encode_set(self, vectors: Tensor, mask: Tensor, module: Linear, vector_size: int) -> Tensor:
        batch_size, max_set, _ = vectors.shape
        flat = vectors.reshape(batch_size * max_set, vector_size)
        transformed = module(flat).relu().reshape(batch_size, max_set, self.hidden_size)
        pooled = (transformed * mask).sum(axis=1)
        counts = mask.sum(axis=1).clip_min(1.0)
        return pooled / counts

    def forward(
        self,
        tables: Tensor,
        table_mask: Tensor,
        joins: Tensor,
        join_mask: Tensor,
        predicates: Tensor,
        predicate_mask: Tensor,
    ) -> Tensor:
        """Predict normalized log cardinalities for a featurized batch."""
        table_repr = self._encode_set(tables, table_mask, self.table_module, self.table_vector_size)
        join_repr = self._encode_set(joins, join_mask, self.join_module, self.join_vector_size)
        predicate_repr = self._encode_set(
            predicates, predicate_mask, self.predicate_module, self.predicate_vector_size
        )
        combined = concatenate([table_repr, join_repr, predicate_repr], axis=1)
        hidden = self.out_hidden(combined).relu()
        output = self.out_final(hidden).sigmoid()
        return output.reshape(output.shape[0])


class MSCNEstimator(CardinalityEstimator):
    """A :class:`CardinalityEstimator` backed by a trained MSCN model."""

    def __init__(
        self,
        model: MSCNModel,
        featurizer: MSCNFeaturizer,
        normalizer: CardinalityNormalizer,
        batch_size: int = 256,
        name: str | None = None,
    ) -> None:
        self.model = model
        self.featurizer = featurizer
        self.normalizer = normalizer
        self.batch_size = batch_size
        if name is not None:
            self.name = name
        else:
            self.name = "MSCN1000" if featurizer.config.use_samples else "MSCN"

    def estimate_cardinality(self, query: Query) -> float:
        return self.estimate_cardinalities([query])[0]

    def estimate_cardinalities(self, queries: Sequence[Query]) -> list[float]:
        estimates: list[float] = []
        for start in range(0, len(queries), self.batch_size):
            chunk = list(queries[start : start + self.batch_size])
            batch = self.featurizer.featurize_batch(chunk)
            with no_grad():
                normalized = self.model(*(Tensor(part) for part in batch)).numpy()
            estimates.extend(float(v) for v in self.normalizer.denormalize(np.atleast_1d(normalized)))
        return [max(estimate, 1.0) for estimate in estimates]


@dataclass(frozen=True)
class MSCNTrainingConfig:
    """Optimisation hyperparameters for MSCN training."""

    epochs: int = 30
    batch_size: int = 64
    learning_rate: float = 0.001
    validation_fraction: float = 0.15
    early_stopping_patience: int = 10
    seed: int = 0


@dataclass
class MSCNTrainingResult:
    """Outcome of an MSCN training run."""

    model: MSCNModel
    featurizer: MSCNFeaturizer
    normalizer: CardinalityNormalizer
    history: list[dict] = field(default_factory=list)
    best_epoch: int = 0
    best_validation_q_error: float = float("inf")

    def estimator(self, batch_size: int = 256) -> MSCNEstimator:
        """Wrap the trained model as a cardinality estimator."""
        return MSCNEstimator(self.model, self.featurizer, self.normalizer, batch_size=batch_size)


class _FeaturizedQueries:
    """Labelled queries pre-featurized into padded batches."""

    def __init__(self, featurizer: MSCNFeaturizer, labeled: Sequence[LabeledQuery]) -> None:
        self.batches = featurizer.featurize_batch([item.query for item in labeled])
        self.cardinalities = np.asarray([item.cardinality for item in labeled], dtype=np.float64)

    def __len__(self) -> int:
        return len(self.cardinalities)

    def batch(self, indices: np.ndarray) -> tuple[list[Tensor], np.ndarray]:
        return [Tensor(part[indices]) for part in self.batches], self.cardinalities[indices]


def train_mscn(
    database: Database,
    labeled_queries: Sequence[LabeledQuery],
    mscn_config: MSCNConfig | None = None,
    training_config: MSCNTrainingConfig | None = None,
    verbose: bool = False,
) -> MSCNTrainingResult:
    """Train an MSCN model on labelled queries.

    The loss is the mean absolute log-ratio between the *denormalized*
    cardinality estimate and the true cardinality -- the q-error in log space.
    Kipf et al. train on the raw q-error; the log-space variant ranks models
    identically while keeping gradients bounded on the synthetic corpus, whose
    cardinalities span eight orders of magnitude (see DESIGN.md).
    """
    if not labeled_queries:
        raise ValueError("cannot train on an empty query set")
    mscn_config = mscn_config or MSCNConfig()
    training_config = training_config or MSCNTrainingConfig()

    featurizer = MSCNFeaturizer(database, mscn_config)
    normalizer = CardinalityNormalizer.fit([item.cardinality for item in labeled_queries])
    model = MSCNModel(
        featurizer.table_vector_size,
        featurizer.join_vector_size,
        featurizer.predicate_vector_size,
        mscn_config,
    )

    train_items, validation_items = train_validation_split(
        list(labeled_queries),
        validation_fraction=training_config.validation_fraction,
        seed=training_config.seed,
    )
    if not validation_items:
        validation_items = train_items
    train_data = _FeaturizedQueries(featurizer, train_items)
    validation_data = _FeaturizedQueries(featurizer, validation_items)

    optimizer = Adam(model.parameters(), learning_rate=training_config.learning_rate)
    iterator = BatchIterator(len(train_data), training_config.batch_size, seed=training_config.seed)
    result = MSCNTrainingResult(model=model, featurizer=featurizer, normalizer=normalizer)
    best_state = model.state_dict()
    epochs_without_improvement = 0

    for epoch in range(1, training_config.epochs + 1):
        start = time.perf_counter()
        epoch_losses: list[float] = []
        for indices in iterator.epoch():
            inputs, cardinalities = train_data.batch(indices)
            predictions = model(*inputs)
            estimated = normalizer.denormalize_tensor(predictions).clip_min(1.0)
            targets = Tensor(np.maximum(cardinalities, 1.0))
            loss = (estimated.log() - targets.log()).abs().mean()
            model.zero_grad()
            loss.backward()
            optimizer.step()
            epoch_losses.append(loss.item())

        validation_q_error = _validation_q_error(model, normalizer, validation_data)
        result.history.append(
            {
                "epoch": epoch,
                "train_loss": float(np.mean(epoch_losses)),
                "validation_mean_q_error": validation_q_error,
                "seconds": time.perf_counter() - start,
            }
        )
        if verbose:  # pragma: no cover - console output only
            print(f"MSCN epoch {epoch:3d}  validation q-error {validation_q_error:8.3f}")
        if validation_q_error < result.best_validation_q_error:
            result.best_validation_q_error = validation_q_error
            result.best_epoch = epoch
            best_state = model.state_dict()
            epochs_without_improvement = 0
        else:
            epochs_without_improvement += 1
            if (
                training_config.early_stopping_patience
                and epochs_without_improvement >= training_config.early_stopping_patience
            ):
                break

    model.load_state_dict(best_state)
    return result


def _validation_q_error(
    model: MSCNModel, normalizer: CardinalityNormalizer, data: _FeaturizedQueries
) -> float:
    with no_grad():
        normalized = model(*(Tensor(part) for part in data.batches)).numpy()
    estimates = np.maximum(normalizer.denormalize(np.atleast_1d(normalized)), 1.0)
    truths = np.maximum(data.cardinalities, 1.0)
    return float(q_errors(estimates, truths).mean())
