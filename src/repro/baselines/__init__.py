"""Baseline cardinality estimators the paper compares against.

* :mod:`repro.baselines.postgres` -- the statistics-based PostgreSQL-style
  estimator (ANALYZE statistics, independence and uniformity assumptions).
* :mod:`repro.baselines.mscn` -- the MSCN learned estimator of Kipf et al.,
  including the sample-bitmap variant ("MSCN with 1000 samples").
* :mod:`repro.baselines.sampling` -- random sampling and index-based join
  sampling estimators.
"""

from repro.baselines.mscn import (
    CardinalityNormalizer,
    MSCNConfig,
    MSCNEstimator,
    MSCNFeaturizer,
    MSCNModel,
    MSCNTrainingConfig,
    MSCNTrainingResult,
    train_mscn,
)
from repro.baselines.postgres import PostgresCardinalityEstimator
from repro.baselines.sampling import IndexBasedJoinSamplingEstimator, RandomSamplingEstimator

__all__ = [
    "CardinalityNormalizer",
    "IndexBasedJoinSamplingEstimator",
    "MSCNConfig",
    "MSCNEstimator",
    "MSCNFeaturizer",
    "MSCNModel",
    "MSCNTrainingConfig",
    "MSCNTrainingResult",
    "PostgresCardinalityEstimator",
    "RandomSamplingEstimator",
    "train_mscn",
]
