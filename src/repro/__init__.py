"""Reproduction of "Improved Cardinality Estimation by Learning Queries
Containment Rates" (Hayek & Shmueli, EDBT 2020).

The package is organised around the paper's pipeline:

* :mod:`repro.sql` -- the conjunctive query model (SELECT * / equi-joins /
  column predicates) with parsing, intersection and analytic containment.
* :mod:`repro.db` -- the in-memory relational substrate: columnar storage,
  exact execution, ANALYZE statistics, materialized samples.
* :mod:`repro.datasets` -- the synthetic IMDb-like database and the paper's
  query / query-pair / workload generators.
* :mod:`repro.nn` -- the pure-NumPy autodiff and neural-network substrate.
* :mod:`repro.core` -- the paper's contribution: CRN, the Crd2Cnt / Cnt2Crd
  transformations, the queries pool, and the improved-model construction.
* :mod:`repro.baselines` -- PostgreSQL-style, MSCN and sampling estimators.
* :mod:`repro.evaluation` -- the experiment harness, the per-table/figure
  experiment registry, and timing/serving metrics.
* :mod:`repro.serving` -- the online estimation service: cross-request batch
  planning, featurization/encoding caches, estimator registry with fallback.
* :mod:`repro.extensions` -- Section 9 future-work features (set queries,
  string predicates, database updates).

Quickstart::

    from repro.datasets import build_synthetic_imdb, build_training_pairs
    from repro.core import QueryFeaturizer, train_crn

    database = build_synthetic_imdb()
    pairs = build_training_pairs(database, count=1000)
    result = train_crn(QueryFeaturizer(database), pairs)
    estimator = result.estimator()

See ``examples/quickstart.py`` for the full end-to-end walkthrough.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
