"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so the
package can be installed in editable mode (``pip install -e .``) on
environments without the ``wheel`` package / network access (legacy
``setup.py develop`` path).
"""

from setuptools import setup

setup()
