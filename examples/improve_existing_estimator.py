"""Improving an existing cardinality estimator without changing it (Section 7).

The paper's second practical message: any existing estimator M can be improved
by wrapping it as ``Improved M = Cnt2Crd(Crd2Cnt(M))`` with a queries pool.
This example wraps the PostgreSQL-style statistics estimator and the MSCN
learned estimator, and compares each against its improved version on a
multi-join workload, reporting the paper's percentile table.

Run with::

    python examples/improve_existing_estimator.py
"""

from __future__ import annotations

from repro.baselines import (
    MSCNConfig,
    MSCNTrainingConfig,
    PostgresCardinalityEstimator,
    train_mscn,
)
from repro.core import ErrorSummary, ImprovedEstimator, QueriesPool, q_errors
from repro.datasets import (
    SyntheticIMDbConfig,
    build_crd_test2,
    build_queries_pool_queries,
    build_synthetic_imdb,
    build_training_pairs,
    mscn_training_set,
)
from repro.db import TrueCardinalityOracle
from repro.evaluation import format_error_table


def main() -> None:
    database = build_synthetic_imdb(SyntheticIMDbConfig(num_titles=1000))
    oracle = TrueCardinalityOracle(database)

    # The models to improve: the statistics baseline and a learned MSCN model.
    postgres = PostgresCardinalityEstimator(database)
    print("Training the MSCN baseline ...")
    pairs = build_training_pairs(database, count=1500, oracle=oracle)
    mscn = train_mscn(
        database,
        mscn_training_set(database, pairs, oracle=oracle),
        MSCNConfig(hidden_size=64),
        MSCNTrainingConfig(epochs=25),
    ).estimator()

    # The queries pool: previously executed queries with known cardinalities.
    pool = QueriesPool.from_labeled_queries(
        build_queries_pool_queries(database, count=150, oracle=oracle)
    )

    # Improved M = Cnt2Crd(Crd2Cnt(M)); the base models are left untouched.
    improved_postgres = ImprovedEstimator(postgres, pool)
    improved_mscn = ImprovedEstimator(mscn, pool)

    print("Building the evaluation workload (0-5 joins) ...")
    workload = build_crd_test2(database, scale=0.1, oracle=oracle)
    queries = [labeled.query for labeled in workload.queries]
    truths = [labeled.cardinality for labeled in workload.queries]

    summaries = {}
    for estimator in (postgres, improved_postgres, mscn, improved_mscn):
        errors = q_errors(estimator.estimate_cardinalities(queries), truths, epsilon=1.0)
        summaries[estimator.name] = ErrorSummary.from_errors(estimator.name, errors)

    print()
    print(format_error_table(summaries, title=f"q-errors on {workload.name} ({len(workload)} queries)"))
    print(
        "\nThe improved variants use the same underlying models; the gain comes entirely\n"
        "from the containment-based technique and the queries pool (paper Tables 11-12)."
    )


if __name__ == "__main__":
    main()
